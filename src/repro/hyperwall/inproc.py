"""Deterministic in-process hyperwall simulation.

The same control flow as the socket deployment — partition, reduced
server execution, full-resolution client execution, event propagation —
but with the "client nodes" as plain objects in one process.  Tests
and the Fig. 5 benchmark use this: it exercises every piece of the
distributed logic (partitioning, resolution editing, propagation,
report aggregation) without socket nondeterminism, and supports a
thread pool standing in for the parallel cluster.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro import obs
from repro.dv3d.cell import DV3DCell
from repro.hyperwall.display import WallGeometry
from repro.hyperwall.partition import (
    find_cell_modules,
    make_reduced_pipeline,
    partition_by_cell,
    set_cell_resolution,
)
from repro.util.errors import HyperwallError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline


@dataclass
class ClientReport:
    """What a display node reports back after executing its sub-workflow."""

    cell_id: int
    tile: tuple
    duration: float
    image_shape: tuple
    image_mean: float
    cache_hits: int
    cache_misses: int


@dataclass
class _SimulatedClient:
    """One display node: a sub-workflow plus its live cell after execution."""

    cell_id: int
    tile: tuple
    pipeline: Pipeline
    executor: Executor = field(default_factory=lambda: Executor(caching=True))
    cell: Optional[DV3DCell] = None
    last_image: Any = None

    def execute(self, parent_span_id: Optional[int] = None) -> ClientReport:
        start = time.perf_counter()
        with obs.span(
            "hyperwall.client.execute",
            parent_id=parent_span_id,
            node=f"client-{self.cell_id}",
            cell=self.cell_id,
        ):
            result = self.executor.execute(self.pipeline)
        self.cell = result.output(self.cell_id, "cell")
        self.last_image = result.output(self.cell_id, "image")
        return ClientReport(
            cell_id=self.cell_id,
            tile=self.tile,
            duration=time.perf_counter() - start,
            image_shape=tuple(self.last_image.shape),
            image_mean=float(self.last_image.mean()),
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
        )

    def apply_event(self, kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        if self.cell is None:
            raise HyperwallError(f"client {self.cell_id}: not executed yet")
        from repro.util.errors import DV3DError

        try:
            return self.cell.handle_event(kind, **payload)
        except DV3DError:
            # plot-specific gesture on an incompatible plot type: ignored,
            # matching the spreadsheet's heterogeneous-sheet semantics
            return {}


class InProcessHyperwall:
    """Server + N simulated clients in one process."""

    def __init__(
        self,
        workflow: Pipeline,
        wall: Optional[WallGeometry] = None,
        reduction: int = 4,
        client_resolution: Optional[tuple] = None,
        max_workers: int = 1,
    ) -> None:
        cells = find_cell_modules(workflow)
        if not cells:
            raise HyperwallError("workflow has no DV3DCell modules")
        self.wall = wall or WallGeometry(columns=max(len(cells), 1), rows=1)
        if len(cells) > self.wall.n_tiles:
            raise HyperwallError(
                f"{len(cells)} cells exceed the wall's {self.wall.n_tiles} tiles"
            )
        self.reduction = int(reduction)
        self.max_workers = max(int(max_workers), 1)
        self.server_pipeline = make_reduced_pipeline(workflow, self.reduction)
        self.server_executor = Executor(caching=True)
        self.server_cells: Dict[int, DV3DCell] = {}
        self.clients: List[_SimulatedClient] = []
        partitions = partition_by_cell(workflow)
        for index, cell_id in enumerate(sorted(partitions)):
            sub = partitions[cell_id]
            if client_resolution is not None:
                set_cell_resolution(sub, cell_id, *client_resolution)
            else:
                set_cell_resolution(
                    sub, cell_id, self.wall.tile_width, self.wall.tile_height
                )
            self.clients.append(
                _SimulatedClient(cell_id, self.wall.tile_of(index), sub)
            )
        self.event_history: List[Dict[str, Any]] = []

    # -- execution ---------------------------------------------------------

    def execute_server(self) -> Dict[str, Any]:
        """Run the reduced-resolution full workflow on the server node."""
        start = time.perf_counter()
        with obs.span("hyperwall.server.execute", node="server"):
            result = self.server_executor.execute(self.server_pipeline)
        self.server_cells = {
            cid: result.output(cid, "cell")
            for cid in find_cell_modules(self.server_pipeline)
        }
        shapes = {
            cid: tuple(result.output(cid, "image").shape)
            for cid in self.server_cells
        }
        return {
            "duration": time.perf_counter() - start,
            "n_cells": len(self.server_cells),
            "image_shapes": shapes,
        }

    def execute_clients(self) -> List[ClientReport]:
        """Run every client's full-resolution 1-cell sub-workflow.

        With ``max_workers > 1`` clients run concurrently (the physical
        wall's clients are separate machines; a thread pool models the
        parallelism on one host).
        """
        with obs.span(
            "hyperwall.execute_clients", clients=len(self.clients)
        ) as _span:
            if self.max_workers == 1:
                return [client.execute(_span.id) for client in self.clients]
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                # client spans open on pool threads, so the parent edge
                # is passed explicitly (thread-local stacks are empty)
                return list(pool.map(lambda c: c.execute(_span.id), self.clients))

    def execute_all(self) -> Dict[str, Any]:
        """The full Fig. 5 cycle: server mirror plus all wall tiles."""
        server = self.execute_server()
        reports = self.execute_clients()
        return {"server": server, "clients": reports}

    # -- interaction propagation ------------------------------------------------

    def propagate_event(self, kind: str, **payload: Any) -> Dict[str, Any]:
        """Apply an interaction to the server's active cells, then to the
        corresponding client cells — the §III.H propagation path."""
        if not self.server_cells and all(c.cell is None for c in self.clients):
            raise HyperwallError("propagate_event before any execution")
        from repro.util.errors import DV3DError

        server_deltas = {}
        for cid, cell in self.server_cells.items():
            try:
                server_deltas[cid] = cell.handle_event(kind, **payload)
            except DV3DError:
                server_deltas[cid] = {}
        if obs.enabled():
            # the simulation has no wire; account for the event frames a
            # socket deployment would have sent (one per client)
            from repro.hyperwall.protocol import KIND_EVENT, Message

            frame = len(
                Message(KIND_EVENT, {"event_kind": kind, "event": payload}).encode()
            )
            n_clients = sum(1 for c in self.clients if c.cell is not None)
            obs.counter("hyperwall.messages.sent", n_clients, kind=KIND_EVENT)
            obs.counter("hyperwall.bytes.sent", frame * n_clients, kind=KIND_EVENT)
        client_deltas = {}
        for client in self.clients:
            if client.cell is not None:
                client_deltas[client.cell_id] = client.apply_event(kind, payload)
        record = {"kind": kind, "payload": payload}
        self.event_history.append(record)
        return {"server": server_deltas, "clients": client_deltas}

    def consistency_check(self) -> Dict[int, bool]:
        """Whether each client cell's plot state matches its server mirror.

        Camera state is compared too; render resolution legitimately
        differs, so only plot state participates.
        """
        result = {}
        for client in self.clients:
            server_cell = self.server_cells.get(client.cell_id)
            if server_cell is None or client.cell is None:
                result[client.cell_id] = False
                continue
            result[client.cell_id] = (
                server_cell.plot.state() == client.cell.plot.state()
            )
        return result
