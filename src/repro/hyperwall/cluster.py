"""A localhost cluster standing in for the physical hyperwall.

The NCCS wall's client nodes become ``multiprocessing`` processes on
this machine, each running the real socket client against the real
socket server — so the full network protocol (workflow shipping,
execution triggering, event propagation, failover, shutdown) is
exercised end-to-end, just without the 46-inch displays.

Faults armed on the registry *before* :meth:`LocalCluster.start` are
inherited by the forked clients, so tests can kill a real client
process mid-execution deterministically::

    faults.arm("hyperwall.client.execute", "exit", match={"client": 2})
    with LocalCluster(p, n_clients=4, wall=wall) as cluster:
        out = cluster.run_session()   # completes; cell 2 is recovered
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Any, Dict, List, Optional

from repro.hyperwall.client import run_client
from repro.hyperwall.display import WallGeometry
from repro.hyperwall.server import HyperwallServer
from repro.workflow.pipeline import Pipeline


def _client_main(
    host: str, port: int, client_id: int, io_timeout: float, cache=None
) -> None:
    # child-process entry point; exceptions surface via exit code
    run_client(host, port, client_id, io_timeout=io_timeout, cache=cache)


class LocalCluster:
    """Run a server plus N client processes for one hyperwall session.

    *io_timeout* bounds every socket operation on both sides;
    *failover* selects the server's recovery policy for dead clients
    (``reassign`` | ``degrade`` | ``fail_fast``).  *cache* (a
    :class:`repro.cache.CacheConfig`) is installed on the server's
    executor and in every client process — with the disk tier on a
    shared path, a replayed frame sequence is served from cache on
    every node, including reassigned cells and degraded mirrors.
    """

    def __init__(
        self,
        workflow: Pipeline,
        n_clients: int,
        wall: Optional[WallGeometry] = None,
        reduction: int = 4,
        io_timeout: float = 60.0,
        failover: str = "reassign",
        cache=None,
    ) -> None:
        self.io_timeout = float(io_timeout)
        self.cache = cache
        self.server = HyperwallServer(
            workflow,
            wall=wall,
            reduction=reduction,
            io_timeout=self.io_timeout,
            failover=failover,
            cache=cache,
        )
        self.n_clients = int(n_clients)
        self._processes: List[mp.Process] = []

    def start(self, timeout: float = 60.0) -> List[int]:
        """Spawn client processes and wait for all to connect.

        A failed accept (a client dying before its hello, a timeout)
        tears the whole cluster down before re-raising — ``__exit__``
        never runs when ``__enter__`` fails, so the cleanup must happen
        here or the spawned clients would outlive the failed test.
        """
        ctx = mp.get_context("fork")
        for client_id in range(self.n_clients):
            proc = ctx.Process(
                target=_client_main,
                args=(
                    self.server.host, self.server.port, client_id,
                    self.io_timeout, self.cache,
                ),
                daemon=True,
                name=f"repro-hyperwall-client-{client_id}",
            )
            proc.start()
            self._processes.append(proc)
        try:
            return self.server.accept_clients(self.n_clients, timeout=timeout)
        except BaseException:
            self.stop()
            raise

    def run_session(self, events: Optional[List[Dict[str, Any]]] = None) -> Dict[str, Any]:
        """One full session: distribute, execute everywhere, propagate events.

        *events* is a list like ``[{"event_kind": "key", "key": "c"}]``.
        Returns all reports and timings; ``cell_status`` summarizes how
        each cell was produced (``live`` | ``reassigned`` | ``degraded``).
        """
        assignment = self.server.distribute_workflows()
        server_report = self.server.execute_server()
        start = time.perf_counter()
        client_reports = self.server.execute_clients()
        clients_wall = time.perf_counter() - start
        event_results = []
        for event in events or []:
            payload = dict(event)
            kind = str(payload.pop("event_kind", "key"))
            event_results.append(self.server.broadcast_event(kind, **payload))
        return {
            "assignment": assignment,
            "server": server_report,
            "clients": client_reports,
            "clients_wall_time": clients_wall,
            "cell_status": {
                r["cell_id"]: r.get("status", "live") for r in client_reports
            },
            "dead_clients": self.server.dead_clients,
            "events": event_results,
        }

    def stop(self, timeout: float = 10.0) -> None:
        self.server.shutdown()
        deadline = time.time() + timeout
        for proc in self._processes:
            proc.join(max(deadline - time.time(), 0.1))
            if proc.is_alive():
                proc.terminate()
                proc.join(1.0)
            if proc.is_alive():  # terminate() ignored — escalate to SIGKILL
                proc.kill()
                proc.join(1.0)
        self._processes.clear()

    def __enter__(self) -> "LocalCluster":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
