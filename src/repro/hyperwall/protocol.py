"""The hyperwall wire protocol.

"An instance of UV-CDAT runs on each node, coordinated using socket
connections between the client nodes and the server node."  Messages
are JSON objects with a 4-byte big-endian length prefix — simple,
inspectable, and sufficient for workflow shipping and event
propagation.  Pixel data never crosses the wire (each node renders its
own display); clients report image *summaries* (shape, checksum,
timing) instead.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro import obs
from repro.resilience import faults
from repro.util.errors import HyperwallError

_LENGTH = struct.Struct(">I")
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

#: message kinds used by the server/client pair
KIND_HELLO = "hello"
KIND_WORKFLOW = "workflow"
KIND_EXECUTE = "execute"
KIND_EVENT = "event"
KIND_RENDER = "render"
KIND_REPORT = "report"
KIND_ACK = "ack"
KIND_HEARTBEAT = "heartbeat"
KIND_SHUTDOWN = "shutdown"
KIND_ERROR = "error"


@dataclass(frozen=True)
class Message:
    """One protocol message: a kind plus a JSON-serializable payload."""

    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)

    def encode(self) -> bytes:
        body = json.dumps({"kind": self.kind, "payload": self.payload}).encode("utf-8")
        if len(body) > MAX_MESSAGE_BYTES:
            raise HyperwallError(f"message of {len(body)} bytes exceeds limit")
        return _LENGTH.pack(len(body)) + body

    @staticmethod
    def decode(body: bytes) -> "Message":
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HyperwallError(f"malformed message: {exc}") from exc
        if not isinstance(data, dict) or "kind" not in data:
            raise HyperwallError(f"malformed message structure: {data!r}")
        return Message(str(data["kind"]), dict(data.get("payload", {})))


def send_message(sock: socket.socket, message: Message) -> None:
    frame = message.encode()
    fault = faults.check("protocol.send", kind=message.kind)
    if fault is not None:
        if fault.action == "drop":
            return  # the message vanishes on the wire; the peer times out
        if fault.action == "corrupt":
            # keep the length header intact so the peer reads a full
            # frame that then fails to decode (detected, not a hang)
            frame = frame[: _LENGTH.size] + b"\xff" * (len(frame) - _LENGTH.size)
    if obs.enabled():
        obs.counter("hyperwall.messages.sent", kind=message.kind)
        obs.counter("hyperwall.bytes.sent", len(frame), kind=message.kind)
    sock.sendall(frame)


def recv_message(sock: socket.socket) -> Optional[Message]:
    """Read one framed message; None on orderly EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise HyperwallError(f"incoming message of {length} bytes exceeds limit")
    body = _recv_exact(sock, length)
    if body is None:
        raise HyperwallError("connection closed mid-message")
    message = Message.decode(body)
    if obs.enabled():
        obs.counter("hyperwall.messages.received", kind=message.kind)
        obs.counter(
            "hyperwall.bytes.received", _LENGTH.size + length, kind=message.kind
        )
    return message


def recv_exact(
    sock: socket.socket,
    count: int,
    on_truncation: type = HyperwallError,
) -> Optional[bytes]:
    """Read exactly *count* bytes; None on clean EOF before the first byte.

    EOF after a partial read raises *on_truncation* — the hyperwall
    raises :class:`HyperwallError`, the session wire protocol
    (:mod:`repro.serving.wire`) passes its own typed truncation error.
    Shared here because both protocols frame the same way.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise on_truncation("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


#: backwards-compatible private alias (pre-session-serving callers)
_recv_exact = recv_exact
