"""Workflow partitioning for distributed execution.

The server "sends edited versions of the workflow to each client node
...  Each client workflow consists of one of the cell modules (and all
its upstream modules) from the server workflow."  These are the two
edits:

* :func:`partition_by_cell` — one sub-workflow per DV3DCell module,
  each the upstream closure of that cell (ids preserved, so reports
  map back onto server modules);
* :func:`make_reduced_pipeline` — the server's own copy with every
  cell's render resolution divided by the reduction factor.
"""

from __future__ import annotations

from typing import Dict, List

from repro.util.errors import HyperwallError
from repro.workflow.pipeline import Pipeline

CELL_MODULE = "dv3d:DV3DCell"


def find_cell_modules(pipeline: Pipeline) -> List[int]:
    """Ids of all DV3DCell modules (the per-display units)."""
    return pipeline.modules_of_type(CELL_MODULE)


def partition_by_cell(pipeline: Pipeline) -> Dict[int, Pipeline]:
    """Split a multi-cell workflow into per-cell sub-workflows.

    Returns ``{cell_module_id: subpipeline}``.  Module and connection
    ids are preserved from the parent workflow, so execution reports
    from the clients can be attributed to server-side modules.
    """
    cells = find_cell_modules(pipeline)
    if not cells:
        raise HyperwallError("workflow has no DV3DCell modules to distribute")
    return {cell_id: pipeline.subpipeline([cell_id]) for cell_id in cells}


def make_reduced_pipeline(
    pipeline: Pipeline,
    reduction: int,
    min_size: int = 16,
) -> Pipeline:
    """The server's reduced-resolution copy of the full workflow.

    Every DV3DCell's width/height parameters are divided by
    *reduction* (clamped at *min_size* pixels).
    """
    if reduction < 1:
        raise HyperwallError("reduction factor must be >= 1")
    reduced = pipeline.copy()
    for cell_id in find_cell_modules(reduced):
        spec = reduced.modules[cell_id]
        cls = reduced.registry.resolve(spec.name)
        defaults = {p.name: p.default for p in cls.parameters}
        width = int(spec.parameters.get("width", defaults.get("width", 320)))
        height = int(spec.parameters.get("height", defaults.get("height", 240)))
        reduced.set_parameter(cell_id, "width", max(width // reduction, min_size))
        reduced.set_parameter(cell_id, "height", max(height // reduction, min_size))
    return reduced


def set_cell_resolution(pipeline: Pipeline, cell_id: int, width: int, height: int) -> None:
    """Pin one cell's render resolution (clients render at tile size)."""
    if cell_id not in find_cell_modules(pipeline):
        raise HyperwallError(f"module {cell_id} is not a DV3DCell")
    pipeline.set_parameter(cell_id, "width", int(width))
    pipeline.set_parameter(cell_id, "height", int(height))
