"""Distributed visualization for the hyperwall (§III.H).

The paper's deployment: a 5×3 array of displays, each backed by a
client node, plus one control (server) node.  "At execution time the
server instance sends edited versions of the workflow to each client
node for local execution.  Each client workflow consists of one of the
cell modules (and all its upstream modules) from the server workflow.
The server instance executes a reduced resolution instance of the full
(15-cell) workflow, whereas each client instance executes a full
resolution 1-cell sub-workflow. ... All interactive navigation and
configuration operations ... are propagated to the corresponding
client display cells."

* :mod:`repro.hyperwall.display` — wall tile geometry;
* :mod:`repro.hyperwall.partition` — per-cell sub-workflow extraction
  and server-side resolution reduction;
* :mod:`repro.hyperwall.protocol` — length-prefixed JSON messages over
  sockets;
* :mod:`repro.hyperwall.server` / :mod:`repro.hyperwall.client` — the
  socket-based control/display node implementations;
* :mod:`repro.hyperwall.cluster` — a localhost multiprocessing harness
  standing in for the physical cluster (with failover: dead clients'
  cells are reassigned to survivors or served from the server's
  reduced-resolution mirror, see :data:`FAILOVER_POLICIES`);
* :mod:`repro.hyperwall.inproc` — a deterministic in-process simulation
  of the same protocol for tests and benchmarks.
"""

from repro.hyperwall.display import WallGeometry
from repro.hyperwall.partition import (
    find_cell_modules,
    make_reduced_pipeline,
    partition_by_cell,
)
from repro.hyperwall.protocol import Message
from repro.hyperwall.inproc import InProcessHyperwall
from repro.hyperwall.server import FAILOVER_POLICIES, HyperwallServer
from repro.hyperwall.client import HyperwallClient, run_client
from repro.hyperwall.cluster import LocalCluster

__all__ = [
    "FAILOVER_POLICIES",
    "WallGeometry",
    "find_cell_modules",
    "make_reduced_pipeline",
    "partition_by_cell",
    "Message",
    "InProcessHyperwall",
    "HyperwallServer",
    "HyperwallClient",
    "run_client",
    "LocalCluster",
]
