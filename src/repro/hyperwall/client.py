"""The hyperwall client (display) node.

"Each client instance opens a single-cell visualization spreadsheet
window, covering its hyperwall display."  The client connects to the
server, receives its 1-cell sub-workflow, executes it at full display
resolution, applies propagated interaction events, and reports results
(timings and image summaries — pixels stay local to the display node).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Optional

from repro import obs
from repro.dv3d.cell import DV3DCell
from repro.hyperwall import protocol
from repro.hyperwall.protocol import Message
from repro.util.errors import HyperwallError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline


class HyperwallClient:
    """One display node's control loop."""

    def __init__(self, host: str, port: int, client_id: int) -> None:
        self.host = host
        self.port = port
        self.client_id = int(client_id)
        self.pipeline: Optional[Pipeline] = None
        self.cell_id: Optional[int] = None
        self.cell: Optional[DV3DCell] = None
        self.executor = Executor(caching=True)
        self._sock: Optional[socket.socket] = None

    # -- connection -------------------------------------------------------

    def connect(self, timeout: float = 10.0) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.settimeout(60.0)
        self._sock = sock
        protocol.send_message(sock, Message(protocol.KIND_HELLO, {"client_id": self.client_id}))

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # -- message handling -------------------------------------------------------

    def _handle(self, message: Message) -> Optional[Message]:
        """Process one message; returns the reply (None = no reply)."""
        if message.kind == protocol.KIND_WORKFLOW:
            self.pipeline = Pipeline.from_dict(message.payload["pipeline"])
            self.cell_id = int(message.payload["cell_id"])
            return Message(protocol.KIND_ACK, {"client_id": self.client_id})
        if message.kind == protocol.KIND_EXECUTE:
            return self._execute()
        if message.kind == protocol.KIND_EVENT:
            return self._apply_event(message.payload)
        if message.kind == protocol.KIND_RENDER:
            return self._render(message.payload)
        if message.kind == protocol.KIND_SHUTDOWN:
            return None
        return Message(
            protocol.KIND_ERROR,
            {"client_id": self.client_id, "error": f"unknown kind {message.kind!r}"},
        )

    def _execute(self) -> Message:
        if self.pipeline is None or self.cell_id is None:
            return Message(
                protocol.KIND_ERROR,
                {"client_id": self.client_id, "error": "no workflow received"},
            )
        start = time.perf_counter()
        try:
            with obs.span(
                "hyperwall.client.execute",
                node=f"client-{self.client_id}",
                cell=self.cell_id,
            ):
                result = self.executor.execute(self.pipeline)
            self.cell = result.output(self.cell_id, "cell")
            image = result.output(self.cell_id, "image")
        except Exception as exc:  # noqa: BLE001 - reported to the server
            return Message(
                protocol.KIND_ERROR, {"client_id": self.client_id, "error": repr(exc)}
            )
        return Message(
            protocol.KIND_REPORT,
            {
                "client_id": self.client_id,
                "cell_id": self.cell_id,
                "duration": time.perf_counter() - start,
                "image_shape": list(image.shape),
                "image_mean": float(image.mean()),
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
            },
        )

    def _apply_event(self, payload: Dict[str, Any]) -> Message:
        if self.cell is None:
            return Message(
                protocol.KIND_ERROR,
                {"client_id": self.client_id, "error": "event before execution"},
            )
        from repro.util.errors import DV3DError

        try:
            delta = self.cell.handle_event(
                str(payload.get("event_kind", "key")), **dict(payload.get("event", {}))
            )
        except DV3DError:
            # incompatible gesture for this cell's plot type: acknowledged
            # and ignored (heterogeneous-wall semantics)
            delta = {}
        except Exception as exc:  # noqa: BLE001
            return Message(
                protocol.KIND_ERROR, {"client_id": self.client_id, "error": repr(exc)}
            )
        return Message(
            protocol.KIND_ACK, {"client_id": self.client_id, "delta_keys": sorted(delta)}
        )

    def _render(self, payload: Dict[str, Any]) -> Message:
        """Re-render the live cell (after propagated events changed it).

        This is the interactive refresh loop: events mutate the cell's
        plot state cheaply; a render message produces the new frame for
        the display without re-executing the data pipeline.
        """
        if self.cell is None:
            return Message(
                protocol.KIND_ERROR,
                {"client_id": self.client_id, "error": "render before execution"},
            )
        width = int(payload.get("width", 0))
        height = int(payload.get("height", 0))
        start = time.perf_counter()
        try:
            with obs.span(
                "hyperwall.client.render",
                node=f"client-{self.client_id}",
                cell=self.cell_id,
            ):
                if width > 0 and height > 0:
                    frame = self.cell.render(width, height)
                else:
                    # reuse the executed cell's own size via a fresh render
                    frame = self.cell.render(320, 240)
                image = frame.to_uint8()
        except Exception as exc:  # noqa: BLE001
            return Message(
                protocol.KIND_ERROR, {"client_id": self.client_id, "error": repr(exc)}
            )
        return Message(
            protocol.KIND_REPORT,
            {
                "client_id": self.client_id,
                "cell_id": self.cell_id,
                "duration": time.perf_counter() - start,
                "image_shape": list(image.shape),
                "image_mean": float(image.mean()),
            },
        )

    # -- main loop ---------------------------------------------------------------

    def run(self) -> int:
        """Serve until shutdown; returns the number of messages handled."""
        if self._sock is None:
            raise HyperwallError("client not connected")
        handled = 0
        while True:
            message = protocol.recv_message(self._sock)
            if message is None:
                break
            handled += 1
            if message.kind == protocol.KIND_SHUTDOWN:
                break
            reply = self._handle(message)
            if reply is not None:
                protocol.send_message(self._sock, reply)
        self.close()
        return handled


def run_client(host: str, port: int, client_id: int) -> int:
    """Process entry point: connect, serve, exit (used by the cluster)."""
    client = HyperwallClient(host, port, client_id)
    client.connect()
    try:
        return client.run()
    finally:
        client.close()
