"""The hyperwall client (display) node.

"Each client instance opens a single-cell visualization spreadsheet
window, covering its hyperwall display."  The client connects to the
server, receives its sub-workflow(s), executes them at full display
resolution, applies propagated interaction events, and reports results
(timings and image summaries — pixels stay local to the display node).

A client normally owns exactly one cell, but failover can hand it a
dead neighbor's cell too: workflows are keyed by ``cell_id``, and
``execute``/``render`` messages may target a specific cell.  The
``hyperwall.client.execute`` fault site lets tests kill or fail a
client deterministically mid-execution (``client``/``cell`` labels).
"""

from __future__ import annotations

import hashlib
import socket
import time
from typing import Any, Dict, Optional

import numpy as np

from repro import obs
from repro.dv3d.cell import DV3DCell
from repro.hyperwall import protocol
from repro.hyperwall.protocol import Message
from repro.resilience import faults
from repro.util.errors import HyperwallError
from repro.workflow.executor import Executor
from repro.workflow.pipeline import Pipeline


def image_digest(image: np.ndarray) -> str:
    """SHA-256 of a rendered frame's uint8 bytes.

    Reports carry this instead of pixels (which stay on the display
    node), so byte-identity of repeated frames — e.g. a warm-cache
    replay, or a reassigned cell matching its original — is assertable
    across process boundaries.
    """
    arr = np.ascontiguousarray(image)
    return hashlib.sha256(arr.tobytes()).hexdigest()


class HyperwallClient:
    """One display node's control loop.

    *io_timeout* bounds every socket read/write once connected, so a
    dead server (or a dropped reply) surfaces as a timeout instead of a
    hang.  *cache* (a :class:`repro.cache.CacheConfig`) opts this
    node's executor into the shared result cache.
    """

    def __init__(
        self, host: str, port: int, client_id: int, io_timeout: float = 60.0,
        cache=None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = int(client_id)
        self.io_timeout = float(io_timeout)
        #: sub-workflows and their executed cells, keyed by cell id —
        #: more than one entry only after a failover reassignment
        self.pipelines: Dict[int, Pipeline] = {}
        self.cells: Dict[int, DV3DCell] = {}
        self.executor = Executor(caching=True, cache=cache)
        self._sock: Optional[socket.socket] = None

    # -- connection -------------------------------------------------------

    def connect(self, timeout: float = 10.0) -> None:
        sock = socket.create_connection((self.host, self.port), timeout=timeout)
        sock.settimeout(self.io_timeout)
        self._sock = sock
        protocol.send_message(sock, Message(protocol.KIND_HELLO, {"client_id": self.client_id}))

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    # -- message handling -------------------------------------------------------

    def _handle(self, message: Message) -> Optional[Message]:
        """Process one message; returns the reply (None = no reply)."""
        if message.kind == protocol.KIND_WORKFLOW:
            cell_id = int(message.payload["cell_id"])
            self.pipelines[cell_id] = Pipeline.from_dict(message.payload["pipeline"])
            self.cells.pop(cell_id, None)  # a re-shipped workflow resets the cell
            return Message(
                protocol.KIND_ACK, {"client_id": self.client_id, "cell_id": cell_id}
            )
        if message.kind == protocol.KIND_EXECUTE:
            return self._execute(message.payload)
        if message.kind == protocol.KIND_EVENT:
            return self._apply_event(message.payload)
        if message.kind == protocol.KIND_RENDER:
            return self._render(message.payload)
        if message.kind == protocol.KIND_HEARTBEAT:
            return Message(
                protocol.KIND_HEARTBEAT,
                {"client_id": self.client_id, "cells": sorted(self.cells)},
            )
        if message.kind == protocol.KIND_SHUTDOWN:
            return None
        return Message(
            protocol.KIND_ERROR,
            {"client_id": self.client_id, "error": f"unknown kind {message.kind!r}"},
        )

    def _target_cell(self, payload: Dict[str, Any], executed: bool) -> Optional[int]:
        """Which cell a message addresses: explicit ``cell_id``, else the
        first un-executed workflow (*executed* False) or first live cell."""
        if payload.get("cell_id") is not None:
            return int(payload["cell_id"])
        universe = self.cells if executed else self.pipelines
        if not universe:
            return None
        if not executed:
            pending = [cid for cid in sorted(self.pipelines) if cid not in self.cells]
            if pending:
                return pending[0]
        return min(universe)

    def _execute(self, payload: Dict[str, Any]) -> Message:
        cell_id = self._target_cell(payload, executed=False)
        if cell_id is None or cell_id not in self.pipelines:
            return Message(
                protocol.KIND_ERROR,
                {"client_id": self.client_id, "error": "no workflow received"},
            )
        start = time.perf_counter()
        try:
            faults.check(
                "hyperwall.client.execute", client=self.client_id, cell=cell_id
            )
            with obs.span(
                "hyperwall.client.execute",
                node=f"client-{self.client_id}",
                cell=cell_id,
            ):
                result = self.executor.execute(self.pipelines[cell_id])
            self.cells[cell_id] = result.output(cell_id, "cell")
            image = result.output(cell_id, "image")
        except Exception as exc:  # noqa: BLE001 - reported to the server
            return Message(
                protocol.KIND_ERROR, {"client_id": self.client_id, "error": repr(exc)}
            )
        return Message(
            protocol.KIND_REPORT,
            {
                "client_id": self.client_id,
                "cell_id": cell_id,
                "duration": time.perf_counter() - start,
                "image_shape": list(image.shape),
                "image_mean": float(image.mean()),
                "image_digest": image_digest(image),
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
            },
        )

    def _apply_event(self, payload: Dict[str, Any]) -> Message:
        if not self.cells:
            return Message(
                protocol.KIND_ERROR,
                {"client_id": self.client_id, "error": "event before execution"},
            )
        from repro.util.errors import DV3DError

        delta_keys: set = set()
        for cell in (self.cells[cid] for cid in sorted(self.cells)):
            try:
                delta = cell.handle_event(
                    str(payload.get("event_kind", "key")),
                    **dict(payload.get("event", {})),
                )
            except DV3DError:
                # incompatible gesture for this cell's plot type: acknowledged
                # and ignored (heterogeneous-wall semantics)
                delta = {}
            except Exception as exc:  # noqa: BLE001
                return Message(
                    protocol.KIND_ERROR,
                    {"client_id": self.client_id, "error": repr(exc)},
                )
            delta_keys.update(delta)
        return Message(
            protocol.KIND_ACK,
            {"client_id": self.client_id, "delta_keys": sorted(delta_keys)},
        )

    def _render(self, payload: Dict[str, Any]) -> Message:
        """Re-render a live cell (after propagated events changed it).

        This is the interactive refresh loop: events mutate the cell's
        plot state cheaply; a render message produces the new frame for
        the display without re-executing the data pipeline.
        """
        cell_id = self._target_cell(payload, executed=True)
        if cell_id is None or cell_id not in self.cells:
            return Message(
                protocol.KIND_ERROR,
                {"client_id": self.client_id, "error": "render before execution"},
            )
        cell = self.cells[cell_id]
        width = int(payload.get("width", 0))
        height = int(payload.get("height", 0))
        start = time.perf_counter()
        try:
            with obs.span(
                "hyperwall.client.render",
                node=f"client-{self.client_id}",
                cell=cell_id,
            ):
                if width > 0 and height > 0:
                    frame = cell.render(width, height)
                else:
                    # reuse the executed cell's own size via a fresh render
                    frame = cell.render(320, 240)
                image = frame.to_uint8()
        except Exception as exc:  # noqa: BLE001
            return Message(
                protocol.KIND_ERROR, {"client_id": self.client_id, "error": repr(exc)}
            )
        return Message(
            protocol.KIND_REPORT,
            {
                "client_id": self.client_id,
                "cell_id": cell_id,
                "duration": time.perf_counter() - start,
                "image_shape": list(image.shape),
                "image_mean": float(image.mean()),
                "image_digest": image_digest(image),
            },
        )

    # -- main loop ---------------------------------------------------------------

    def run(self) -> int:
        """Serve until shutdown; returns the number of messages handled.

        A lost server connection (reset, timeout, corrupt frame) ends
        the loop cleanly — the display node goes dark, it does not
        crash.
        """
        if self._sock is None:
            raise HyperwallError("client not connected")
        handled = 0
        while True:
            try:
                message = protocol.recv_message(self._sock)
                if message is None:
                    break
                handled += 1
                if message.kind == protocol.KIND_SHUTDOWN:
                    break
                reply = self._handle(message)
                if reply is not None:
                    protocol.send_message(self._sock, reply)
            except (OSError, HyperwallError):
                break
        self.close()
        return handled


def run_client(
    host: str, port: int, client_id: int, io_timeout: float = 60.0, cache=None
) -> int:
    """Process entry point: connect, serve, exit (used by the cluster)."""
    if cache is not None:
        # install process-wide so interactive re-renders (which happen
        # outside executor.execute) also hit the frame cache
        from repro.cache.config import set_config

        set_config(cache)
    client = HyperwallClient(host, port, client_id, io_timeout=io_timeout, cache=cache)
    client.connect()
    try:
        return client.run()
    finally:
        client.close()
