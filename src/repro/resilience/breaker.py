"""A minimal three-state circuit breaker.

Protects a repeatedly-failing dependency (a dead hyperwall client, an
unreachable federation node) from being hammered by retries: after
``failure_threshold`` consecutive failures the breaker *opens* and
short-circuits calls for ``reset_timeout`` seconds, then lets a bounded
number of *half-open* probes through; one success re-closes it, a
probe failure re-opens it.

The clock is injectable so tests (and the simulated-time benchmarks)
drive state transitions without waiting.  State is exported as the
``resilience.breaker.state`` gauge (0 = closed, 1 = half-open,
2 = open) and transitions as the ``resilience.breaker.transitions``
counter, both labelled by breaker name.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Optional

from repro import obs
from repro.util.errors import ResilienceError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

_STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitOpenError(ResilienceError):
    """A call was short-circuited because the breaker is open."""


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing."""

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ResilienceError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ResilienceError(f"reset_timeout must be positive, got {reset_timeout}")
        if half_open_max < 1:
            raise ResilienceError(f"half_open_max must be >= 1, got {half_open_max}")
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.half_open_max = int(half_open_max)
        self.clock = clock
        self.name = name
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes = 0

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._current_state()

    def _current_state(self) -> str:
        # caller holds the lock
        if self._state == OPEN and self.clock() - self._opened_at >= self.reset_timeout:
            self._transition(HALF_OPEN)
            self._probes = 0
        return self._state

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        previous, self._state = self._state, state
        if obs.enabled():
            obs.gauge("resilience.breaker.state", _STATE_GAUGE[state], breaker=self.name)
            obs.counter(
                "resilience.breaker.transitions",
                breaker=self.name,
                from_state=previous,
                to_state=state,
            )

    def allow(self) -> bool:
        """Whether a call may proceed right now (consumes a probe slot
        when half-open)."""
        with self._lock:
            state = self._current_state()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and self._probes < self.half_open_max:
                self._probes += 1
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._transition(CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            state = self._current_state()
            self._failures += 1
            if state == HALF_OPEN or self._failures >= self.failure_threshold:
                self._opened_at = self.clock()
                self._transition(OPEN)

    # -- call wrapper ------------------------------------------------------

    def call(
        self,
        fn: Callable[[], Any],
        fallback: Optional[Callable[[], Any]] = None,
    ) -> Any:
        """Run *fn* through the breaker.

        Short-circuits to *fallback* (or raises :class:`CircuitOpenError`)
        while open; success/failure of *fn* feeds the state machine.
        """
        if not self.allow():
            if fallback is not None:
                return fallback()
            raise CircuitOpenError(
                f"circuit {self.name!r} is open "
                f"({self._failures} consecutive failures)"
            )
        try:
            value = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return value
