"""Composable retry policies with deterministic backoff.

A :class:`RetryPolicy` is a frozen value object describing *how* to
retry — attempt budget, exponential backoff, jitter, an optional
wall-clock deadline — separated from *what* to retry (any callable)
and *which* failures are retryable (an exception tuple).  Jitter is
deterministic: it comes from :func:`repro.util.rng.deterministic_rng`
seeded by the policy's ``seed`` and the attempt number, so a given
policy produces the identical delay sequence run-to-run (the same
reproducibility contract the rest of the codebase keeps).

Every retry is observable: ``resilience.retries`` counts them by site
label, ``resilience.retry.delay`` histograms the backoff actually
applied, and ``resilience.recovery.seconds`` records the time from
first failure to eventual success — the time-to-recovery number the
BENCH artifact tracks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Tuple, Type

from repro import obs
from repro.util.errors import ResilienceError
from repro.util.rng import deterministic_rng


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry a failing operation.

    Parameters
    ----------
    max_attempts:
        Total tries, including the first (1 = no retries).
    base_delay:
        Backoff before the first retry, in seconds.
    multiplier:
        Exponential growth factor per retry.
    max_delay:
        Ceiling on a single backoff interval.
    jitter:
        Fractional symmetric jitter (0.1 = ±10%), drawn from a
        deterministic per-attempt RNG; 0 disables it.
    deadline:
        Total wall-clock budget in seconds; once spending the next
        backoff would exceed it, the policy stops retrying.
    seed:
        Namespace for the jitter RNG (policies with different seeds
        de-correlate their delay sequences deterministically).
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 5.0
    jitter: float = 0.1
    deadline: Optional[float] = None
    seed: str = "retry"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ResilienceError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ResilienceError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ResilienceError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise ResilienceError(f"deadline must be positive, got {self.deadline}")

    def with_seed(self, seed: str) -> "RetryPolicy":
        """This policy with a different jitter namespace."""
        return replace(self, seed=seed)

    def delay_for(self, attempt: int) -> float:
        """Backoff after the (0-based) *attempt*-th failure, jittered."""
        raw = min(self.base_delay * self.multiplier**attempt, self.max_delay)
        if self.jitter and raw > 0:
            rng = deterministic_rng(f"{self.seed}/attempt-{attempt}")
            raw *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return raw

    def delays(self) -> Tuple[float, ...]:
        """The full (deterministic) backoff schedule this policy yields."""
        return tuple(self.delay_for(a) for a in range(self.max_attempts - 1))

    def run(
        self,
        fn: Callable[[], Any],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        label: str = "call",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> Any:
        """Call *fn* under this policy; returns its value or re-raises.

        *sleep* is injectable so tests retry without real waiting;
        *on_retry(attempt, exc, delay)* observes each scheduled retry.
        """
        start = time.monotonic()
        last: Optional[BaseException] = None
        for attempt in range(self.max_attempts):
            try:
                value = fn()
            except retry_on as exc:
                last = exc
                if attempt + 1 >= self.max_attempts:
                    break
                delay = self.delay_for(attempt)
                if (
                    self.deadline is not None
                    and (time.monotonic() - start) + delay > self.deadline
                ):
                    break
                if obs.enabled():
                    obs.counter("resilience.retries", site=label)
                    obs.histogram("resilience.retry.delay", delay, site=label)
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                sleep(delay)
                continue
            if attempt > 0 and obs.enabled():
                obs.histogram(
                    "resilience.recovery.seconds",
                    time.monotonic() - start,
                    site=label,
                )
            return value
        assert last is not None
        raise last


#: no retries at all — the fail-fast baseline for ablations
FAIL_FAST = RetryPolicy(max_attempts=1, base_delay=0.0, jitter=0.0)
