"""Fault tolerance for the distributed layers (retry, breakers, fault injection).

The paper's headline deployment — DV3D driving a multi-node hyperwall
over long-running, time-varying data — makes node loss the steady
state, not the exception.  This package is the shared vocabulary the
distributed seams (hyperwall server, kernel pool, workflow executor,
ESG federation) use to survive it:

* :class:`RetryPolicy` — attempt budgets, exponential backoff with
  *deterministic* jitter (seeded via :mod:`repro.util.rng`), and
  wall-clock deadline budgets;
* :class:`CircuitBreaker` — consecutive-failure tripping with
  half-open probing and an injectable clock;
* :mod:`repro.resilience.faults` — a deterministic fault-injection
  registry: tests arm ``drop``/``exit``/``raise``/``delay``/``corrupt``
  faults at named sites (``hyperwall.server.recv``, ``parallel.tile``,
  ``executor.module``, ...) so every recovery path is exercised
  exactly, not probabilistically.

Observability: ``resilience.retries`` / ``resilience.degraded`` /
``resilience.faults.fired`` counters, ``resilience.breaker.state``
gauges and ``resilience.recovery.seconds`` histograms flow into
:mod:`repro.obs`, and ``tools/perf_report.py --resilience`` turns them
into the ``BENCH_resilience.json`` artifact CI tracks.
"""

from repro.resilience import faults
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
)
from repro.resilience.faults import Fault, FaultRegistry
from repro.resilience.policy import FAIL_FAST, RetryPolicy
from repro.util.errors import InjectedFault, ResilienceError

__all__ = [
    "CLOSED",
    "FAIL_FAST",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "CircuitOpenError",
    "Fault",
    "FaultRegistry",
    "InjectedFault",
    "ResilienceError",
    "RetryPolicy",
    "faults",
]
