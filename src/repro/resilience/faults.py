"""The deterministic fault-injection registry.

Every recovery path in the distributed layers is exercised by *armed*
faults, not by probabilistic chaos: a test (or benchmark) arms a
:class:`Fault` at a named **site** — a string like ``"hyperwall.server.recv"``
or ``"parallel.tile"`` — and the instrumented code calls
:func:`check` at that site on every pass, supplying its labels
(client id, tile index, respawn attempt, module name, ...).  A fault
fires only when its ``match`` predicate is a subset of the supplied
labels, only after ``after`` matching visits have passed, and at most
``times`` times — so "kill client 2 on its first execute" or "drop the
socket on the second reply from tile 3" are exact, repeatable
scenarios.

Fault actions:

``raise``
    raise :class:`~repro.util.errors.InjectedFault` at the site;
``exit``
    ``os._exit(exit_code)`` — a hard process kill (worker/client
    processes; never fired in the test runner's own process by the
    instrumented sites, which only place it in child processes);
``delay``
    sleep ``delay`` seconds, then continue;
``drop`` / ``corrupt``
    returned to the caller, which interprets them (e.g. the hyperwall
    server closes the connection for ``drop``; the protocol layer
    flips payload bytes for ``corrupt``).

Fork semantics: the registry is plain process-global state, so faults
armed *before* worker/client processes fork are inherited by the
children; fire counts are per-process.  Sites therefore pass
discriminating labels (``attempt``, ``client``, ``tile``) and faults
match on them, keeping injection deterministic across process trees.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro import obs
from repro.util.errors import InjectedFault, ResilienceError

ACTIONS = ("raise", "exit", "delay", "drop", "corrupt")


@dataclass
class Fault:
    """One armed fault: what to do, where it applies, and how often."""

    action: str
    site: str = ""
    match: Dict[str, Any] = field(default_factory=dict)
    times: int = 1  # fire at most this many times (<= 0 means unlimited)
    after: int = 0  # let this many matching visits pass unharmed first
    delay_seconds: float = 0.0
    exit_code: int = 9
    message: str = ""
    #: per-process state
    visits: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ResilienceError(
                f"unknown fault action {self.action!r}; expected one of {ACTIONS}"
            )

    def matches(self, labels: Dict[str, Any]) -> bool:
        return all(labels.get(k) == v for k, v in self.match.items())

    def exhausted(self) -> bool:
        return self.times > 0 and self.fired >= self.times


class FaultRegistry:
    """Process-global registry of armed faults, keyed by site name."""

    def __init__(self) -> None:
        self._sites: Dict[str, List[Fault]] = {}
        self._lock = threading.Lock()

    # -- arming ------------------------------------------------------------

    def arm(self, site: str, action: str, **kwargs: Any) -> Fault:
        """Arm a fault at *site*; returns it (inspectable: ``fault.fired``)."""
        fault = Fault(action=action, site=site, **kwargs)
        with self._lock:
            self._sites.setdefault(site, []).append(fault)
        return fault

    def disarm(self, site: Optional[str] = None) -> None:
        """Remove every fault at *site* (or everywhere when None)."""
        with self._lock:
            if site is None:
                self._sites.clear()
            else:
                self._sites.pop(site, None)

    def armed(self, site: Optional[str] = None) -> bool:
        with self._lock:
            if site is None:
                return any(self._sites.values())
            return bool(self._sites.get(site))

    # -- firing ------------------------------------------------------------

    def check(self, site: str, **labels: Any) -> Optional[Fault]:
        """Visit *site*; fire the first matching armed fault, if any.

        ``raise``/``exit``/``delay`` faults act here; ``drop``/``corrupt``
        faults are returned for the caller to interpret.  Returns None
        when nothing fired.
        """
        with self._lock:
            candidates = self._sites.get(site)
            if not candidates:
                return None
            fault = None
            for candidate in candidates:
                if candidate.exhausted() or not candidate.matches(labels):
                    continue
                candidate.visits += 1
                if candidate.visits <= candidate.after:
                    continue
                candidate.fired += 1
                fault = candidate
                break
        if fault is None:
            return None
        if obs.enabled():
            obs.counter("resilience.faults.fired", site=site, action=fault.action)
        if fault.action == "raise":
            raise InjectedFault(
                fault.message or f"injected fault at {site} ({labels})"
            )
        if fault.action == "exit":
            os._exit(fault.exit_code)
        if fault.action == "delay":
            time.sleep(fault.delay_seconds)
            return fault
        return fault


#: the process-global registry used by all instrumented sites
_REGISTRY = FaultRegistry()


def get_registry() -> FaultRegistry:
    return _REGISTRY


def arm(site: str, action: str, **kwargs: Any) -> Fault:
    """Arm a fault on the global registry (see :meth:`FaultRegistry.arm`)."""
    return _REGISTRY.arm(site, action, **kwargs)


def disarm(site: Optional[str] = None) -> None:
    _REGISTRY.disarm(site)


def armed(site: Optional[str] = None) -> bool:
    return _REGISTRY.armed(site)


def check(site: str, **labels: Any) -> Optional[Fault]:
    """Site hook: no-op (and allocation-free) unless a fault is armed."""
    if not _REGISTRY.armed(site):
        return None
    return _REGISTRY.check(site, **labels)


class injected:
    """Context manager arming one fault for the duration of a block::

        with faults.injected("executor.module", "raise", match={"module": "X"}):
            ...

    Disarms only the faults it armed, restoring prior state.
    """

    def __init__(self, site: str, action: str, **kwargs: Any) -> None:
        self.site = site
        self.action = action
        self.kwargs = kwargs
        self.fault: Optional[Fault] = None

    def __enter__(self) -> Fault:
        self.fault = arm(self.site, self.action, **self.kwargs)
        return self.fault

    def __exit__(self, *exc_info: Any) -> None:
        with _REGISTRY._lock:
            site_faults = _REGISTRY._sites.get(self.site, [])
            if self.fault in site_faults:
                site_faults.remove(self.fault)
            if not site_faults:
                _REGISTRY._sites.pop(self.site, None)


def iter_faults() -> Iterator[Fault]:
    """Snapshot of every armed fault (diagnostics and test assertions)."""
    with _REGISTRY._lock:
        snapshot = [f for faults in _REGISTRY._sites.values() for f in faults]
    return iter(snapshot)
