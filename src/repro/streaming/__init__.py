"""Fault-tolerant out-of-core streaming over the chunked ``.cdz`` v2 format.

The paper's claim is interactive exploration of datasets far larger
than a workstation's memory; this package supplies the missing layer
between the ``.cdz`` container and the DV3D animation loop:

* :mod:`repro.streaming.format` — the v2 container: per-timestep
  chunks with manifest-pinned sha256 content digests, per-chunk
  finite-value statistics (scalar ranges without payload reads), and
  low-resolution fallback companions;
* :mod:`repro.streaming.reader` — read → verify → decode per chunk
  under a :class:`~repro.resilience.policy.RetryPolicy`, with named
  fault sites (``streaming.read`` / ``streaming.verify`` /
  ``streaming.decode``), quarantine-and-heal semantics, and
  digest-keyed publication into the ambient result cache;
* :mod:`repro.streaming.prefetch` — a byte-budgeted background
  pipeline running ahead of the animation cursor with backpressure;
* :mod:`repro.streaming.dataset` — archive-level access handing out
  per-variable readers and prefetchers;
* :mod:`repro.streaming.config` — the frozen
  :class:`StreamingConfig` value object.

The consumer-facing entry points live in :mod:`repro.cdms`:
``open_dataset(path, streaming=True)`` yields lazy variables whose
slabs materialize through this package, byte-identical to the
in-memory path; :class:`repro.dv3d.animation.StreamingAnimator` adds
the degradation ladder (retry → low-res substitute → previous verified
frame → blank) so corruption never aborts an animation.
"""

from repro.streaming.config import DEFAULT_MEMORY_BUDGET, StreamingConfig
from repro.streaming.dataset import StreamingSource, open_source
from repro.streaming.format import (
    DEFAULT_CHUNK_TIMESTEPS,
    DEFAULT_LOWRES_FACTOR,
    ChunkMeta,
    VariableLayout,
    content_digest,
    write_archive_v2,
)
from repro.streaming.prefetch import Prefetcher
from repro.streaming.reader import ChunkReader
from repro.util.errors import ChunkCorruptionError, StreamingError

__all__ = [
    "DEFAULT_CHUNK_TIMESTEPS",
    "DEFAULT_LOWRES_FACTOR",
    "DEFAULT_MEMORY_BUDGET",
    "ChunkCorruptionError",
    "ChunkMeta",
    "ChunkReader",
    "Prefetcher",
    "StreamingConfig",
    "StreamingError",
    "StreamingSource",
    "VariableLayout",
    "content_digest",
    "open_source",
    "write_archive_v2",
]
