"""The bounded-memory prefetch pipeline.

One :class:`Prefetcher` runs ahead of one consumer cursor (the
animation loop's time index) over one variable's chunk table.  A single
daemon thread pipelines read → verify → decode for the chunks the
cursor is about to want, parking results in a slot map; the consumer's
:meth:`get` serves from the slots, waits on an in-flight chunk, or
falls back to a foreground read.

Backpressure is a byte budget, not a queue length: the effective window
``w`` satisfies ``(w + 1) * max_chunk_bytes <= memory_budget_bytes``
(the ``+1`` is the slab being served), clamped by the configured
``prefetch_depth``.  Moving the cursor evicts every slot outside the
new window — including wrap-around lookahead, so a looping animation
keeps its pipeline warm across the seam.

Failure semantics: background read errors are parked per chunk and
re-raised (once) by the ``get`` that wants them, so the degradation
ladder runs on the consumer's thread with full context; quarantined
chunks are skipped by the background thread (no slot-wasting) but
re-attempted by direct gets, which is how a chunk heals after a
transient fault clears.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

import numpy as np

from repro import obs
from repro.streaming.config import StreamingConfig
from repro.streaming.reader import ChunkReader
from repro.util.errors import StreamingError


class Prefetcher:
    """Pipelined, budget-bounded chunk delivery for one variable."""

    def __init__(self, reader: ChunkReader, config: Optional[StreamingConfig] = None) -> None:
        self.reader = reader
        self.config = config or reader.config
        self.layout = reader.layout
        max_chunk = self.layout.max_chunk_nbytes()
        if max_chunk > self.config.memory_budget_bytes:
            raise StreamingError(
                f"variable {self.layout.id!r}: one chunk is {max_chunk} bytes, "
                f"over the {self.config.memory_budget_bytes}-byte memory budget"
            )
        budget_window = self.config.memory_budget_bytes // max(max_chunk, 1) - 1
        self.window = (
            max(0, min(self.config.prefetch_depth, budget_window))
            if self.config.prefetch
            else 0
        )
        self._cond = threading.Condition()
        self._slots: Dict[int, np.ndarray] = {}
        self._errors: Dict[int, StreamingError] = {}
        self._inflight: Optional[int] = None
        self._cursor = 0
        self._stopped = False
        self._resident = 0
        self.peak_resident_bytes = 0
        self._thread: Optional[threading.Thread] = None
        if self.window > 0:
            self._thread = threading.Thread(
                target=self._run,
                name=f"streaming-prefetch-{self.layout.id}",
                daemon=True,
            )
            self._thread.start()

    # -- consumer side -----------------------------------------------------

    def get(self, chunk_index: int) -> np.ndarray:
        """The verified payload of chunk *chunk_index*; moves the cursor.

        Raises :class:`StreamingError` when the chunk cannot be
        delivered (after retries) — the caller owns degradation.
        """
        chunk = self.layout.chunks[chunk_index]
        with self._cond:
            self._advance(chunk_index)
            while self._inflight == chunk_index:
                self._cond.wait(timeout=0.05)
            error = self._errors.pop(chunk_index, None)
            if error is not None:
                raise error
            value = self._slots.get(chunk_index)
            if value is not None:
                if obs.enabled():
                    obs.counter("streaming.prefetch.hits", var=self.layout.id)
                return value
        if obs.enabled() and self.window > 0:
            obs.counter("streaming.prefetch.misses", var=self.layout.id)
        value = self.reader.read_chunk(chunk)
        with self._cond:
            if chunk_index in self._wanted():
                self._store(chunk_index, value)
        return value

    def hint(self, chunk_index: int) -> None:
        """Steer the lookahead window toward *chunk_index* without reading.

        The serving layer's speculative-render hook: an animating
        session about to ask for timestep ``t+1`` lets the prefetch
        thread start on that chunk before the demand render arrives.
        Identical to the cursor move a :meth:`get` performs — same
        eviction, same byte-budget invariant — minus the read.
        """
        if self.window <= 0:
            return
        if not 0 <= chunk_index < self.layout.n_chunks:
            return
        with self._cond:
            if chunk_index != self._cursor:
                self._advance(chunk_index)
        if obs.enabled():
            obs.counter("streaming.prefetch.hints", var=self.layout.id)

    def _advance(self, cursor: int) -> None:
        """Move the cursor (cond held): evict stale slots, wake the thread."""
        self._cursor = cursor
        wanted = self._wanted()
        for index in list(self._slots):
            if index not in wanted:
                self._resident -= self._slots.pop(index).nbytes
        for index in list(self._errors):
            if index not in wanted:
                self._errors.pop(index)
        if obs.enabled():
            obs.gauge("streaming.resident.bytes", self._resident, var=self.layout.id)
        self._cond.notify_all()

    def _wanted(self) -> List[int]:
        """The cursor plus its lookahead window, wrapping at the end."""
        n = self.layout.n_chunks
        return [(self._cursor + k) % n for k in range(min(self.window + 1, n))]

    def _store(self, index: int, value: np.ndarray) -> None:
        if index not in self._slots:
            self._resident += value.nbytes
        self._slots[index] = value
        if self._resident > self.peak_resident_bytes:
            self.peak_resident_bytes = self._resident
        if obs.enabled():
            obs.gauge("streaming.resident.bytes", self._resident, var=self.layout.id)
            obs.gauge(
                "streaming.prefetch.depth", len(self._slots), var=self.layout.id
            )

    @property
    def resident_bytes(self) -> int:
        with self._cond:
            return self._resident

    def close(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        with self._cond:
            self._slots.clear()
            self._errors.clear()
            self._resident = 0

    def __enter__(self) -> "Prefetcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- background side ---------------------------------------------------

    def _next_target(self) -> Optional[int]:
        """The nearest wanted chunk not yet delivered (cond held)."""
        for index in self._wanted():
            if index in self._slots or index in self._errors:
                continue
            if self.reader.is_quarantined(index):
                continue
            return index
        return None

    def _run(self) -> None:
        while True:
            with self._cond:
                target = self._next_target()
                while target is None and not self._stopped:
                    self._cond.wait(timeout=0.1)
                    target = self._next_target()
                if self._stopped:
                    return
                self._inflight = target
            try:
                value = self.reader.read_chunk(self.layout.chunks[target])
                error = None
            except StreamingError as exc:
                value = None
                error = exc
            with self._cond:
                self._inflight = None
                if target in self._wanted():
                    if error is None:
                        self._store(target, value)
                    else:
                        self._errors[target] = error
                self._cond.notify_all()
