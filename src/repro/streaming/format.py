"""The chunked ``.cdz`` format, version 2.

Layout of a v2 container (a ZIP archive, like v1):

* ``manifest.json`` — dataset id, attributes, axis metadata, and per
  variable a **chunk table**: the chunked dimension, each chunk's
  coordinate range, its archive member name, its content digest
  (``sha256:<hex>`` over the member's raw bytes), its stored size, and
  summary statistics (finite-value min/max/count) so scalar ranges are
  known without touching payload data;
* ``axes/<name>.npy`` (+ ``.bounds.npy``) — axis arrays, exactly as in
  v1 but digest-pinned by the manifest;
* ``chunks/v<i>/c<j>.npy`` — one ``.npy`` payload per chunk, stored
  **uncompressed** (``ZIP_STORED``) so byte ranges on disk are the
  payload bytes the digest covers;
* ``chunks/v<i>/c<j>.lr.npy`` — an optional low-resolution companion
  per chunk (strided decimation of the spatial dimensions), the
  degraded-serving fallback when the full chunk is unreadable.

Chunks split the variable along its **time dimension** (or the leading
dimension when there is no time axis), ``chunk_timesteps`` coordinate
points per chunk — the per-timestep/per-slab granularity the animation
cursor consumes.  Values are stored exactly as v1 stores them (masked
elements encoded as ``missing_value``), so a v2 container materializes
byte-identically to its v1 equivalent.
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.storage import _axis_manifest, _npy_bytes, _npy_load
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError, StreamingError

FORMAT_VERSION = 2

#: default number of coordinate points (timesteps) per chunk
DEFAULT_CHUNK_TIMESTEPS = 1
#: default decimation factor of the low-resolution fallback companions
DEFAULT_LOWRES_FACTOR = 2


def content_digest(payload: bytes) -> str:
    """The canonical chunk digest: ``sha256:<hex>`` over raw bytes."""
    return "sha256:" + hashlib.sha256(payload).hexdigest()


# ---------------------------------------------------------------------------
# manifest model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ChunkMeta:
    """One chunk's manifest row."""

    index: int
    start: int
    stop: int
    member: str
    digest: str
    stored_bytes: int
    stat_min: Optional[float]
    stat_max: Optional[float]
    stat_valid: int
    lowres_member: Optional[str]
    lowres_digest: Optional[str]
    lowres_factor: int

    @property
    def extent(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class VariableLayout:
    """One variable's manifest entry: metadata plus its chunk table."""

    index: int
    id: str
    dimensions: Tuple[str, ...]
    attributes: Dict[str, object]
    missing_value: float
    dtype: np.dtype
    chunk_axis: int
    shape: Tuple[int, ...]
    chunks: Tuple[ChunkMeta, ...]

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    def chunk_shape(self, chunk: ChunkMeta) -> Tuple[int, ...]:
        shape = list(self.shape)
        shape[self.chunk_axis] = chunk.extent
        return tuple(shape)

    def chunk_nbytes(self, chunk: ChunkMeta) -> int:
        return int(np.prod(self.chunk_shape(chunk), dtype=np.int64)) * self.dtype.itemsize

    def max_chunk_nbytes(self) -> int:
        return max((self.chunk_nbytes(c) for c in self.chunks), default=0)

    def total_nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize

    def chunk_of(self, coordinate_index: int) -> ChunkMeta:
        """The chunk covering one index along the chunked dimension."""
        n = self.shape[self.chunk_axis]
        if not 0 <= coordinate_index < n:
            raise StreamingError(
                f"variable {self.id!r}: index {coordinate_index} outside "
                f"chunked dimension of extent {n}"
            )
        for chunk in self.chunks:
            if chunk.start <= coordinate_index < chunk.stop:
                return chunk
        raise StreamingError(
            f"variable {self.id!r}: no chunk covers index {coordinate_index} "
            "(corrupt chunk table)"
        )

    def chunks_covering(self, start: int, stop: int) -> List[ChunkMeta]:
        return [c for c in self.chunks if c.stop > start and c.start < stop]

    def finite_range(self) -> Optional[Tuple[float, float]]:
        """Dataset-wide finite min/max from the chunk statistics."""
        mins = [c.stat_min for c in self.chunks if c.stat_valid > 0]
        maxs = [c.stat_max for c in self.chunks if c.stat_valid > 0]
        if not mins:
            return None
        return float(min(mins)), float(max(maxs))


# ---------------------------------------------------------------------------
# writing
# ---------------------------------------------------------------------------


def _roundtrip_mask(raw: np.ndarray, missing: float) -> np.ma.MaskedArray:
    """Exactly the masking a reader applies to decoded payload bytes."""
    return np.ma.masked_values(raw, missing, rtol=1e-6, atol=0.0)


def _chunk_stats(raw: np.ndarray, missing: float) -> Tuple[Optional[float], Optional[float], int]:
    """Finite-value (min, max, count) as a reader would compute them."""
    values = _roundtrip_mask(raw, missing).compressed()
    values = values[np.isfinite(values)]
    if values.size == 0:
        return None, None, 0
    return float(values.min()), float(values.max()), int(values.size)


def decimate(raw: np.ndarray, chunk_axis: int, factor: int) -> np.ndarray:
    """Strided decimation of every dimension except the chunked one."""
    index = tuple(
        slice(None) if dim == chunk_axis else slice(None, None, factor)
        for dim in range(raw.ndim)
    )
    return np.ascontiguousarray(raw[index])


def upsample(lowres: np.ndarray, target_shape: Sequence[int], chunk_axis: int, factor: int) -> np.ndarray:
    """Nearest-neighbour upsampling back to *target_shape*."""
    out = lowres
    for dim, extent in enumerate(target_shape):
        if dim == chunk_axis:
            continue
        out = np.repeat(out, factor, axis=dim)
        if out.shape[dim] > extent:
            index = tuple(
                slice(None, extent) if d == dim else slice(None)
                for d in range(out.ndim)
            )
            out = out[index]
    if tuple(out.shape) != tuple(target_shape):
        raise StreamingError(
            f"lowres upsample produced shape {out.shape}, expected {tuple(target_shape)}"
        )
    return np.ascontiguousarray(out)


def _chunk_dimension(var: Variable) -> int:
    """The dimension a variable is chunked along (time, else leading)."""
    for dim, axis in enumerate(var.axes):
        if axis.designation() == "time":
            return dim
    return 0


def _chunk_ranges(extent: int, chunk_timesteps: int) -> List[Tuple[int, int]]:
    step = max(int(chunk_timesteps), 1)
    return [(start, min(start + step, extent)) for start in range(0, extent, step)]


def write_archive_v2(
    archive: zipfile.ZipFile,
    variables: List[Variable],
    axes: Dict[str, Axis],
    dataset_id: str,
    attributes: Optional[Dict[str, object]],
    chunk_timesteps: int = DEFAULT_CHUNK_TIMESTEPS,
    lowres_factor: int = DEFAULT_LOWRES_FACTOR,
) -> None:
    """Write the v2 members into an open (empty) ZIP archive.

    The caller (:func:`repro.cdms.storage.write_cdz`) owns the archive
    lifecycle and the atomic tmp+rename publish.
    """
    if chunk_timesteps < 1:
        raise StreamingError(f"chunk_timesteps must be >= 1, got {chunk_timesteps}")
    if lowres_factor < 1:
        raise StreamingError(f"lowres_factor must be >= 1, got {lowres_factor}")
    axis_entries: List[Dict[str, object]] = []
    for axis in axes.values():
        entry = _axis_manifest(axis)
        member = f"axes/{axis.id}.npy"
        payload = _npy_bytes(axis.values)
        archive.writestr(member, payload)
        entry["member"] = member
        entry["digest"] = content_digest(payload)
        bounds = axis.get_bounds()
        if bounds is not None:
            bounds_member = f"axes/{axis.id}.bounds.npy"
            bounds_payload = _npy_bytes(bounds)
            archive.writestr(bounds_member, bounds_payload)
            entry["bounds_member"] = bounds_member
            entry["bounds_digest"] = content_digest(bounds_payload)
        axis_entries.append(entry)

    variable_entries: List[Dict[str, object]] = []
    for var_index, var in enumerate(variables):
        chunk_axis = _chunk_dimension(var)
        filled = np.ascontiguousarray(var.filled())
        rows: List[Dict[str, object]] = []
        for chunk_index, (start, stop) in enumerate(
            _chunk_ranges(var.shape[chunk_axis], chunk_timesteps)
        ):
            taker = tuple(
                slice(start, stop) if dim == chunk_axis else slice(None)
                for dim in range(var.ndim)
            )
            raw = np.ascontiguousarray(filled[taker])
            payload = _npy_bytes(raw)
            member = f"chunks/v{var_index:03d}/c{chunk_index:06d}.npy"
            # chunks are stored raw so the digest covers the on-disk bytes
            archive.writestr(member, payload, compress_type=zipfile.ZIP_STORED)
            stat_min, stat_max, stat_valid = _chunk_stats(raw, var.missing_value)
            row: Dict[str, object] = {
                "start": start,
                "stop": stop,
                "member": member,
                "digest": content_digest(payload),
                "bytes": len(payload),
                "stats": {"min": stat_min, "max": stat_max, "valid": stat_valid},
                "lowres": None,
            }
            if lowres_factor > 1:
                lowres_payload = _npy_bytes(decimate(raw, chunk_axis, lowres_factor))
                lowres_member = f"chunks/v{var_index:03d}/c{chunk_index:06d}.lr.npy"
                archive.writestr(
                    lowres_member, lowres_payload, compress_type=zipfile.ZIP_STORED
                )
                row["lowres"] = {
                    "member": lowres_member,
                    "digest": content_digest(lowres_payload),
                    "factor": lowres_factor,
                }
            rows.append(row)
        variable_entries.append(
            {
                "id": var.id,
                "dimensions": [a.id for a in var.axes],
                "attributes": var.attributes,
                "missing_value": var.missing_value,
                "dtype": str(var.dtype),
                "chunk_axis": chunk_axis,
                "chunks": rows,
            }
        )

    manifest = {
        "format_version": FORMAT_VERSION,
        "id": dataset_id,
        "attributes": attributes or {},
        "chunking": {"extent": int(chunk_timesteps), "lowres_factor": int(lowres_factor)},
        "axes": axis_entries,
        "variables": variable_entries,
    }
    archive.writestr("manifest.json", json.dumps(manifest, indent=1))


# ---------------------------------------------------------------------------
# manifest parsing
# ---------------------------------------------------------------------------


def parse_layouts(manifest: Dict[str, object], axes: Dict[str, Axis]) -> List[VariableLayout]:
    """The typed chunk tables of a v2 manifest."""
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StreamingError(
            f"not a v2 manifest (format_version={manifest.get('format_version')!r})"
        )
    layouts: List[VariableLayout] = []
    for var_index, meta in enumerate(manifest.get("variables", [])):
        dimensions = tuple(meta["dimensions"])
        try:
            shape = tuple(len(axes[dim]) for dim in dimensions)
        except KeyError as exc:
            raise StreamingError(
                f"variable {meta.get('id')!r} references unknown axis {exc.args[0]!r}"
            ) from None
        chunks: List[ChunkMeta] = []
        for chunk_index, row in enumerate(meta.get("chunks", [])):
            stats = row.get("stats") or {}
            lowres = row.get("lowres") or None
            chunks.append(
                ChunkMeta(
                    index=chunk_index,
                    start=int(row["start"]),
                    stop=int(row["stop"]),
                    member=str(row["member"]),
                    digest=str(row["digest"]),
                    stored_bytes=int(row.get("bytes", 0)),
                    stat_min=stats.get("min"),
                    stat_max=stats.get("max"),
                    stat_valid=int(stats.get("valid", 0)),
                    lowres_member=None if lowres is None else str(lowres["member"]),
                    lowres_digest=None if lowres is None else str(lowres["digest"]),
                    lowres_factor=1 if lowres is None else int(lowres.get("factor", 1)),
                )
            )
        chunk_axis = int(meta.get("chunk_axis", 0))
        if not 0 <= chunk_axis < len(dimensions):
            raise StreamingError(
                f"variable {meta.get('id')!r}: chunk_axis {chunk_axis} outside "
                f"{len(dimensions)} dimensions"
            )
        covered = sorted((c.start, c.stop) for c in chunks)
        cursor = 0
        for start, stop in covered:
            if start != cursor or stop <= start:
                raise StreamingError(
                    f"variable {meta.get('id')!r}: chunk table does not tile the "
                    f"chunked dimension (gap at {cursor})"
                )
            cursor = stop
        if cursor != shape[chunk_axis]:
            raise StreamingError(
                f"variable {meta.get('id')!r}: chunk table covers {cursor} of "
                f"{shape[chunk_axis]} coordinate points"
            )
        layouts.append(
            VariableLayout(
                index=var_index,
                id=str(meta["id"]),
                dimensions=dimensions,
                attributes=dict(meta.get("attributes", {})),
                missing_value=float(meta.get("missing_value", 1.0e20)),
                dtype=np.dtype(str(meta.get("dtype", "float64"))),
                chunk_axis=chunk_axis,
                shape=shape,
                chunks=tuple(chunks),
            )
        )
    return layouts


def load_axes(archive: zipfile.ZipFile, manifest: Dict[str, object], verify: bool = True) -> Dict[str, Axis]:
    """Reconstruct the axes of a v2 archive, digest-verifying each member."""
    axes: Dict[str, Axis] = {}
    for meta in manifest.get("axes", []):
        axis_id = str(meta["id"])
        member = str(meta.get("member", f"axes/{axis_id}.npy"))
        payload = read_member(archive, member)
        if verify:
            verify_digest(member, payload, meta.get("digest"))
        values = _npy_load(payload)
        bounds = None
        if meta.get("has_bounds"):
            bounds_member = str(meta.get("bounds_member", f"axes/{axis_id}.bounds.npy"))
            bounds_payload = read_member(archive, bounds_member)
            if verify:
                verify_digest(bounds_member, bounds_payload, meta.get("bounds_digest"))
            bounds = _npy_load(bounds_payload)
        axes[axis_id] = Axis(
            axis_id,
            values,
            units=str(meta.get("units", "")),
            bounds=bounds,
            calendar=str(meta.get("calendar", "standard")),
            attributes=dict(meta.get("attributes", {})),
        )
    return axes


def read_member(archive: zipfile.ZipFile, member: str) -> bytes:
    """Read one archive member, raising typed errors instead of KeyError."""
    try:
        return archive.read(member)
    except KeyError:
        raise StreamingError(f"archive member {member!r} is missing") from None
    except (zipfile.BadZipFile, OSError) as exc:
        raise StreamingError(f"archive member {member!r} unreadable: {exc}") from exc


def verify_digest(member: str, payload: bytes, expected: object) -> None:
    from repro.util.errors import ChunkCorruptionError

    if not isinstance(expected, str) or not expected:
        raise StreamingError(f"archive member {member!r} has no manifest digest")
    actual = content_digest(payload)
    if actual != expected:
        raise ChunkCorruptionError(
            f"archive member {member!r} failed verification: "
            f"digest {actual} != manifest {expected}"
        )


# ---------------------------------------------------------------------------
# strict full materialization (the read_cdz v2 path)
# ---------------------------------------------------------------------------


def read_all_v2(
    archive: zipfile.ZipFile, manifest: Dict[str, object]
) -> Tuple[str, Dict[str, object], List[Variable]]:
    """Materialize every variable of a v2 archive, verifying every chunk.

    This is the strict (non-streaming) path behind
    :func:`repro.cdms.storage.read_cdz`: any missing or corrupt member
    raises a typed error; values are byte-identical to what the v1
    format would materialize for the same dataset.
    """
    axes = load_axes(archive, manifest, verify=True)
    layouts = parse_layouts(manifest, axes)
    variables: List[Variable] = []
    for layout in layouts:
        pieces: List[np.ndarray] = []
        for chunk in layout.chunks:
            payload = read_member(archive, chunk.member)
            verify_digest(chunk.member, payload, chunk.digest)
            try:
                pieces.append(_npy_load(payload))
            except (ValueError, OSError, EOFError) as exc:
                raise StreamingError(
                    f"chunk {chunk.member!r} failed to decode: {exc}"
                ) from exc
        raw = pieces[0] if len(pieces) == 1 else np.concatenate(pieces, axis=layout.chunk_axis)
        data = _roundtrip_mask(raw, layout.missing_value)
        try:
            var_axes = [axes[dim] for dim in layout.dimensions]
        except KeyError as exc:
            raise StreamingError(
                f"variable {layout.id!r} references unknown axis {exc.args[0]!r}"
            ) from None
        variables.append(
            Variable(
                data,
                var_axes,
                id=layout.id,
                missing_value=layout.missing_value,
                attributes=dict(layout.attributes),
            )
        )
    dataset_id = manifest.get("id")
    if not isinstance(dataset_id, str):
        raise CDMSError("v2 manifest has no dataset id")
    return dataset_id, dict(manifest.get("attributes", {})), variables
