"""Archive-level access to a streaming (v2) ``.cdz`` container.

A :class:`StreamingSource` opens the container once, verifies the
manifest and axes eagerly (metadata is tiny; corruption there should
fail at open, not mid-animation), and hands out one
:class:`~repro.streaming.reader.ChunkReader` and one lazily-started
:class:`~repro.streaming.prefetch.Prefetcher` per variable.  Payload
chunks are *not* touched at open — that is the whole point.

The source is picklable by path + config (readers and prefetchers are
rebuilt on unpickle), which is what lets lazy variables travel through
workflow specs to hyperwall cells that then stream their own chunks.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.cdms.axis import Axis
from repro.streaming.config import StreamingConfig
from repro.streaming.format import (
    FORMAT_VERSION,
    VariableLayout,
    load_axes,
    parse_layouts,
    read_member,
)
from repro.streaming.prefetch import Prefetcher
from repro.streaming.reader import ChunkReader
from repro.util.errors import StreamingError

PathLike = Union[str, Path]


class StreamingSource:
    """One open v2 container: verified metadata, on-demand payloads."""

    def __init__(self, path: PathLike, config: Optional[StreamingConfig] = None) -> None:
        self.path = Path(path)
        self.config = config or StreamingConfig()
        if not self.path.exists():
            raise StreamingError(f"no such streaming archive: {self.path}")
        try:
            with zipfile.ZipFile(self.path, "r") as archive:
                try:
                    manifest = json.loads(read_member(archive, "manifest.json"))
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise StreamingError(
                        f"{self.path}: manifest.json is not valid JSON: {exc}"
                    ) from exc
                version = manifest.get("format_version")
                if version != FORMAT_VERSION:
                    raise StreamingError(
                        f"{self.path}: not a v2 streaming container "
                        f"(format_version={version!r})"
                    )
                self.axes: Dict[str, Axis] = load_axes(archive, manifest, verify=True)
        except zipfile.BadZipFile as exc:
            raise StreamingError(f"{self.path} is not a readable archive: {exc}") from exc
        self.dataset_id = str(manifest.get("id", self.path.stem))
        self.attributes: Dict[str, object] = dict(manifest.get("attributes", {}))
        self.layouts: List[VariableLayout] = parse_layouts(manifest, self.axes)
        self._by_id: Dict[str, VariableLayout] = {l.id: l for l in self.layouts}
        self._readers: Dict[str, ChunkReader] = {}
        self._prefetchers: Dict[str, Prefetcher] = {}

    # -- per-variable machinery --------------------------------------------

    def layout(self, var_id: str) -> VariableLayout:
        try:
            return self._by_id[var_id]
        except KeyError:
            raise StreamingError(
                f"{self.path}: no variable {var_id!r} "
                f"(has {sorted(self._by_id)})"
            ) from None

    def reader(self, var_id: str) -> ChunkReader:
        if var_id not in self._readers:
            self._readers[var_id] = ChunkReader(
                self.path, self.layout(var_id), self.config
            )
        return self._readers[var_id]

    def prefetcher(self, var_id: str) -> Prefetcher:
        if var_id not in self._prefetchers:
            self._prefetchers[var_id] = Prefetcher(
                self.reader(var_id), self.config
            )
        return self._prefetchers[var_id]

    def close(self) -> None:
        """Stop every prefetch thread and drop resident slabs."""
        for prefetcher in self._prefetchers.values():
            prefetcher.close()
        self._prefetchers.clear()

    def __enter__(self) -> "StreamingSource":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- pickling (hyperwall transport) ------------------------------------

    def __reduce__(self) -> Tuple[object, ...]:
        return (StreamingSource, (str(self.path), self.config))


def open_source(path: PathLike, config: Optional[StreamingConfig] = None) -> StreamingSource:
    """Open a v2 container for streaming access."""
    return StreamingSource(path, config)
