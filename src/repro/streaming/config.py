"""Configuration of the out-of-core streaming layer.

A :class:`StreamingConfig` is a frozen value object bounding how much
decoded chunk data may be resident at once, how far the prefetch
pipeline runs ahead of the animation cursor, and how stubbornly the
reader retries failing chunks before degrading.  It mirrors the
``repro.parallel`` / ``repro.cache`` config idiom: explicit, validated
at construction, and passed down rather than ambient — a streaming
dataset opened with one budget never silently inherits another's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.resilience.policy import RetryPolicy
from repro.util.errors import StreamingError

#: default resident-bytes budget for decoded chunks (128 MiB)
DEFAULT_MEMORY_BUDGET = 128 * 2**20


@dataclass(frozen=True)
class StreamingConfig:
    """How a streaming dataset reads, prefetches and retries.

    Parameters
    ----------
    memory_budget_bytes:
        Hard ceiling on decoded chunk bytes resident in the streaming
        layer (prefetched slabs plus the slab being served).  The
        effective prefetch window shrinks so the pipeline never
        exceeds it.
    prefetch_depth:
        How many chunks ahead of the animation cursor the background
        pipeline tries to stay (subject to the byte budget).
    prefetch:
        Disable to read every chunk synchronously on demand (the
        pipeline off, for ablations and debugging).
    read_retries:
        Attempts per chunk (including the first) before a failure is
        quarantined and surfaced for degradation.
    retry_base_delay:
        Backoff before the first retry, in seconds (exponential with
        deterministic jitter, the :class:`RetryPolicy` contract).
    use_result_cache:
        Publish verified decoded chunks into the ambient
        :mod:`repro.cache` keyed by their content digest (effective
        only when that cache is enabled); hits skip read + verify.
    """

    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET
    prefetch_depth: int = 2
    prefetch: bool = True
    read_retries: int = 3
    retry_base_delay: float = 0.005
    use_result_cache: bool = True

    def __post_init__(self) -> None:
        if self.memory_budget_bytes <= 0:
            raise StreamingError(
                f"memory_budget_bytes must be positive, got {self.memory_budget_bytes}"
            )
        if self.prefetch_depth < 1:
            raise StreamingError(
                f"prefetch_depth must be >= 1, got {self.prefetch_depth}"
            )
        if self.read_retries < 1:
            raise StreamingError(
                f"read_retries must be >= 1, got {self.read_retries}"
            )
        if self.retry_base_delay < 0:
            raise StreamingError("retry_base_delay must be >= 0")

    def with_budget(self, memory_budget_bytes: int) -> "StreamingConfig":
        return replace(self, memory_budget_bytes=int(memory_budget_bytes))

    def retry_policy(self, seed: str = "streaming") -> RetryPolicy:
        """The reader's per-chunk retry policy under this config."""
        return RetryPolicy(
            max_attempts=self.read_retries,
            base_delay=self.retry_base_delay,
            multiplier=2.0,
            max_delay=max(self.retry_base_delay * 8.0, self.retry_base_delay),
            jitter=0.1 if self.retry_base_delay > 0 else 0.0,
            seed=seed,
        )
