"""The resilient chunk reader: read → verify → decode with retries.

One :class:`ChunkReader` serves one variable of one v2 container.  A
chunk read passes three instrumented stages, each a named fault site
for deterministic chaos testing (:mod:`repro.resilience.faults`):

``streaming.read``
    open the archive and pull the member's raw bytes;
``streaming.verify``
    compare the payload's sha256 against the manifest digest (a
    ``corrupt`` fault flips a payload byte here so verification fails
    exactly as a disk/NFS bit-flip would);
``streaming.decode``
    parse the ``.npy`` payload into an array of the manifest's dtype
    and shape.

All three sites carry ``var=``/``chunk=``/``attempt=`` labels.  Failures
retry under the config's :class:`~repro.resilience.policy.RetryPolicy`;
a chunk that exhausts its budget is **quarantined** — background
prefetch stops spending slots on it — but direct reads keep
re-attempting, so the chunk heals (and leaves quarantine) once the
underlying fault clears.  Verified decoded chunks are published to the
ambient result cache keyed by their content digest: a digest hit is
proof of integrity, so cached reads skip I/O *and* verification.
"""

from __future__ import annotations

import threading
import zipfile
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro import obs
from repro.cdms.storage import _npy_load
from repro.resilience import faults
from repro.streaming.config import StreamingConfig
from repro.streaming.format import (
    ChunkMeta,
    VariableLayout,
    read_member,
    upsample,
    verify_digest,
)
from repro.util.errors import ChunkCorruptionError, InjectedFault, StreamingError

PathLike = Union[str, Path]

#: failures worth retrying — typed streaming errors, injected faults,
#: and raw I/O errors from the filesystem underneath the archive
RETRYABLE = (StreamingError, InjectedFault, OSError)


def _flip_byte(payload: bytes) -> bytes:
    """The ``corrupt`` fault action: one bit-flip mid-payload."""
    if not payload:
        return payload
    index = len(payload) // 2
    mutated = bytearray(payload)
    mutated[index] ^= 0xFF
    return bytes(mutated)


class ChunkReader:
    """Verified chunk access for one variable of a v2 archive."""

    def __init__(
        self,
        path: PathLike,
        layout: VariableLayout,
        config: Optional[StreamingConfig] = None,
    ) -> None:
        self.path = Path(path)
        self.layout = layout
        self.config = config or StreamingConfig()
        self._policy = self.config.retry_policy(seed=f"streaming/{layout.id}")
        self._lock = threading.Lock()
        self._quarantined: Dict[int, StreamingError] = {}

    # -- quarantine --------------------------------------------------------

    def is_quarantined(self, chunk_index: int) -> bool:
        with self._lock:
            return chunk_index in self._quarantined

    def quarantined(self) -> Dict[int, StreamingError]:
        with self._lock:
            return dict(self._quarantined)

    def _quarantine(self, chunk: ChunkMeta, error: StreamingError) -> None:
        with self._lock:
            fresh = chunk.index not in self._quarantined
            self._quarantined[chunk.index] = error
        if fresh and obs.enabled():
            obs.counter("streaming.chunks.quarantined", var=self.layout.id)

    def _release(self, chunk: ChunkMeta) -> None:
        with self._lock:
            self._quarantined.pop(chunk.index, None)

    # -- the read pipeline -------------------------------------------------

    def _open(self) -> zipfile.ZipFile:
        try:
            return zipfile.ZipFile(self.path, "r")
        except (zipfile.BadZipFile, OSError) as exc:
            raise StreamingError(
                f"streaming archive {self.path} unreadable: {exc}"
            ) from exc

    def _attempt(self, chunk: ChunkMeta, attempt: int) -> np.ndarray:
        labels = {"var": self.layout.id, "chunk": chunk.index, "attempt": attempt}
        faults.check("streaming.read", **labels)
        with self._open() as archive:
            payload = read_member(archive, chunk.member)
        fault = faults.check("streaming.verify", **labels)
        if fault is not None and fault.action == "corrupt":
            payload = _flip_byte(payload)
        try:
            verify_digest(chunk.member, payload, chunk.digest)
        except ChunkCorruptionError:
            if obs.enabled():
                obs.counter("streaming.chunks.corrupt", var=self.layout.id)
            raise
        faults.check("streaming.decode", **labels)
        try:
            raw = _npy_load(payload)
        except (ValueError, OSError, EOFError) as exc:
            raise StreamingError(
                f"chunk {chunk.member!r} failed to decode: {exc}"
            ) from exc
        expected = self.layout.chunk_shape(chunk)
        if tuple(raw.shape) != expected:
            raise StreamingError(
                f"chunk {chunk.member!r} decoded to shape {tuple(raw.shape)}, "
                f"manifest says {expected}"
            )
        return raw

    def read_chunk(self, chunk: ChunkMeta) -> np.ndarray:
        """The verified decoded payload of *chunk* (raw, missing-filled).

        Retries under the config's policy; quarantines on exhaustion
        and re-raises the final failure.  A success clears any prior
        quarantine.  Returned arrays are shared (possibly with the
        result cache) — callers must not mutate them.
        """
        cache = self._cache()
        if cache is not None:
            key = self._cache_key(chunk)
            found, value = cache.get(key, site="streaming")
            if found and isinstance(value, np.ndarray):
                if tuple(value.shape) == self.layout.chunk_shape(chunk):
                    if obs.enabled():
                        obs.counter("streaming.chunks.cache_hits", var=self.layout.id)
                    self._release(chunk)
                    return value

        counter = {"attempt": 0}

        def attempt() -> np.ndarray:
            counter["attempt"] += 1
            return self._attempt(chunk, counter["attempt"])

        def on_retry(attempt_no: int, exc: BaseException, delay: float) -> None:
            if obs.enabled():
                obs.counter("streaming.chunks.retried", var=self.layout.id)

        try:
            raw = self._policy.run(
                attempt,
                retry_on=RETRYABLE,
                label=f"streaming.read/{self.layout.id}",
                on_retry=on_retry,
            )
        except RETRYABLE as exc:
            error = (
                exc
                if isinstance(exc, StreamingError)
                else StreamingError(
                    f"chunk {chunk.member!r} unreadable after "
                    f"{self.config.read_retries} attempts: {exc}"
                )
            )
            self._quarantine(chunk, error)
            raise error from exc
        self._release(chunk)
        if obs.enabled():
            obs.counter("streaming.chunks.read", var=self.layout.id)
            obs.counter("streaming.chunks.verified", var=self.layout.id)
        if cache is not None:
            cache.put(self._cache_key(chunk), raw, site="streaming")
        return raw

    def read_lowres(self, chunk: ChunkMeta) -> np.ndarray:
        """The upsampled low-resolution fallback payload of *chunk*.

        Deliberately fault-site-free: this is the emergency path taken
        *because* the full-resolution read is failing.  Still digest
        verified — a corrupt fallback is worse than no fallback.
        """
        if chunk.lowres_member is None:
            raise StreamingError(
                f"chunk {chunk.member!r} has no low-resolution fallback"
            )
        with self._open() as archive:
            payload = read_member(archive, chunk.lowres_member)
        verify_digest(chunk.lowres_member, payload, chunk.lowres_digest)
        try:
            lowres = _npy_load(payload)
        except (ValueError, OSError, EOFError) as exc:
            raise StreamingError(
                f"lowres chunk {chunk.lowres_member!r} failed to decode: {exc}"
            ) from exc
        full = upsample(
            lowres,
            self.layout.chunk_shape(chunk),
            self.layout.chunk_axis,
            chunk.lowres_factor,
        )
        if obs.enabled():
            obs.counter("streaming.chunks.lowres", var=self.layout.id)
        return full

    # -- result-cache plumbing ---------------------------------------------

    def _cache(self):
        if not self.config.use_result_cache:
            return None
        from repro.cache.config import get_config

        if not get_config().enabled:
            return None
        from repro.cache.store import get_cache

        return get_cache()

    def _cache_key(self, chunk: ChunkMeta) -> str:
        from repro.cache.keys import cache_key

        return cache_key("streaming.chunk", chunk.digest)
