"""Process-parallel tiled rendering kernels (shared-memory pool; serial fallback, deterministic output, crash containment).

The software-rendering hot paths — ray casting, rasterization,
isosurface extraction, streamline integration and conservative
regridding — tile their domains across worker processes that write
into ``multiprocessing.shared_memory`` buffers.  Parallelism is
strictly opt-in:

    from repro import parallel

    parallel.configure(workers=4)          # ambient: all plots pick it up
    ...
    with parallel.use_config(parallel.ParallelConfig(workers=4)):
        img = plot.render(width=640, height=480)    # scoped

Guarantees (see README "Parallel kernels"):

* **serial fallback** — ``workers <= 1``, missing POSIX shared memory,
  or workloads under ``min_items`` silently run the serial kernels;
* **determinism** — the render kernels produce *bitwise identical*
  framebuffers/surfaces/lines at any worker count (golden-image tested);
  regridding is near-exact (einsum reassociation only);
* **crash containment with recovery** — a crashed worker's tiles are
  retried on replacement workers (``respawn_budget``) and then
  serially in the parent, so a transient worker loss still completes
  bitwise-identically; poisonous tiles, tile exceptions and pool
  timeouts raise :class:`~repro.util.errors.KernelPoolError` (never a
  hang) and shared-memory segments are always unlinked.
"""

from repro.parallel.config import (
    ParallelConfig,
    configure,
    get_config,
    set_config,
    shared_memory_supported,
    use_config,
)
from repro.parallel.kernels import (
    parallel_integrate_streamlines,
    parallel_marching_tetrahedra,
    parallel_rasterize,
    parallel_raycast,
    parallel_separable_products,
)
from repro.parallel.partition import index_bands, row_bands, sized_bands, z_slabs
from repro.parallel.pool import KernelPool, attach_ndarray, run_tiles, shared_ndarray
from repro.util.errors import KernelPoolError

__all__ = [
    "KernelPool",
    "KernelPoolError",
    "ParallelConfig",
    "attach_ndarray",
    "configure",
    "get_config",
    "index_bands",
    "parallel_integrate_streamlines",
    "parallel_marching_tetrahedra",
    "parallel_rasterize",
    "parallel_raycast",
    "parallel_separable_products",
    "row_bands",
    "run_tiles",
    "set_config",
    "shared_memory_supported",
    "shared_ndarray",
    "sized_bands",
    "use_config",
    "z_slabs",
]
