"""The shared-memory multiprocessing kernel pool.

:class:`KernelPool` runs a module-level *tile function* over a list of
pre-partitioned tasks on worker processes.  Tasks are statically
assigned round-robin (tiles are near-equal by construction, see
:mod:`repro.parallel.partition`), results stream back over a queue, and
large outputs travel through ``multiprocessing.shared_memory`` segments
created with :func:`shared_ndarray` — workers write their tile slice in
place, so nothing big is ever pickled back.

Failure containment is the design center:

* a worker that **dies mid-tile** (segfault, ``SIGKILL``, OOM) is
  detected by exit-code polling and surfaces as a
  :class:`~repro.util.errors.KernelPoolError`, never a hang;
* a worker that **raises** ships the traceback back and fails the pool
  the same way;
* a pool-wide **timeout** bounds total wall time;
* shared-memory segments are unlinked in ``finally`` by their creator,
  so no segment outlives a crashed run.

Observability: each run emits a ``parallel.run`` span, a
``parallel.tiles`` counter and one ``parallel.tile`` span per tile with
the worker-measured duration (re-reported through
:func:`repro.obs.record_span`, since worker recorders are forked
copies whose records would otherwise be lost).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.parallel.config import ParallelConfig
from repro.util.errors import KernelPoolError

#: parent poll interval while waiting on tile results (seconds); bounds
#: how stale a dead-worker check can be, not a busy-wait
_POLL_S = 0.05


@contextmanager
def shared_ndarray(shape: Sequence[int], dtype: Any) -> Iterator[Tuple[str, np.ndarray]]:
    """A shared-memory ndarray, unlinked on exit no matter what.

    Yields ``(segment_name, array)``; workers attach with
    :func:`attach_ndarray` and write disjoint slices.
    """
    dtype = np.dtype(dtype)
    nbytes = max(int(np.prod(shape)) * dtype.itemsize, 1)
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        yield segment.name, np.ndarray(tuple(shape), dtype=dtype, buffer=segment.buf)
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


@contextmanager
def attach_ndarray(name: str, shape: Sequence[int], dtype: Any) -> Iterator[np.ndarray]:
    """Worker-side view of a segment created by :func:`shared_ndarray`."""
    segment = shared_memory.SharedMemory(name=name)
    try:
        yield np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf)
    finally:
        segment.close()


def _worker_main(
    result_queue,
    fn: Callable[[Any, Any], Any],
    payload: Any,
    assigned: List[Tuple[int, Any]],
) -> None:
    """Run this worker's tiles; report (index, start, duration, status, value)."""
    for index, task in assigned:
        start = time.perf_counter()
        try:
            value = fn(payload, task)
            status = "ok"
        except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
            value = traceback.format_exc(limit=20)
            status = "error"
        result_queue.put(
            (index, start, time.perf_counter() - start, status, value)
        )
        if status == "error":
            return


class KernelPool:
    """Runs one tiled kernel invocation on worker processes.

    A pool is cheap and single-shot: kernels create one per call
    (``fork`` makes the payload — volumes, meshes, matrices — free to
    share on POSIX), run their tiles, and tear it down in ``finally``.
    """

    def __init__(self, config: ParallelConfig) -> None:
        self.config = config

    def run(
        self,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[Any],
        payload: Any = None,
        label: str = "kernel",
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """Run ``fn(payload, task)`` for every task; results in task order.

        *fn* must be a module-level callable (picklable under spawn).
        Raises :class:`KernelPoolError` on worker death, tile
        exception, or pool-wide timeout.
        """
        if not tasks:
            return []
        n_workers = min(self.config.workers, len(tasks))
        limit = timeout if timeout is not None else self.config.timeout
        context = multiprocessing.get_context(self.config.resolved_start_method())
        result_queue = context.Queue()
        assignments: List[List[Tuple[int, Any]]] = [[] for _ in range(n_workers)]
        for index, task in enumerate(tasks):
            assignments[index % n_workers].append((index, task))
        workers = [
            context.Process(
                target=_worker_main,
                args=(result_queue, fn, payload, assigned),
                daemon=True,
                name=f"repro-parallel-{label}-{wid}",
            )
            for wid, assigned in enumerate(assignments)
        ]
        results: List[Any] = [None] * len(tasks)
        with obs.span(
            "parallel.run", kernel=label, workers=n_workers, tiles=len(tasks)
        ) as run_span:
            deadline = time.monotonic() + limit
            try:
                for worker in workers:
                    worker.start()
                received = 0
                while received < len(tasks):
                    if time.monotonic() > deadline:
                        raise KernelPoolError(
                            f"{label}: kernel pool timed out after {limit:.1f}s "
                            f"({received}/{len(tasks)} tiles done)"
                        )
                    try:
                        index, start, duration, status, value = result_queue.get(
                            timeout=_POLL_S
                        )
                    except queue_module.Empty:
                        dead = [
                            w for w in workers
                            if w.exitcode is not None and w.exitcode != 0
                        ]
                        if dead:
                            codes = sorted({w.exitcode for w in dead})
                            raise KernelPoolError(
                                f"{label}: {len(dead)} worker(s) died with exit "
                                f"code(s) {codes} before finishing their tiles"
                            ) from None
                        continue
                    if status == "error":
                        raise KernelPoolError(
                            f"{label}: tile {index} raised in worker:\n{value}"
                        )
                    results[index] = value
                    received += 1
                    if obs.enabled():
                        obs.counter("parallel.tiles", kernel=label)
                        obs.histogram("parallel.tile.seconds", duration, kernel=label)
                        obs.record_span(
                            "parallel.tile",
                            duration,
                            parent_id=run_span.id,
                            start=start,
                            thread=f"{label}-tile-{index}",
                            kernel=label,
                            tile=index,
                        )
            finally:
                for worker in workers:
                    if worker.is_alive():
                        worker.terminate()
                for worker in workers:
                    worker.join(timeout=5.0)
                    if worker.is_alive():  # terminate() ignored — force it
                        worker.kill()
                        worker.join(timeout=5.0)
                result_queue.close()
                result_queue.cancel_join_thread()
        return results


def run_tiles(
    config: ParallelConfig,
    fn: Callable[[Any, Any], Any],
    tasks: Sequence[Any],
    payload: Any = None,
    label: str = "kernel",
) -> List[Any]:
    """One-shot convenience wrapper around :class:`KernelPool`."""
    return KernelPool(config).run(fn, tasks, payload=payload, label=label)
