"""The shared-memory multiprocessing kernel pool.

:class:`KernelPool` runs a module-level *tile function* over a list of
pre-partitioned tasks on worker processes.  Tasks are statically
assigned round-robin (tiles are near-equal by construction, see
:mod:`repro.parallel.partition`), results stream back over a queue, and
large outputs travel through ``multiprocessing.shared_memory`` segments
created with :func:`shared_ndarray` — workers write their tile slice in
place, so nothing big is ever pickled back.

Failure containment is the design center:

* a worker that **dies mid-tile** (segfault, ``SIGKILL``, OOM) is
  detected by exit-code polling; its unfinished tiles are **retried on
  a replacement worker** (up to ``ParallelConfig.respawn_budget``
  respawns per run), then — budget exhausted — executed **serially in
  the parent**, so a transient worker loss still yields a complete,
  bitwise-identical result.  Only a *poisonous* tile (one that kills
  its worker twice) or a serial-fallback failure surfaces as a
  :class:`~repro.util.errors.KernelPoolError`;
* a worker that **raises** ships the traceback back and fails the pool
  immediately (a deterministic bug would fail identically on retry);
* a pool-wide **timeout** bounds total wall time, recoveries included;
* shared-memory segments are unlinked in ``finally`` by their creator,
  so no segment outlives a crashed run.

Fault injection: each tile visit checks the ``parallel.tile`` site
with ``tile`` and ``attempt`` labels (attempt 0 = original workers,
``n`` = the n-th respawn generation), so tests arm e.g.
``faults.arm("parallel.tile", "exit", match={"tile": 2, "attempt": 0})``
to kill exactly one worker exactly once.  Recoveries are observable:
``resilience.retries`` (respawned tiles), ``resilience.degraded``
(serial-fallback tiles) and the ``resilience.recovery.seconds``
histogram (first worker death to completed run).

Observability: each run emits a ``parallel.run`` span, a
``parallel.tiles`` counter and one ``parallel.tile`` span per tile with
the worker-measured duration (re-reported through
:func:`repro.obs.record_span`, since worker recorders are forked
copies whose records would otherwise be lost).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.parallel.config import ParallelConfig
from repro.resilience import faults
from repro.util.errors import KernelPoolError

#: parent poll interval while waiting on tile results (seconds); bounds
#: how stale a dead-worker check can be, not a busy-wait
_POLL_S = 0.05

#: a tile that kills its worker this many times is poisonous: retrying
#: it (or running it in the parent) would keep killing processes
_MAX_TILE_DEATHS = 2


@contextmanager
def shared_ndarray(shape: Sequence[int], dtype: Any) -> Iterator[Tuple[str, np.ndarray]]:
    """A shared-memory ndarray, unlinked on exit no matter what.

    Yields ``(segment_name, array)``; workers attach with
    :func:`attach_ndarray` and write disjoint slices.
    """
    dtype = np.dtype(dtype)
    nbytes = max(int(np.prod(shape)) * dtype.itemsize, 1)
    segment = shared_memory.SharedMemory(create=True, size=nbytes)
    try:
        yield segment.name, np.ndarray(tuple(shape), dtype=dtype, buffer=segment.buf)
    finally:
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


@contextmanager
def attach_ndarray(name: str, shape: Sequence[int], dtype: Any) -> Iterator[np.ndarray]:
    """Worker-side view of a segment created by :func:`shared_ndarray`."""
    segment = shared_memory.SharedMemory(name=name)
    try:
        yield np.ndarray(tuple(shape), dtype=np.dtype(dtype), buffer=segment.buf)
    finally:
        segment.close()


def _worker_main(
    result_queue,
    fn: Callable[[Any, Any], Any],
    payload: Any,
    assigned: List[Tuple[int, Any]],
    attempt: int = 0,
) -> None:
    """Run this worker's tiles; report (index, start, duration, status, value).

    *attempt* is the respawn generation (0 = original worker), passed
    to the ``parallel.tile`` fault site so injected kills can target
    one generation deterministically.
    """
    for index, task in assigned:
        start = time.perf_counter()
        try:
            faults.check("parallel.tile", tile=index, attempt=attempt)
            value = fn(payload, task)
            status = "ok"
        except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
            value = traceback.format_exc(limit=20)
            status = "error"
        result_queue.put(
            (index, start, time.perf_counter() - start, status, value)
        )
        if status == "error":
            return


class KernelPool:
    """Runs one tiled kernel invocation on worker processes.

    A pool is cheap and single-shot: kernels create one per call
    (``fork`` makes the payload — volumes, meshes, matrices — free to
    share on POSIX), run their tiles, and tear it down in ``finally``.
    """

    def __init__(self, config: ParallelConfig) -> None:
        self.config = config

    def run(
        self,
        fn: Callable[[Any, Any], Any],
        tasks: Sequence[Any],
        payload: Any = None,
        label: str = "kernel",
        timeout: Optional[float] = None,
    ) -> List[Any]:
        """Run ``fn(payload, task)`` for every task; results in task order.

        *fn* must be a module-level callable (picklable under spawn).
        Crashed workers' tiles are retried on replacement workers (up
        to ``config.respawn_budget`` respawns), then serially in the
        parent.  Raises :class:`KernelPoolError` on a poisonous tile
        (killed its worker twice), a tile exception, a serial-fallback
        failure, or pool-wide timeout.
        """
        if not tasks:
            return []
        n_workers = min(self.config.workers, len(tasks))
        limit = timeout if timeout is not None else self.config.timeout
        context = multiprocessing.get_context(self.config.resolved_start_method())
        result_queue = context.Queue()
        assignments: List[List[Tuple[int, Any]]] = [[] for _ in range(n_workers)]
        for index, task in enumerate(tasks):
            assignments[index % n_workers].append((index, task))

        workers: List[Any] = []  # every process ever started (for teardown)
        #: live tracking: process -> its assigned (index, task) list
        tiles_of: Dict[Any, List[Tuple[int, Any]]] = {}
        handled_dead: set = set()
        death_count: Dict[int, int] = {}  # tile index -> in-flight worker deaths
        respawns_used = 0
        first_death: Optional[float] = None

        def spawn(assigned: List[Tuple[int, Any]], name: str, attempt: int) -> None:
            worker = context.Process(
                target=_worker_main,
                args=(result_queue, fn, payload, assigned, attempt),
                daemon=True,
                name=name,
            )
            workers.append(worker)
            tiles_of[id(worker)] = assigned
            worker.start()

        results: List[Any] = [None] * len(tasks)
        received: set = set()

        def record_tile(index: int, start: float, duration: float, run_span) -> None:
            if obs.enabled():
                obs.counter("parallel.tiles", kernel=label)
                obs.histogram("parallel.tile.seconds", duration, kernel=label)
                obs.record_span(
                    "parallel.tile",
                    duration,
                    parent_id=run_span.id,
                    start=start,
                    thread=f"{label}-tile-{index}",
                    kernel=label,
                    tile=index,
                )

        def run_serial_fallback(missing: List[Tuple[int, Any]], run_span) -> None:
            """Budget exhausted: the parent executes the tiles itself."""
            for index, task in missing:
                start = time.perf_counter()
                try:
                    value = fn(payload, task)
                except Exception as exc:  # noqa: BLE001
                    raise KernelPoolError(
                        f"{label}: tile {index} failed in serial fallback: {exc!r}"
                    ) from exc
                results[index] = value
                received.add(index)
                record_tile(index, start, time.perf_counter() - start, run_span)
                obs.counter(
                    "resilience.degraded", site="parallel.serial_fallback", kernel=label
                )

        def handle_dead_workers(run_span) -> None:
            nonlocal respawns_used, first_death
            for worker in list(workers):
                if worker.exitcode is None or id(worker) in handled_dead:
                    continue
                missing = [
                    (i, t) for (i, t) in tiles_of[id(worker)] if i not in received
                ]
                handled_dead.add(id(worker))
                if worker.exitcode == 0 or not missing:
                    continue  # orderly exit, or all its results already in
                if first_death is None:
                    first_death = time.monotonic()
                # workers run tiles in order: the first missing tile is
                # the one that was in flight when the process died
                suspect = missing[0][0]
                death_count[suspect] = death_count.get(suspect, 0) + 1
                if death_count[suspect] >= _MAX_TILE_DEATHS:
                    raise KernelPoolError(
                        f"{label}: worker died with exit code {worker.exitcode} "
                        f"{death_count[suspect]} times on tile {suspect}; "
                        f"tile is poisonous, not retrying"
                    )
                if respawns_used < self.config.respawn_budget:
                    respawns_used += 1
                    obs.counter(
                        "resilience.retries",
                        len(missing),
                        site="parallel.respawn",
                        kernel=label,
                    )
                    spawn(
                        missing,
                        name=f"repro-parallel-{label}-r{respawns_used}",
                        attempt=respawns_used,
                    )
                else:
                    run_serial_fallback(missing, run_span)

        with obs.span(
            "parallel.run", kernel=label, workers=n_workers, tiles=len(tasks)
        ) as run_span:
            deadline = time.monotonic() + limit
            try:
                for wid, assigned in enumerate(assignments):
                    spawn(assigned, name=f"repro-parallel-{label}-{wid}", attempt=0)
                while len(received) < len(tasks):
                    if time.monotonic() > deadline:
                        raise KernelPoolError(
                            f"{label}: kernel pool timed out after {limit:.1f}s "
                            f"({len(received)}/{len(tasks)} tiles done)"
                        )
                    try:
                        index, start, duration, status, value = result_queue.get(
                            timeout=_POLL_S
                        )
                    except queue_module.Empty:
                        handle_dead_workers(run_span)
                        continue
                    if status == "error":
                        raise KernelPoolError(
                            f"{label}: tile {index} raised in worker:\n{value}"
                        )
                    if index in received:
                        continue  # duplicate from a raced retry: same value
                    results[index] = value
                    received.add(index)
                    record_tile(index, start, duration, run_span)
                if first_death is not None and obs.enabled():
                    obs.histogram(
                        "resilience.recovery.seconds",
                        time.monotonic() - first_death,
                        site="parallel.pool",
                        kernel=label,
                    )
            finally:
                for worker in workers:
                    if worker.is_alive():
                        worker.terminate()
                for worker in workers:
                    worker.join(timeout=5.0)
                    if worker.is_alive():  # terminate() ignored — force it
                        worker.kill()
                        worker.join(timeout=5.0)
                result_queue.close()
                result_queue.cancel_join_thread()
        return results


def run_tiles(
    config: ParallelConfig,
    fn: Callable[[Any, Any], Any],
    tasks: Sequence[Any],
    payload: Any = None,
    label: str = "kernel",
) -> List[Any]:
    """One-shot convenience wrapper around :class:`KernelPool`."""
    return KernelPool(config).run(fn, tasks, payload=payload, label=label)
