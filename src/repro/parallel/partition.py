"""Domain partitioning for the tiled kernels.

Pure integer math, property-tested: every partition function returns
half-open ``(start, stop)`` ranges that exactly cover ``[0, n)`` with
no overlap, in ascending order, and never returns an empty range.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.util.errors import KernelPoolError

Range = Tuple[int, int]


def index_bands(n: int, n_bands: int) -> List[Range]:
    """Split ``[0, n)`` into at most *n_bands* near-equal contiguous bands.

    The first ``n % n_bands`` bands are one element longer, so sizes
    differ by at most one.  Fewer bands are returned when ``n < n_bands``.
    """
    if n < 0:
        raise KernelPoolError(f"cannot partition a negative range ({n})")
    if n_bands < 1:
        raise KernelPoolError(f"n_bands must be >= 1, got {n_bands}")
    if n == 0:
        return []
    n_bands = min(n_bands, n)
    base, extra = divmod(n, n_bands)
    bands: List[Range] = []
    start = 0
    for index in range(n_bands):
        stop = start + base + (1 if index < extra else 0)
        bands.append((start, stop))
        start = stop
    return bands


def sized_bands(n: int, band_size: int) -> List[Range]:
    """Split ``[0, n)`` into bands of *band_size* (last one may be short)."""
    if n < 0:
        raise KernelPoolError(f"cannot partition a negative range ({n})")
    if band_size < 1:
        raise KernelPoolError(f"band_size must be >= 1, got {band_size}")
    return [(start, min(start + band_size, n)) for start in range(0, n, band_size)]


def row_bands(height: int, workers: int, tile_rows: int = 0) -> List[Range]:
    """Framebuffer row tiles: fixed-height when *tile_rows* > 0, else one
    near-equal band per worker."""
    if tile_rows > 0:
        return sized_bands(height, tile_rows)
    return index_bands(height, workers)


def z_slabs(n_cells: int, workers: int, slab_cells: int = 0) -> List[Range]:
    """Volume cell slabs along z: fixed-thickness when *slab_cells* > 0,
    else one near-equal slab per worker."""
    if slab_cells > 0:
        return sized_bands(n_cells, slab_cells)
    return index_bands(n_cells, workers)


def weighted_bands(weights: Sequence[float], n_bands: int) -> List[Range]:
    """Split ``[0, len(weights))`` into at most *n_bands* contiguous bands
    of near-equal total weight.

    This is the adaptive variant of :func:`index_bands`: *weights* are
    per-item cost estimates (expected ray samples per image row,
    candidate cells per z-layer) and band boundaries are chosen so each
    band carries about ``total / n_bands`` of the cost.  Deterministic
    — boundaries are a pure function of the weights — and it upholds
    the partition invariants: exact cover of ``[0, n)``, ascending,
    non-overlapping, never an empty band.  Non-finite or negative
    weights are treated as zero; an all-zero weighting degrades to
    :func:`index_bands`.
    """
    n = len(weights)
    if n_bands < 1:
        raise KernelPoolError(f"n_bands must be >= 1, got {n_bands}")
    if n == 0:
        return []
    cleaned = [
        w if (w > 0.0 and w == w and w != float("inf")) else 0.0
        for w in (float(w) for w in weights)
    ]
    total = sum(cleaned)
    if total <= 0.0:
        return index_bands(n, n_bands)
    n_bands = min(n_bands, n)
    bands: List[Range] = []
    start = 0
    cumulative = 0.0
    for index in range(n_bands - 1):
        target = total * (index + 1) / n_bands
        stop = start
        # advance until this band reaches its share of the total cost,
        # but always leave at least one item per remaining band
        limit = n - (n_bands - 1 - index)
        while stop < limit and (stop == start or cumulative < target):
            cumulative += cleaned[stop]
            stop += 1
        bands.append((start, stop))
        start = stop
    bands.append((start, n))
    return bands
