"""Configuration for the process-parallel kernel pool.

A :class:`ParallelConfig` describes how the tiled rendering kernels
distribute work: how many worker processes, how the framebuffer /
volume / seed domain is partitioned, and the pool-wide timeout.  The
pool is strictly **opt-in**: the default configuration has ``workers=1``
and every kernel falls back to its serial implementation whenever the
config is not :attr:`ParallelConfig.enabled` — including on platforms
without POSIX shared memory.

The ambient default config (:func:`get_config` / :func:`set_config` /
:func:`use_config`) is what lets DV3D plot types pick up parallelism
without API changes: ``Renderer``, ``marching_tetrahedra``,
``integrate_streamlines`` and ``regrid_conservative`` all consult it
when no explicit config is passed.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.util.errors import KernelPoolError


def shared_memory_supported() -> bool:
    """Whether ``multiprocessing.shared_memory`` works on this platform."""
    global _SHM_SUPPORTED
    if _SHM_SUPPORTED is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _SHM_SUPPORTED = True
        except Exception:
            _SHM_SUPPORTED = False
    return _SHM_SUPPORTED


_SHM_SUPPORTED: Optional[bool] = None


@dataclass(frozen=True)
class ParallelConfig:
    """How the kernel pool tiles and distributes work.

    Parameters
    ----------
    workers:
        Worker process count; ``<= 1`` selects the serial path.
    tile_rows:
        Framebuffer row-band height for raycast/rasterize tiles
        (0 = one contiguous band per worker).
    slab_cells:
        Isosurface z-slab thickness in cells (0 = one slab per worker).
    min_items:
        Work-size floor (rays, triangles, cells, seeds, output rows)
        below which kernels run serially — fork + IPC overhead dwarfs
        tiny workloads.  Determinism is unaffected: the parallel path
        is bitwise-identical to the serial one for the render kernels.
    timeout:
        Pool-wide wall-clock limit in seconds; exceeding it raises
        :class:`~repro.util.errors.KernelPoolError` after the pool
        tears down its workers.
    respawn_budget:
        How many replacement workers one pool run may spawn to retry
        the tiles of crashed workers before degrading to in-parent
        serial execution of the remaining tiles (0 disables respawn;
        a tile that kills its worker twice is deemed poisonous and
        fails the run regardless).
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where
        available — zero-copy payload inheritance — else ``spawn``).
    adaptive:
        Let kernels choose cost-weighted tile boundaries (expected ray
        samples per row, candidate cells per z-layer) instead of
        equal-count bands.  Only consulted when ``tile_rows`` /
        ``slab_cells`` leave the partition to the kernel; the weighting
        is a deterministic function of the scene, and kernel outputs
        are bitwise independent of the tiling either way.
    """

    workers: int = 1
    tile_rows: int = 0
    slab_cells: int = 0
    min_items: int = 2048
    timeout: float = 120.0
    respawn_budget: int = 2
    start_method: Optional[str] = None
    adaptive: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise KernelPoolError(f"workers must be >= 1, got {self.workers}")
        if self.timeout <= 0:
            raise KernelPoolError(f"timeout must be positive, got {self.timeout}")
        if self.tile_rows < 0 or self.slab_cells < 0 or self.min_items < 0:
            raise KernelPoolError("tile_rows, slab_cells and min_items must be >= 0")
        if self.respawn_budget < 0:
            raise KernelPoolError(
                f"respawn_budget must be >= 0, got {self.respawn_budget}"
            )

    @property
    def enabled(self) -> bool:
        """Whether kernels should take the process-parallel path."""
        return self.workers > 1 and shared_memory_supported()

    def wants(self, n_items: int) -> bool:
        """Whether a workload of *n_items* is worth distributing."""
        return self.enabled and n_items >= self.min_items

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"

    def serial(self) -> "ParallelConfig":
        """This config with the pool disabled (worker-side re-entry guard)."""
        return replace(self, workers=1)


#: the ambient default — serial unless the application opts in
_DEFAULT = ParallelConfig()


def get_config() -> ParallelConfig:
    """The ambient config consulted by kernels when none is passed."""
    return _DEFAULT


def set_config(config: ParallelConfig) -> ParallelConfig:
    """Install *config* as the ambient default; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    return previous


def configure(**kwargs) -> ParallelConfig:
    """Build a :class:`ParallelConfig` and install it as the default."""
    config = ParallelConfig(**kwargs)
    set_config(config)
    return config


@contextmanager
def use_config(config: Optional[ParallelConfig]) -> Iterator[ParallelConfig]:
    """Temporarily install *config* as the ambient default (None = no-op)."""
    if config is None:
        yield get_config()
        return
    previous = set_config(config)
    try:
        yield config
    finally:
        set_config(previous)
