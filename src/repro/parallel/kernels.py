"""Process-parallel tiled versions of the rendering hot paths.

Each kernel here partitions its domain (framebuffer rows, volume
z-slabs, seed chunks, output-latitude bands), runs the existing serial
kernel on each tile in a worker process, and merges the results:

=====================  =========================  =====================
kernel                 partition                  merge
=====================  =========================  =====================
``parallel_raycast``   framebuffer row bands      write into shared RGBA
``parallel_rasterize``  framebuffer row bands     shared color+depth
``parallel_marching_tetrahedra``  volume z-slabs  concat + dedup + sort
``parallel_integrate_streamlines``  seed chunks   ordered concat
``parallel_separable_products``  output-lat bands  ordered concat
=====================  =========================  =====================

Determinism: the render kernels (raycast, rasterize, isosurface,
streamlines) are **bitwise identical** to their serial counterparts —
every per-ray / per-pixel / per-cell / per-seed quantity is computed
elementwise by the shared serial code paths, and the isosurface output
is canonicalized (vertex dedup + triangle lexsort) on both paths.  The
regrid products are near-exact only (banded einsum may reassociate
BLAS reductions).

Every kernel takes a ``config`` (:class:`~repro.parallel.config.ParallelConfig`)
and falls back to the serial implementation when the config is
disabled or the workload is below ``config.min_items``.  Worker-side
re-entry is guarded by passing ``config.serial()`` into any nested
kernel call, so a forked worker never spawns its own pool.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.parallel.config import ParallelConfig, get_config
from repro.parallel.partition import index_bands, row_bands, weighted_bands, z_slabs
from repro.parallel.pool import attach_ndarray, run_tiles, shared_ndarray

# ---------------------------------------------------------------------------
# raycast


def _raycast_tile(payload: Tuple[Any, ...], band: Tuple[int, int]) -> int:
    from repro.rendering.raycast import raycast_rows

    (volume, transfer, camera, width, height, step_size, array_name,
     depth_limit, lighting, light_direction, empty_space_skipping,
     shm_name) = payload
    row0, row1 = band
    block = raycast_rows(
        volume, transfer, camera, width, height, row0, row1,
        step_size=step_size, array_name=array_name, depth_limit=depth_limit,
        lighting=lighting, light_direction=light_direction,
        empty_space_skipping=empty_space_skipping,
    )
    with attach_ndarray(shm_name, (height, width, 4), np.float32) as out:
        out[row0:row1] = block
    return row1 - row0


def _raycast_bands(
    volume, transfer, camera, width, height, step_size, array_name, config
):
    """Row partition for the ray caster — cost-weighted when adaptive.

    The weighting charges each row its expected in-volume sample count
    against the occupied region's bounding box (a deterministic
    function of the scene), so rows crossing the data cost more and
    bands equalize wall-clock instead of row count.  Kernel outputs
    are bitwise independent of the tiling, so this only moves work.
    """
    if config.tile_rows > 0 or not config.adaptive:
        return row_bands(height, config.workers, config.tile_rows)
    from repro.rendering.accel import raycast_row_weights
    from repro.rendering.raycast import _skip_setup

    name = array_name or volume.active_scalars_name
    skip = _skip_setup(volume, transfer, name)
    if skip is None:
        box = volume.bounds()
    else:
        box = skip[2]  # None when nothing contributes: every row is cheap
    step = float(step_size) if step_size else float(min(volume.spacing))
    weights = raycast_row_weights(volume, camera, width, height, step, box)
    return weighted_bands(weights.tolist(), config.workers)


def parallel_raycast(
    volume,
    transfer,
    camera,
    width: int,
    height: int,
    step_size: Optional[float] = None,
    array_name: Optional[str] = None,
    depth_limit: Optional[np.ndarray] = None,
    lighting: bool = True,
    light_direction: Tuple[float, float, float] = (0.4, -0.5, 0.8),
    empty_space_skipping: bool = True,
    config: Optional[ParallelConfig] = None,
) -> np.ndarray:
    """Tiled :func:`repro.rendering.raycast.raycast_volume` — bitwise identical."""
    from repro.rendering.raycast import raycast_volume

    config = config if config is not None else get_config()
    if not config.wants(width * height):
        return raycast_volume(
            volume, transfer, camera, width, height,
            step_size=step_size, array_name=array_name, depth_limit=depth_limit,
            lighting=lighting, light_direction=light_direction,
            empty_space_skipping=empty_space_skipping,
        )
    bands = _raycast_bands(
        volume, transfer, camera, width, height, step_size, array_name, config
    )
    with obs.span(
        "raycast.render", rays=int(width * height), width=int(width),
        height=int(height), parallel=True,
    ):
        with shared_ndarray((height, width, 4), np.float32) as (shm_name, out):
            payload = (
                volume, transfer, camera, width, height, step_size, array_name,
                depth_limit, lighting, light_direction, empty_space_skipping,
                shm_name,
            )
            run_tiles(config, _raycast_tile, bands, payload=payload, label="raycast")
            rgba = out.copy()
        if obs.enabled():
            obs.counter("raycast.rays", int(width * height))
    return rgba


# ---------------------------------------------------------------------------
# rasterize


def _rasterize_tile(payload: Tuple[Any, ...], band: Tuple[int, int]) -> int:
    from repro.rendering.framebuffer import Framebuffer
    from repro.rendering.rasterizer import rasterize

    (poly, camera, height, width, light_direction, flat_color, line_color,
     point_size, color_name, depth_name) = payload
    with attach_ndarray(color_name, (height, width, 3), np.float32) as color:
        with attach_ndarray(depth_name, (height, width), np.float32) as depth:
            fb = Framebuffer.from_arrays(color, depth)
            return rasterize(
                poly, camera, fb,
                light_direction=light_direction, flat_color=flat_color,
                line_color=line_color, point_size=point_size, row_range=band,
            )


def parallel_rasterize(
    poly,
    camera,
    framebuffer,
    light_direction: Optional[np.ndarray] = None,
    flat_color: tuple = (0.8, 0.8, 0.8),
    line_color: Optional[tuple] = None,
    point_size: int = 1,
    config: Optional[ParallelConfig] = None,
) -> int:
    """Tiled :func:`repro.rendering.rasterizer.rasterize` — bitwise identical.

    The framebuffer's color and depth planes are copied into shared
    memory, each worker rasterizes its row band in place, and the
    result is copied back; returns total pixels written.
    """
    from repro.rendering.rasterizer import rasterize

    config = config if config is not None else get_config()
    n_work = int(poly.n_triangles) + sum(int(line.size) for line in poly.lines)
    if not config.wants(n_work):
        return rasterize(
            poly, camera, framebuffer,
            light_direction=light_direction, flat_color=flat_color,
            line_color=line_color, point_size=point_size,
        )
    height, width = framebuffer.height, framebuffer.width
    bands = row_bands(height, config.workers, config.tile_rows)
    with shared_ndarray((height, width, 3), np.float32) as (color_name, color):
        with shared_ndarray((height, width), np.float32) as (depth_name, depth):
            color[:] = framebuffer.color
            depth[:] = framebuffer.depth
            payload = (
                poly, camera, height, width, light_direction, flat_color,
                line_color, point_size, color_name, depth_name,
            )
            counts = run_tiles(
                config, _rasterize_tile, bands, payload=payload, label="rasterize"
            )
            framebuffer.color[:] = color
            framebuffer.depth[:] = depth
    return int(sum(counts))


# ---------------------------------------------------------------------------
# isosurface


def _isosurface_tile(payload: Tuple[Any, ...], slab: Tuple[int, int]) -> np.ndarray:
    from repro.rendering.isosurface import _slab_triangle_points

    values, isovalue, candidates = payload
    return _slab_triangle_points(
        values, isovalue, slab[0], slab[1], candidates=candidates
    )


def parallel_marching_tetrahedra(
    volume,
    isovalue: float,
    array_name: Optional[str] = None,
    config: Optional[ParallelConfig] = None,
    accelerate: bool = True,
):
    """Z-slab-parallel marching tetrahedra — identical surface to serial.

    Slab triangle lists are concatenated in slab order, then vertices
    are deduplicated and triangles canonically ordered by the same
    finalization the serial path uses, so the merged surface is
    array-identical (shared-edge vertices appear once).  The candidate
    cell mask is computed once in the parent and shared with every
    worker; with ``config.adaptive`` it also weights the z-slab
    boundaries so slabs carry near-equal candidate counts.
    """
    from repro.rendering.geometry import PolyData
    from repro.rendering.isosurface import (
        _finalize_surface,
        _prepared_values,
        candidate_cells,
        marching_tetrahedra,
    )
    from repro.util.errors import RenderingError

    config = config if config is not None else get_config()
    name = array_name or volume.active_scalars_name
    scalars = volume.get_array(name)
    if scalars.ndim != 3:
        raise RenderingError("marching_tetrahedra requires a scalar array")
    nx, ny, nz = scalars.shape
    if min(nx, ny, nz) < 2:
        return PolyData(np.zeros((0, 3)))
    n_cells = (nx - 1) * (ny - 1) * (nz - 1)
    if not config.wants(n_cells) or nz - 1 < 2:
        return marching_tetrahedra(
            volume, isovalue, array_name=array_name, parallel=config.serial(),
            accelerate=accelerate,
        )
    with obs.span(
        "isosurface.marching_tetrahedra",
        cells=int(n_cells), isovalue=float(isovalue), parallel=True,
    ) as _span:
        candidates = (
            candidate_cells(volume, float(isovalue), name) if accelerate else None
        )
        if candidates is not None and obs.enabled():
            obs.counter(
                "isosurface.cells.skipped",
                int(n_cells - np.count_nonzero(candidates)),
            )
        values = _prepared_values(scalars)
        if candidates is not None and config.adaptive and config.slab_cells == 0:
            from repro.rendering.accel import z_layer_weights

            slabs = weighted_bands(
                z_layer_weights(candidates).tolist(), config.workers
            )
        else:
            slabs = z_slabs(nz - 1, config.workers, config.slab_cells)
        blocks = run_tiles(
            config, _isosurface_tile, slabs,
            payload=(values, float(isovalue), candidates), label="isosurface",
        )
        non_empty = [block for block in blocks if block.shape[0]]
        tri_pts = (
            np.concatenate(non_empty) if non_empty
            else np.zeros((0, 3, 3), dtype=np.float64)
        )
        surface = _finalize_surface(
            volume, tri_pts, float(isovalue), True, n_cells, _span
        )
    return surface


# ---------------------------------------------------------------------------
# streamlines


def _streamline_tile(payload: Tuple[Any, ...], chunk: Tuple[int, int]) -> List[np.ndarray]:
    from repro.rendering.streamline import integrate_streamlines

    (volume, vector_name, seeds, step_size, max_steps, min_speed,
     bidirectional, serial_config) = payload
    s0, s1 = chunk
    return integrate_streamlines(
        volume, vector_name, seeds[s0:s1],
        step_size=step_size, max_steps=max_steps, min_speed=min_speed,
        bidirectional=bidirectional, parallel=serial_config,
    )


def parallel_integrate_streamlines(
    volume,
    vector_name: str,
    seeds: np.ndarray,
    step_size: Optional[float] = None,
    max_steps: int = 200,
    min_speed: float = 1e-6,
    bidirectional: bool = False,
    config: Optional[ParallelConfig] = None,
) -> List[np.ndarray]:
    """Seed-chunked streamline integration — identical lines, same order."""
    from repro.rendering.streamline import integrate_streamlines

    config = config if config is not None else get_config()
    seeds = np.atleast_2d(np.asarray(seeds, dtype=np.float64))
    if not config.wants(seeds.shape[0]):
        return integrate_streamlines(
            volume, vector_name, seeds,
            step_size=step_size, max_steps=max_steps, min_speed=min_speed,
            bidirectional=bidirectional, parallel=config.serial(),
        )
    chunks = index_bands(seeds.shape[0], config.workers)
    payload = (
        volume, vector_name, seeds, step_size, max_steps, min_speed,
        bidirectional, config.serial(),
    )
    results = run_tiles(config, _streamline_tile, chunks, payload=payload, label="streamline")
    return [line for chunk_lines in results for line in chunk_lines]


# ---------------------------------------------------------------------------
# regrid


def _regrid_tile(payload: Tuple[Any, ...], band: Tuple[int, int]):
    from repro.cdms.regrid import _separable_products

    filled, valid, lat_matrix, lon_matrix = payload
    l0, l1 = band
    return _separable_products(filled, valid, lat_matrix[l0:l1], lon_matrix)


def parallel_separable_products(
    filled: np.ndarray,
    valid: np.ndarray,
    lat_matrix: np.ndarray,
    lon_matrix: np.ndarray,
    config: Optional[ParallelConfig] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Output-latitude-banded separable regrid products (near-exact)."""
    from repro.cdms.regrid import _separable_products

    config = config if config is not None else get_config()
    n_lat = lat_matrix.shape[0]
    if not config.enabled or n_lat < 2:
        return _separable_products(filled, valid, lat_matrix, lon_matrix)
    bands = index_bands(n_lat, config.workers)
    payload = (filled, valid, lat_matrix, lon_matrix)
    parts = run_tiles(config, _regrid_tile, bands, payload=payload, label="regrid")
    numerator = np.concatenate([p[0] for p in parts], axis=-2)
    denominator = np.concatenate([p[1] for p in parts], axis=-2)
    return numerator, denominator
