"""Metric aggregates: counters, gauges and histograms with labels.

Each metric series is identified by a :class:`MetricKey` — a name plus
a sorted tuple of ``(label, value)`` pairs — so the same instrument
name can fan out per module, per message kind, per node, etc.
Histograms keep streaming statistics (count/sum/min/max) plus
power-of-two bucket counts, which is enough to spot latency-tail
regressions in ``BENCH_obs.json`` without storing every sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Tuple

#: histograms bucket by powers of two around 1.0; bucket ``i`` counts
#: samples with ``2**(i-1) < value <= 2**i`` after clamping to the range
_BUCKET_LO = -30  # ~1e-9 (nanoseconds when values are seconds)
_BUCKET_HI = 30  # ~1e9


@dataclass(frozen=True)
class MetricKey:
    """Identity of one metric series: name + sorted label pairs."""

    name: str
    labels: Tuple[Tuple[str, str], ...] = ()

    @staticmethod
    def make(name: str, labels: Mapping[str, Any]) -> "MetricKey":
        if not labels:
            return MetricKey(name)
        return MetricKey(
            name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        )

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)


def bucket_index(value: float) -> int:
    """Power-of-two bucket index of *value* (clamped to the table range)."""
    if value <= 0.0 or not math.isfinite(value):
        return _BUCKET_LO
    return min(max(math.ceil(math.log2(value)), _BUCKET_LO), _BUCKET_HI)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """The ``(low, high]`` value range of bucket *index*."""
    return (2.0 ** (index - 1), 2.0**index)


@dataclass
class HistogramData:
    """Streaming aggregate of one histogram series."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramData") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "HistogramData":
        hist = HistogramData(
            count=int(data.get("count", 0)),
            total=float(data.get("sum", 0.0)),
        )
        hist.min = float(data["min"]) if data.get("min") is not None else math.inf
        hist.max = float(data["max"]) if data.get("max") is not None else -math.inf
        hist.buckets = {int(k): int(v) for k, v in dict(data.get("buckets", {})).items()}
        return hist


def encode_series(metrics: Mapping[MetricKey, Any], kind: str) -> List[Dict[str, Any]]:
    """JSON-encode one metric family, sorted for deterministic output."""
    rows = []
    for key in sorted(metrics, key=lambda k: (k.name, k.labels)):
        value = metrics[key]
        encoded = value.to_dict() if kind == "histogram" else value
        rows.append({"name": key.name, "labels": key.label_dict(), "value": encoded})
    return rows


def decode_series(rows: List[Mapping[str, Any]], kind: str) -> Dict[MetricKey, Any]:
    """Inverse of :func:`encode_series`."""
    out: Dict[MetricKey, Any] = {}
    for row in rows:
        key = MetricKey.make(str(row["name"]), dict(row.get("labels", {})))
        value = row["value"]
        out[key] = HistogramData.from_dict(value) if kind == "histogram" else float(value)
    return out
