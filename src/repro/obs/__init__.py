"""Observability: hierarchical tracing spans and labelled metrics.

The paper's value proposition is an *interactive* exploration loop —
workflow re-execution with caching, heavy numpy rendering kernels, and
distributed hyperwall execution.  This package makes that loop
observable: every hot path (executor module runs, ray casting,
isosurface extraction, streamline integration, rasterization,
regridding, hyperwall message traffic) emits spans and metrics into a
process-global :class:`Recorder`, exportable as JSON
(``tools/perf_report.py`` turns a benchmark replay into the
``BENCH_obs.json`` artifact CI tracks across PRs) or as a
human-readable summary tree.

Design constraints:

* **dependency-free** — stdlib only; importable everywhere without
  cycles (``repro.obs`` sits below every other layer);
* **zero-cost when disabled** — the module-level enabled flag is
  checked before any recorder allocation; ``span()`` returns a shared
  no-op singleton and every metric call is a single guarded return, so
  instrumented kernels run at seed speed with recording off (the
  default);
* **thread-aware** — span stacks are thread-local (the executor runs
  modules on a ``ThreadPoolExecutor``); cross-thread parenting is
  explicit via ``parent_id``.

Usage::

    from repro import obs

    obs.enable()
    with obs.span("raycast.render", rays=1024):
        ...
    obs.counter("executor.cache.hit")
    obs.histogram("executor.module.duration", 0.25, module="Slicer")
    print(obs.get_recorder().summary_tree())
    payload = obs.get_recorder().to_json()
    obs.disable()
"""

from repro.obs.metrics import HistogramData, MetricKey, bucket_bounds
from repro.obs.recorder import (
    NULL_SPAN,
    Recorder,
    Span,
    SpanRecord,
    counter,
    current_span_id,
    disable,
    enable,
    enabled,
    gauge,
    get_recorder,
    histogram,
    record_span,
    recording,
    set_recorder,
    span,
)
from repro.obs.summary import render_summary_tree

__all__ = [
    "HistogramData",
    "MetricKey",
    "NULL_SPAN",
    "Recorder",
    "Span",
    "SpanRecord",
    "bucket_bounds",
    "counter",
    "current_span_id",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_recorder",
    "histogram",
    "record_span",
    "recording",
    "render_summary_tree",
    "set_recorder",
    "span",
]
