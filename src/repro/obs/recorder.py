"""The process-global span/metric recorder.

A :class:`Recorder` accumulates completed :class:`SpanRecord` rows plus
counter/gauge/histogram series.  Span parent/child structure comes from
a *thread-local* stack of open spans — the executor runs modules on a
``ThreadPoolExecutor``, so each worker thread nests independently;
cross-thread edges are created explicitly by passing ``parent_id``
(captured on the dispatching thread with :func:`current_span_id`).

The module-level functions (:func:`span`, :func:`counter`,
:func:`gauge`, :func:`histogram`) are the instrumentation API used by
the hot paths.  They check the module-level enabled flag *first* and
return without allocating anything when recording is off, so
instrumented kernels run at full speed by default.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.metrics import (
    HistogramData,
    MetricKey,
    decode_series,
    encode_series,
)


@dataclass
class SpanRecord:
    """One completed span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    thread: str
    start: float  # seconds since the recorder's epoch
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "thread": self.thread,
            "start": self.start,
            "duration": self.duration,
            "attrs": self.attrs,
        }

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "SpanRecord":
        return SpanRecord(
            span_id=int(data["id"]),
            parent_id=None if data.get("parent") is None else int(data["parent"]),
            name=str(data["name"]),
            thread=str(data.get("thread", "")),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )


class Span:
    """An open span; a context manager that records itself on exit.

    Attributes can be attached at creation (``span("x", rows=3)``) or
    later via :meth:`set` (e.g. a result count known only at the end).
    """

    __slots__ = ("_recorder", "id", "parent_id", "name", "attrs", "_start")

    def __init__(
        self,
        recorder: "Recorder",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.id: Optional[int] = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def set(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._recorder._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._recorder._pop(self, duration)


class _NullSpan:
    """Shared no-op stand-in returned while recording is disabled."""

    __slots__ = ()
    id: Optional[int] = None
    parent_id: Optional[int] = None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Recorder:
    """Accumulates spans and metrics; thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_id = 1
        self.epoch = time.perf_counter()
        self.spans: List[SpanRecord] = []
        self.counters: Dict[MetricKey, float] = {}
        self.gauges: Dict[MetricKey, float] = {}
        self.histograms: Dict[MetricKey, HistogramData] = {}

    # -- spans ---------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def span(
        self, name: str, parent_id: Optional[int] = None, **attrs: Any
    ) -> Span:
        """Open a span; nest under the thread's current span by default."""
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        if parent_id is None:
            stack = self._stack()
            parent_id = stack[-1].id if stack else None
        return Span(self, span_id, parent_id, name, dict(attrs))

    def current_span_id(self) -> Optional[int]:
        """Id of this thread's innermost open span (None at top level)."""
        stack = self._stack()
        return stack[-1].id if stack else None

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span, duration: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        record = SpanRecord(
            span_id=span.id if span.id is not None else 0,
            parent_id=span.parent_id,
            name=span.name,
            thread=threading.current_thread().name,
            start=span._start - self.epoch,
            duration=duration,
            attrs=span.attrs,
        )
        with self._lock:
            self.spans.append(record)

    # -- metrics -------------------------------------------------------------

    def counter(self, name: str, value: float = 1.0, **labels: Any) -> None:
        key = MetricKey.make(name, labels)
        with self._lock:
            self.counters[key] = self.counters.get(key, 0.0) + float(value)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        key = MetricKey.make(name, labels)
        with self._lock:
            self.gauges[key] = float(value)

    def histogram(self, name: str, value: float, **labels: Any) -> None:
        key = MetricKey.make(name, labels)
        with self._lock:
            hist = self.histograms.get(key)
            if hist is None:
                hist = self.histograms[key] = HistogramData()
            hist.observe(value)

    def record_span(
        self,
        name: str,
        duration: float,
        parent_id: Optional[int] = None,
        start: Optional[float] = None,
        thread: Optional[str] = None,
        **attrs: Any,
    ) -> SpanRecord:
        """Record a completed span whose timing was measured elsewhere.

        The process-parallel kernel pool measures tile execution inside
        worker *processes*, whose recorders are forked copies; the
        parent re-reports each tile here with the worker-measured
        duration (``start`` is seconds on the shared monotonic clock,
        converted against this recorder's epoch).
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        record = SpanRecord(
            span_id=span_id,
            parent_id=parent_id,
            name=name,
            thread=thread if thread is not None else threading.current_thread().name,
            start=(start - self.epoch) if start is not None else (time.perf_counter() - self.epoch - duration),
            duration=float(duration),
            attrs=dict(attrs),
        )
        with self._lock:
            self.spans.append(record)
        return record

    def counter_value(self, name: str, **labels: Any) -> float:
        """Current value of one counter series (0 if never incremented)."""
        return self.counters.get(MetricKey.make(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label combinations."""
        return sum(v for k, v in self.counters.items() if k.name == name)

    def gauge_value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Last value of one gauge series (*default* if never set)."""
        return self.gauges.get(MetricKey.make(name, labels), default)

    # -- lifecycle -----------------------------------------------------------

    def reset(self) -> None:
        """Drop all recorded data (open spans on other threads are kept)."""
        with self._lock:
            self.spans.clear()
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.epoch = time.perf_counter()

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "spans": [s.to_dict() for s in self.spans],
                "counters": encode_series(self.counters, "counter"),
                "gauges": encode_series(self.gauges, "gauge"),
                "histograms": encode_series(self.histograms, "histogram"),
            }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "Recorder":
        recorder = Recorder()
        recorder.spans = [SpanRecord.from_dict(row) for row in data.get("spans", [])]
        recorder.counters = decode_series(data.get("counters", []), "counter")
        recorder.gauges = decode_series(data.get("gauges", []), "gauge")
        recorder.histograms = decode_series(data.get("histograms", []), "histogram")
        recorder._next_id = 1 + max((s.span_id for s in recorder.spans), default=0)
        return recorder

    @staticmethod
    def from_json(payload: str) -> "Recorder":
        return Recorder.from_dict(json.loads(payload))

    def summary_tree(self) -> str:
        """Human-readable aggregated span tree (see ``obs.summary``)."""
        from repro.obs.summary import render_summary_tree

        return render_summary_tree(self)


# -- module-level instrumentation API ---------------------------------------
#
# ``_ENABLED`` is the zero-cost gate: every entry point below checks it
# before touching (or allocating) anything else.

_ENABLED = False
_RECORDER = Recorder()


def enable(recorder: Optional[Recorder] = None) -> Recorder:
    """Turn recording on (optionally installing a fresh recorder)."""
    global _ENABLED, _RECORDER
    if recorder is not None:
        _RECORDER = recorder
    _ENABLED = True
    return _RECORDER


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    return _ENABLED


def get_recorder() -> Recorder:
    return _RECORDER


def set_recorder(recorder: Recorder) -> None:
    global _RECORDER
    _RECORDER = recorder


def span(name: str, parent_id: Optional[int] = None, **attrs: Any):
    """Open a span on the global recorder (shared no-op when disabled)."""
    if not _ENABLED:
        return NULL_SPAN
    return _RECORDER.span(name, parent_id=parent_id, **attrs)


def current_span_id() -> Optional[int]:
    if not _ENABLED:
        return None
    return _RECORDER.current_span_id()


def counter(name: str, value: float = 1.0, **labels: Any) -> None:
    if not _ENABLED:
        return
    _RECORDER.counter(name, value, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    if not _ENABLED:
        return
    _RECORDER.gauge(name, value, **labels)


def histogram(name: str, value: float, **labels: Any) -> None:
    if not _ENABLED:
        return
    _RECORDER.histogram(name, value, **labels)


def record_span(
    name: str,
    duration: float,
    parent_id: Optional[int] = None,
    start: Optional[float] = None,
    thread: Optional[str] = None,
    **attrs: Any,
) -> None:
    """Record an externally-timed span (no-op while disabled)."""
    if not _ENABLED:
        return
    _RECORDER.record_span(
        name, duration, parent_id=parent_id, start=start, thread=thread, **attrs
    )


class recording:
    """Context manager: enable a fresh (or given) recorder, then restore.

    >>> from repro import obs
    >>> with obs.recording() as rec:
    ...     with obs.span("work"):
    ...         pass
    >>> rec.spans[0].name
    'work'
    """

    def __init__(self, recorder: Optional[Recorder] = None) -> None:
        self.recorder = recorder if recorder is not None else Recorder()
        self._saved: Optional[Recorder] = None
        self._was_enabled = False

    def __enter__(self) -> Recorder:
        self._saved = get_recorder()
        self._was_enabled = enabled()
        enable(self.recorder)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._saved is not None:
            set_recorder(self._saved)
        if not self._was_enabled:
            disable()
