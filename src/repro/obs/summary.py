"""Human-readable summary of a recorder's contents.

Spans are aggregated by *tree path* (the chain of span names from the
root), so a thousand ``executor.module`` spans under one
``executor.execute`` collapse into a single line with count/total/mean
statistics.  Metrics print below the tree, sorted by name.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.recorder import Recorder, SpanRecord


def _span_paths(recorder: Recorder) -> Dict[Tuple[str, ...], List[SpanRecord]]:
    """Group spans by their name-path from the root."""
    by_id: Dict[int, SpanRecord] = {s.span_id: s for s in recorder.spans}

    def path_of(record: SpanRecord) -> Tuple[str, ...]:
        names = [record.name]
        seen = {record.span_id}
        parent: Optional[int] = record.parent_id
        while parent is not None and parent in by_id and parent not in seen:
            seen.add(parent)
            parent_record = by_id[parent]
            names.append(parent_record.name)
            parent = parent_record.parent_id
        return tuple(reversed(names))

    groups: Dict[Tuple[str, ...], List[SpanRecord]] = {}
    for record in recorder.spans:
        groups.setdefault(path_of(record), []).append(record)
    return groups


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_summary_tree(recorder: Recorder) -> str:
    """The indented count/total/mean tree plus a metrics appendix."""
    groups = _span_paths(recorder)
    lines: List[str] = ["spans:"] if groups else ["spans: (none)"]
    for path in sorted(groups):
        records = groups[path]
        total = sum(r.duration for r in records)
        mean = total / len(records)
        indent = "  " * len(path)
        lines.append(
            f"{indent}{path[-1]}  count={len(records)} "
            f"total={_format_seconds(total)} mean={_format_seconds(mean)}"
        )

    def label_suffix(key) -> str:
        if not key.labels:
            return ""
        inner = ",".join(f"{k}={v}" for k, v in key.labels)
        return "{" + inner + "}"

    if recorder.counters:
        lines.append("counters:")
        for key in sorted(recorder.counters, key=lambda k: (k.name, k.labels)):
            lines.append(
                f"  {key.name}{label_suffix(key)} = {recorder.counters[key]:g}"
            )
    if recorder.gauges:
        lines.append("gauges:")
        for key in sorted(recorder.gauges, key=lambda k: (k.name, k.labels)):
            lines.append(f"  {key.name}{label_suffix(key)} = {recorder.gauges[key]:g}")
    if recorder.histograms:
        lines.append("histograms:")
        for key in sorted(recorder.histograms, key=lambda k: (k.name, k.labels)):
            hist = recorder.histograms[key]
            lines.append(
                f"  {key.name}{label_suffix(key)}  count={hist.count} "
                f"mean={_format_seconds(hist.mean)} "
                f"min={_format_seconds(hist.min if hist.count else 0.0)} "
                f"max={_format_seconds(hist.max if hist.count else 0.0)}"
            )
    return "\n".join(lines)
