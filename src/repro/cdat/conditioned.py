"""Conditioned comparisons ("conditioned comparisons" in the paper).

Operations that restrict analysis to points satisfying a condition:
mask a variable where a condition variable holds, or compare two
variables only over the conditioned region.  Conditions are expressed
as :class:`~repro.cdms.variable.Variable` instances whose values are
truthy/falsy (e.g. the output of ``var > 273.15``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def _condition_mask(condition: Variable, shape) -> np.ndarray:
    if condition.shape != tuple(shape):
        raise CDATError(
            f"condition shape {condition.shape} does not match data shape {tuple(shape)}"
        )
    truth = np.asarray(condition.data.filled(0.0)) != 0.0
    truth &= ~np.ma.getmaskarray(condition.data)
    return truth


def mask_where(var: Variable, condition: Variable) -> Variable:
    """Mask *var* at every point where *condition* is true (or masked)."""
    truth = _condition_mask(condition, var.shape)
    combined = np.ma.getmaskarray(var.data) | truth
    data = np.ma.MaskedArray(np.asarray(var.data.filled(0.0)), mask=combined)
    return Variable(data, var.axes, id=f"maskwhere({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))


def keep_where(var: Variable, condition: Variable) -> Variable:
    """Keep *var* only where *condition* is true (the complement of mask_where)."""
    truth = _condition_mask(condition, var.shape)
    combined = np.ma.getmaskarray(var.data) | ~truth
    data = np.ma.MaskedArray(np.asarray(var.data.filled(0.0)), mask=combined)
    return Variable(data, var.axes, id=f"keepwhere({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))


def compare_where(a: Variable, b: Variable, condition: Variable) -> Dict[str, float]:
    """Compare *a* and *b* restricted to the conditioned region.

    Returns a summary dictionary: point count, mean difference, RMS
    difference and correlation over the region where *condition* is
    true and both variables are valid.
    """
    from repro.cdat.statistics import correlation, rms_difference

    if a.shape != b.shape:
        raise CDATError(f"compare_where: shape mismatch {a.shape} vs {b.shape}")
    ra = keep_where(a, condition)
    rb = keep_where(b, condition)
    valid = ~(np.ma.getmaskarray(ra.data) | np.ma.getmaskarray(rb.data))
    count = int(valid.sum())
    if count == 0:
        raise CDATError("compare_where: condition selects no jointly valid points")
    diff = ra.filled(0.0) - rb.filled(0.0)
    mean_diff = float(diff[valid].mean())
    result = {
        "count": float(count),
        "mean_difference": mean_diff,
        "rms_difference": rms_difference(ra, rb),
    }
    try:
        result["correlation"] = correlation(ra, rb)
    except CDATError:
        result["correlation"] = float("nan")
    return result


def masked_fraction(var: Variable) -> float:
    """Fraction of points that are masked (0 = fully valid)."""
    return 1.0 - var.valid_fraction()
