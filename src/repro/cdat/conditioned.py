"""Conditioned comparisons ("conditioned comparisons" in the paper).

Operations that restrict analysis to points satisfying a condition:
mask a variable where a condition variable holds, or compare two
variables only over the conditioned region.  Conditions are expressed
as :class:`~repro.cdms.variable.Variable` instances whose values are
truthy/falsy (e.g. the output of ``var > 273.15``).

Masking is elementwise, so it maps over aligned slabs; the conditioned
comparison summary streams through the scalar row-fold kernel with the
condition folded into the joint-validity mask — no participant is ever
materialized whole.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cdat.slabkernels import ScalarStats
from repro.cdms.slabs import map_slabs
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def _condition_mask(condition: Variable, shape) -> np.ndarray:
    if condition.shape != tuple(shape):
        raise CDATError(
            f"condition shape {condition.shape} does not match data shape {tuple(shape)}"
        )
    truth = np.asarray(condition.data.filled(0.0)) != 0.0
    truth &= ~np.ma.getmaskarray(condition.data)
    return truth


def _combine(var: Variable, condition: Variable, invert: bool, out_id: str) -> Variable:
    """Mask *var* where the condition holds (or, inverted, fails)."""
    if condition.shape != var.shape:
        raise CDATError(
            f"condition shape {condition.shape} does not match data shape {var.shape}"
        )

    def piece(v: Variable, c: Variable) -> Variable:
        truth = _condition_mask(c, v.shape)
        extra = ~truth if invert else truth
        combined = np.ma.getmaskarray(v.data) | extra
        data = np.ma.MaskedArray(np.asarray(v.data.filled(0.0)), mask=combined)
        return Variable(data, v.axes, id=out_id,
                        missing_value=var.missing_value,
                        attributes=dict(var.attributes))

    return map_slabs(piece, var, condition, id=out_id)


def mask_where(var: Variable, condition: Variable) -> Variable:
    """Mask *var* at every point where *condition* is true (or masked)."""
    return _combine(var, condition, invert=False, out_id=f"maskwhere({var.id})")


def keep_where(var: Variable, condition: Variable) -> Variable:
    """Keep *var* only where *condition* is true (the complement of mask_where)."""
    return _combine(var, condition, invert=True, out_id=f"keepwhere({var.id})")


def compare_where(a: Variable, b: Variable, condition: Variable) -> Dict[str, float]:
    """Compare *a* and *b* restricted to the conditioned region.

    Returns a summary dictionary: point count, mean difference, RMS
    difference and correlation over the region where *condition* is
    true and both variables are valid.
    """
    if a.shape != b.shape:
        raise CDATError(f"compare_where: shape mismatch {a.shape} vs {b.shape}")
    if condition.shape != a.shape:
        raise CDATError(
            f"condition shape {condition.shape} does not match data shape {a.shape}"
        )
    try:
        joint = ScalarStats(a, b, condition=condition, op="compare_where")
    except CDATError:
        raise CDATError("compare_where: condition selects no jointly valid points") from None
    result = {
        "count": float(joint.count),
        "mean_difference": joint.mean_difference(),
        "rms_difference": joint.rms_difference(),
    }
    try:
        va = ScalarStats(a, condition=condition, op="compare_where.var").variance_a()
        vb = ScalarStats(b, condition=condition, op="compare_where.var").variance_a()
        if va <= 0 or vb <= 0:
            raise CDATError("correlation undefined: zero variance")
        result["correlation"] = float(joint.covariance() / np.sqrt(va * vb))
    except CDATError:
        result["correlation"] = float("nan")
    return result


def masked_fraction(var: Variable) -> float:
    """Fraction of points that are masked (0 = fully valid)."""
    return 1.0 - var.valid_fraction()
