"""Climatologies and anomalies.

The standard first steps of exploratory climate analysis: collapse a
time series to its mean annual cycle (monthly or seasonal climatology)
and subtract that cycle to obtain anomalies.  Month membership is
derived from the time axis's calendar-aware component times, so noleap
and 360-day model output group correctly.

All grouping runs through the group-by accumulator kernel
(:func:`repro.cdat.slabkernels.fold_group_stats`): month membership
needs only time-axis metadata, the payload streams through slab by
slab, and the per-group sum/count state is sized by the output (e.g.
12 maps for a monthly climatology) — so a climatology over a streamed
``.cdz`` container runs within the prefetcher's memory budget while
remaining byte-identical to the eager computation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.cdat import slabkernels
from repro.cdms.axis import Axis
from repro.cdms.slabs import map_slabs, materialize
from repro.cdms.variable import Variable
from repro.util.errors import CDATError

SEASONS: Dict[str, Tuple[int, ...]] = {
    "DJF": (12, 1, 2),
    "MAM": (3, 4, 5),
    "JJA": (6, 7, 8),
    "SON": (9, 10, 11),
}


def _time_months_years(var: Variable) -> Tuple[int, np.ndarray, np.ndarray]:
    time_axis = var.get_time()
    if time_axis is None:
        raise CDATError(f"variable {var.id!r} has no time axis")
    comps = time_axis.as_component_time()
    months = np.array([c.month for c in comps], dtype=np.int64)
    years = np.array([c.year for c in comps], dtype=np.int64)
    return var.axis_index("time"), months, years


def _group_mean(
    var: Variable, dim: int, groups: List[np.ndarray], coords: List[float],
    axis_id: str, units: str,
) -> Variable:
    """Mean of *var* over each index group along *dim*; groups become a new axis."""
    group_of = slabkernels.group_membership(groups, var.shape[dim])
    stats = slabkernels.fold_group_stats(
        var, dim, group_of, len(groups), op=axis_id
    )
    stacked = slabkernels.group_means(stats["sums"], stats["counts"])
    stacked = np.moveaxis(stacked, 0, dim)
    group_axis = Axis(axis_id, coords, units=units)
    axes = list(var.axes)
    axes[dim] = group_axis
    return Variable(
        stacked, axes, id=f"{axis_id}({var.id})",
        missing_value=var.missing_value, attributes=dict(var.attributes),
    )


def monthly_climatology(var: Variable) -> Variable:
    """12-point mean annual cycle; output axis ``month`` has values 1..12."""
    dim, months, _years = _time_months_years(var)
    groups = [np.nonzero(months == m)[0] for m in range(1, 13)]
    return _group_mean(var, dim, groups, list(range(1, 13)), "month", "month of year")


def seasonal_climatology(var: Variable) -> Variable:
    """DJF/MAM/JJA/SON means; output axis ``season`` has values 1..4.

    The season order follows :data:`SEASONS` (DJF first).  December is
    grouped with the *following* January/February in the same calendar
    year bucket — adequate for climatological (multi-year mean) use.
    """
    dim, months, _years = _time_months_years(var)
    groups = [np.nonzero(np.isin(months, season))[0] for season in SEASONS.values()]
    out = _group_mean(var, dim, groups, [1.0, 2.0, 3.0, 4.0], "season", "season index")
    out.attributes["season_order"] = list(SEASONS)
    return out


def anomalies(var: Variable) -> Variable:
    """Departures from the monthly climatology, same shape as the input.

    The climatology accumulates in one streaming pass; the subtraction
    is elementwise per time step, so a second pass maps over slabs.
    """
    dim, months, _years = _time_months_years(var)
    if var.slab_count() > 1 and var.slab_axis() != dim:
        var = materialize(var, op="anomalies")
    clim = monthly_climatology(var)
    clim_data = np.moveaxis(clim.data, dim, 0)  # (12, ...)
    pos = 0

    def subtract(slab: Variable) -> Variable:
        nonlocal pos
        data = np.moveaxis(slab.data, dim, 0)
        k = data.shape[0]
        anom = data - clim_data[months[pos : pos + k] - 1]
        pos += k
        anom = np.moveaxis(anom, 0, dim)
        return Variable(
            anom, slab.axes, id=f"anom({var.id})",
            missing_value=var.missing_value, attributes=dict(var.attributes),
        )

    return map_slabs(subtract, var, id=f"anom({var.id})")


def annual_mean(var: Variable) -> Variable:
    """Per-calendar-year time means; output axis ``year`` holds the years."""
    dim, _months, years = _time_months_years(var)
    unique_years = np.unique(years)
    groups = [np.nonzero(years == y)[0] for y in unique_years]
    return _group_mean(var, dim, groups, [float(y) for y in unique_years], "year", "year")
