"""Streaming accumulator kernels behind the ``repro.cdat`` reductions.

Every reduction operator is written as a fold over the slabs of its
input — the slab-source protocol of :mod:`repro.cdms.slabs` — with
accumulator state sized by the *output*, not the input.  An eager
:class:`~repro.cdms.variable.Variable` arrives as one slab, a streamed
:class:`~repro.cdms.lazy.LazyVariable` as one slab per container chunk;
both drive the same kernel.

**The byte-identity contract.**  Eager and streamed inputs must produce
bit-for-bit identical results, which the kernels guarantee by making
the sequence of float operations independent of how the payload is
partitioned:

* numpy reduces axis 0 of a C-contiguous array *sequentially* (its
  pairwise summation applies only when the reduction axis is the
  innermost-contiguous one), so continuing a fold with
  ``np.add.reduce(np.concatenate([acc[None], rows]), axis=0)``
  (:func:`extend_sum`) reproduces the whole-array ``sum(axis=0)``
  exactly, however the rows are split into slabs;
* masked means are ``(sum * 1.0) / count`` — ``* 1.0`` is an IEEE
  identity — so group means match ``np.ma.mean`` bitwise;
* a cumulative sum continued from a carried last row reproduces the
  whole-axis ``np.cumsum`` exactly, which gives the windowed
  running mean its slab-boundary carry;
* reductions over *other* dimensions touch each row independently, so
  per-slab computation + concatenation (``repro.cdms.slabs.map_slabs``)
  is trivially identical;
* whole-array *scalar* statistics (pattern covariance and friends) are
  instead canonicalized to per-row term sums folded into Python floats
  — each row is always a whole row, so row sums are partition-
  independent, and the sequential fold across rows is too.

Operations that genuinely need the full series per point (percentiles
along the slab axis) gather explicitly through
:func:`repro.cdms.slabs.materialize`, observable as ``cdat.materialize``.

Accounting: each kernel run counts the slabs it consumed
(``cdat.slabs``) and gauges the largest block-plus-accumulator resident
set it held (``cdat.peak_resident.bytes``).  Accumulators exclude
outputs shaped like the input (a running mean's output is inherently
full-size); the bounded-resident guarantee is about reductions whose
outputs are smaller than their inputs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cdms.slabs import is_streamed, iter_aligned_slabs, materialize, slab_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


class SlabAccounting:
    """Slab count and peak resident-set bytes for one kernel run."""

    def __init__(self, op: str) -> None:
        self.op = op
        self.slabs = 0
        self.peak_bytes = 0

    def note(self, *arrays: object) -> None:
        self.slabs += 1
        resident = sum(_nbytes(a) for a in arrays)
        if resident > self.peak_bytes:
            self.peak_bytes = resident

    def finish(self) -> None:
        if obs.enabled():
            obs.counter("cdat.slabs", float(self.slabs), op=self.op)
            obs.gauge(
                "cdat.peak_resident.bytes", float(self.peak_bytes), op=self.op
            )


def _nbytes(arr: object) -> int:
    total = int(getattr(arr, "nbytes", 0))
    mask = getattr(arr, "mask", None)
    if isinstance(mask, np.ndarray):
        total += int(mask.nbytes)
    return total


def extend_sum(acc: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Continue a sequential axis-0 sum with more rows.

    Bitwise-identical to reducing all rows seen so far in one
    ``np.add.reduce(..., axis=0)`` call, because numpy reduces axis 0 of
    a C-contiguous array sequentially.
    """
    if rows.shape[0] == 0:
        return acc
    return np.add.reduce(np.concatenate([acc[np.newaxis], rows], axis=0), axis=0)


def iter_blocks(
    var: Variable, dim: int, op: str = ""
) -> Iterator[Tuple[int, int, np.ma.MaskedArray]]:
    """Yield ``(start, stop, block)`` slabs with *dim* rotated to axis 0.

    Slabs arrive in storage order, so folding the yielded rows performs
    the same operation sequence regardless of partitioning.  A streamed
    variable chunked along a dimension *other* than *dim* is first
    gathered (observable as ``cdat.materialize``) — the chunked writer
    partitions along time, so this only happens for unusual containers.
    """
    if is_streamed(var) and slab_axis(var) != dim:
        var = materialize(var, op=op or f"axis{dim}")
    pos = 0
    for slab in var.iter_slabs():
        block = np.moveaxis(slab.data, dim, 0)
        yield pos, pos + block.shape[0], block
        pos += block.shape[0]


# -- grouped accumulators (climatologies, composites) ----------------------


def group_membership(groups: Sequence[np.ndarray], n: int) -> np.ndarray:
    """Dense group id per index along the fold axis (−1 = no group)."""
    group_of = np.full(n, -1, dtype=np.int64)
    for g, idx in enumerate(groups):
        group_of[np.asarray(idx, dtype=np.intp)] = g
    return group_of


def fold_group_stats(
    var: Variable,
    dim: int,
    group_of: np.ndarray,
    n_groups: int,
    op: str = "group",
) -> Dict[str, np.ndarray]:
    """Per-group sum / count / min / max along *dim* in one pass.

    Rows of each group are accumulated in ascending storage order, so
    the sums match ``np.ma.mean``'s internal ``add.reduce`` over the
    gathered group bitwise (and min/max are order-independent).
    """
    acct = SlabAccounting(op)
    sums = counts = mins = maxs = None
    for start, stop, block in iter_blocks(var, dim, op=op):
        if sums is None:
            spatial = block.shape[1:]
            sums = np.zeros((n_groups,) + spatial, dtype=np.float64)
            counts = np.zeros((n_groups,) + spatial, dtype=np.float64)
            mins = np.full((n_groups,) + spatial, np.inf, dtype=np.float64)
            maxs = np.full((n_groups,) + spatial, -np.inf, dtype=np.float64)
        valid = ~np.ma.getmaskarray(block)
        filled = np.asarray(block.filled(0.0), dtype=np.float64)
        acct.note(block, sums, counts, mins, maxs)
        local = group_of[start:stop]
        for g in np.unique(local):
            if g < 0:
                continue
            rows = np.nonzero(local == g)[0]
            sums[g] = extend_sum(sums[g], filled[rows])
            counts[g] = extend_sum(counts[g], valid[rows].astype(np.float64))
            mins[g] = np.minimum(
                mins[g], np.where(valid[rows], filled[rows], np.inf).min(axis=0)
            )
            maxs[g] = np.maximum(
                maxs[g], np.where(valid[rows], filled[rows], -np.inf).max(axis=0)
            )
    if sums is None:
        raise CDATError(f"fold_group_stats: variable {var.id!r} has no rows")
    acct.finish()
    return {"sums": sums, "counts": counts, "mins": mins, "maxs": maxs}


def group_means(sums: np.ndarray, counts: np.ndarray) -> np.ma.MaskedArray:
    """Masked per-group means, bitwise-matching ``np.ma.mean`` per group."""
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = (sums * 1.0) / counts
    return np.ma.MaskedArray(np.where(counts > 0, mean, 0.0), mask=(counts <= 0))


def fold_group_squared_deviations(
    var: Variable,
    dim: int,
    group_of: np.ndarray,
    means: np.ndarray,
    op: str = "group_ssq",
) -> np.ndarray:
    """Σ (x − mean_g)² per group — the second pass of grouped moments."""
    n_groups = means.shape[0]
    mean0 = np.asarray(np.ma.filled(means, 0.0), dtype=np.float64)
    acct = SlabAccounting(op)
    ssq: Optional[np.ndarray] = None
    for start, stop, block in iter_blocks(var, dim, op=op):
        if ssq is None:
            ssq = np.zeros((n_groups,) + block.shape[1:], dtype=np.float64)
        valid = ~np.ma.getmaskarray(block)
        filled = np.asarray(block.filled(0.0), dtype=np.float64)
        acct.note(block, ssq)
        local = group_of[start:stop]
        for g in np.unique(local):
            if g < 0:
                continue
            rows = np.nonzero(local == g)[0]
            d = np.where(valid[rows], filled[rows] - mean0[g], 0.0)
            ssq[g] = extend_sum(ssq[g], d * d)
    if ssq is None:
        raise CDATError(f"fold_group_squared_deviations: no rows in {var.id!r}")
    acct.finish()
    return ssq


# -- weighted sums along the fold axis (axis averages) ----------------------


def fold_weighted_sums(
    var: Variable, dim: int, weights: np.ndarray, op: str = "weighted_mean"
) -> Tuple[np.ndarray, np.ndarray]:
    """``(Σ valid·filled·w, Σ valid·w)`` along *dim*, in storage order."""
    weights = np.asarray(weights, dtype=np.float64)
    acct = SlabAccounting(op)
    num = wsum = None
    for start, stop, block in iter_blocks(var, dim, op=op):
        if num is None:
            num = np.zeros(block.shape[1:], dtype=np.float64)
            wsum = np.zeros(block.shape[1:], dtype=np.float64)
        valid = ~np.ma.getmaskarray(block)
        w = np.broadcast_to(
            weights[start:stop].reshape((-1,) + (1,) * (block.ndim - 1)),
            block.shape,
        )
        acct.note(block, num, wsum)
        wsum = extend_sum(wsum, np.where(valid, w, 0.0))
        num = extend_sum(
            num, np.where(valid, np.asarray(block.filled(0.0)) * w, 0.0)
        )
    if num is None:
        raise CDATError(f"fold_weighted_sums: variable {var.id!r} has no rows")
    acct.finish()
    return num, wsum


# -- two-pass moments along the fold axis (variance / standardize) ----------


def fold_moments(
    var: Variable, dim: int, op: str = "moments"
) -> Tuple[np.ndarray, np.ma.MaskedArray, np.ma.MaskedArray]:
    """Two-pass ``(count, mean, variance)`` along *dim*.

    Matches ``np.ma.mean`` / ``np.ma.var`` (ddof 0) bitwise: pass one
    accumulates sums and counts; pass two accumulates squared
    deviations from the pass-one mean.
    """
    acct = SlabAccounting(op)
    sums = counts = None
    for _start, _stop, block in iter_blocks(var, dim, op=op + ".mean"):
        if sums is None:
            sums = np.zeros(block.shape[1:], dtype=np.float64)
            counts = np.zeros(block.shape[1:], dtype=np.float64)
        valid = ~np.ma.getmaskarray(block)
        acct.note(block, sums, counts)
        sums = extend_sum(sums, np.asarray(block.filled(0.0), dtype=np.float64))
        counts = extend_sum(counts, valid.astype(np.float64))
    if sums is None:
        raise CDATError(f"fold_moments: variable {var.id!r} has no rows")
    mean = group_means(sums, counts)
    mean0 = np.asarray(mean.filled(0.0))

    ssq = np.zeros_like(sums)
    for _start, _stop, block in iter_blocks(var, dim, op=op + ".ssq"):
        valid = ~np.ma.getmaskarray(block)
        filled = np.asarray(block.filled(0.0), dtype=np.float64)
        acct.note(block, ssq)
        d = np.where(valid, filled - mean0, 0.0)
        ssq = extend_sum(ssq, d * d)
    with np.errstate(invalid="ignore", divide="ignore"):
        var_values = ssq / counts
    variance = np.ma.MaskedArray(
        np.where(counts > 0, var_values, 0.0), mask=(counts <= 0)
    )
    acct.finish()
    return counts, mean, variance


# -- least-squares trend sums ----------------------------------------------


def fold_trend_sums(
    var: Variable, dim: int, coords: np.ndarray, op: str = "trend"
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """``(n, Σt, Σy, Σt², Σty)`` along *dim* for per-point regression."""
    coords = np.asarray(coords, dtype=np.float64)
    acct = SlabAccounting(op)
    sums: Optional[List[np.ndarray]] = None
    for start, stop, block in iter_blocks(var, dim, op=op):
        valid = (~np.ma.getmaskarray(block)).astype(np.float64)
        y = np.asarray(block.filled(0.0), dtype=np.float64)
        tcol = coords[start:stop].reshape((-1,) + (1,) * (block.ndim - 1))
        if sums is None:
            sums = [np.zeros(block.shape[1:], dtype=np.float64) for _ in range(5)]
        acct.note(block, *sums)
        terms = (valid, valid * tcol, valid * y, valid * tcol * tcol, valid * tcol * y)
        sums = [extend_sum(acc, term) for acc, term in zip(sums, terms)]
    if sums is None:
        raise CDATError(f"fold_trend_sums: variable {var.id!r} has no rows")
    acct.finish()
    return tuple(sums)  # type: ignore[return-value]


# -- windowed running mean with slab-boundary carry ------------------------


def fold_running_mean(
    var: Variable, dim: int, window: int, op: str = "running_mean"
) -> np.ma.MaskedArray:
    """Centred running mean along *dim* (window odd, edges masked).

    The cumulative sums are continued across slab boundaries from a
    carried last row, reproducing the whole-axis ``np.cumsum``
    formulation bitwise; only ``window + 1`` cumulative rows are live
    at any time.  The result has *dim* at axis 0.
    """
    n = var.shape[dim]
    half = window // 2
    acct = SlabAccounting(op)
    out_data = out_mask = None
    carry_s = carry_v = None
    live: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    for start, _stop, block in iter_blocks(var, dim, op=op):
        valid = (~np.ma.getmaskarray(block)).astype(np.float64)
        filled = np.asarray(block.filled(0.0), dtype=np.float64)
        if out_data is None:
            spatial = block.shape[1:]
            out_data = np.zeros((n,) + spatial, dtype=np.float64)
            out_mask = np.ones((n,) + spatial, dtype=bool)
            carry_s = np.zeros(spatial, dtype=np.float64)
            carry_v = np.zeros(spatial, dtype=np.float64)
            live[0] = (carry_s, carry_v)
        local_s = np.cumsum(np.concatenate([carry_s[None], filled], axis=0), axis=0)
        local_v = np.cumsum(np.concatenate([carry_v[None], valid], axis=0), axis=0)
        acct.note(block, local_s, local_v)
        for j in range(1, local_s.shape[0]):
            hi = start + j  # cumulative-sum index: covers the first `hi` rows
            live[hi] = (local_s[j], local_v[j])
            lo = hi - window
            if lo < 0:
                continue
            s_lo, v_lo = live.pop(lo)
            core_valid = local_v[j] - v_lo
            with np.errstate(invalid="ignore", divide="ignore"):
                core = (local_s[j] - s_lo) / core_valid
            out_data[half + lo] = np.where(core_valid > 0, core, 0.0)
            out_mask[half + lo] = core_valid <= 0
        carry_s, carry_v = local_s[-1], local_v[-1]
    if out_data is None:
        raise CDATError(f"fold_running_mean: variable {var.id!r} has no rows")
    acct.finish()
    return np.ma.MaskedArray(out_data, mask=out_mask)


# -- weighted scalar statistics (pattern covariance and friends) ------------


class ScalarStats:
    """Weighted scalar moments over jointly valid (conditioned) points.

    The canonical kernel behind ``covariance`` / ``correlation`` /
    ``rms_difference`` / ``compare_where``: per-row term sums (each row
    is a whole row, so its internal pairwise sum is partition-
    independent) folded sequentially into Python floats, with weight
    normalisation applied once at the end.  Eager and streamed inputs
    therefore produce identical bits; versus the former whole-array
    formulation the values may drift by ~1 ulp.

    Weights are the area weights of *a*'s grid when present, else ones;
    points where any participating variable is masked — or where
    *condition* is falsy or masked — carry zero weight.
    """

    def __init__(
        self,
        a: Variable,
        b: Optional[Variable] = None,
        condition: Optional[Variable] = None,
        op: str = "scalar_stats",
    ) -> None:
        self.a, self.b, self.condition = a, b, condition
        self.op = op
        present = [v for v in (a, b, condition) if v is not None]
        driver = max(present, key=lambda v: v.slab_count())
        self.dim = slab_axis(driver)
        self._weights_full = self._build_weights(a)
        self._second: Optional[Tuple[float, float, float]] = None

        acct = SlabAccounting(op)
        wtot = count = swa = swb = sdd = sdiff = 0.0
        pos = 0
        for slabs in iter_aligned_slabs(*present):
            blocks = [np.moveaxis(s.data, self.dim, 0) for s in slabs]
            k = blocks[0].shape[0]
            wblock = self._weight_block(pos, pos + k, blocks[0].ndim)
            fa = np.asarray(blocks[0].filled(0.0), dtype=np.float64)
            va = ~np.ma.getmaskarray(blocks[0])
            fb = vb = None
            idx = 1
            if b is not None:
                fb = np.asarray(blocks[idx].filled(0.0), dtype=np.float64)
                vb = ~np.ma.getmaskarray(blocks[idx])
                idx += 1
            truth = None
            if condition is not None:
                cblock = blocks[idx]
                truth = np.asarray(cblock.filled(0.0)) != 0.0
                truth &= ~np.ma.getmaskarray(cblock)
            acct.note(*blocks)
            for j in range(k):
                valid = va[j]
                if vb is not None:
                    valid = valid & vb[j]
                if truth is not None:
                    valid = valid & truth[j]
                w = np.where(valid, wblock[j], 0.0)
                wtot += float(w.sum())
                count += float(valid.sum())
                swa += float((w * fa[j]).sum())
                if fb is not None:
                    swb += float((w * fb[j]).sum())
                    diff = np.where(valid, fa[j] - fb[j], 0.0)
                    sdd += float((w * diff * diff).sum())
                    sdiff += float(diff.sum())
            pos += k
        acct.finish()
        if wtot <= 0:
            raise CDATError("no jointly valid data points")
        self.wtot = wtot
        self.count = count
        self.mean_a = swa / wtot
        self.mean_b = swb / wtot if b is not None else self.mean_a
        self._sdd = sdd
        self._sdiff = sdiff

    # -- weights -----------------------------------------------------------

    @staticmethod
    def _build_weights(a: Variable) -> Optional[np.ndarray]:
        grid = a.get_grid()
        if grid is None:
            return None
        w2 = grid.area_weights()
        shape = [1] * a.ndim
        shape[a.axis_index("latitude")] = a.shape[a.axis_index("latitude")]
        shape[a.axis_index("longitude")] = a.shape[a.axis_index("longitude")]
        return np.broadcast_to(w2.reshape(shape), a.shape)

    def _weight_block(self, start: int, stop: int, ndim: int) -> np.ndarray:
        if self._weights_full is None:
            return np.ones((stop - start,) + (1,) * (ndim - 1))
        return np.moveaxis(self._weights_full, self.dim, 0)[start:stop]

    # -- second pass (centered products) ------------------------------------

    def _second_moments(self) -> Tuple[float, float, float]:
        if self._second is not None:
            return self._second
        a, b, condition = self.a, self.b, self.condition
        present = [v for v in (a, b, condition) if v is not None]
        acct = SlabAccounting(self.op + ".centered")
        saa = sbb = sab = 0.0
        ma, mb = self.mean_a, self.mean_b
        pos = 0
        for slabs in iter_aligned_slabs(*present):
            blocks = [np.moveaxis(s.data, self.dim, 0) for s in slabs]
            k = blocks[0].shape[0]
            wblock = self._weight_block(pos, pos + k, blocks[0].ndim)
            fa = np.asarray(blocks[0].filled(0.0), dtype=np.float64)
            va = ~np.ma.getmaskarray(blocks[0])
            fb = vb = None
            idx = 1
            if b is not None:
                fb = np.asarray(blocks[idx].filled(0.0), dtype=np.float64)
                vb = ~np.ma.getmaskarray(blocks[idx])
                idx += 1
            truth = None
            if condition is not None:
                cblock = blocks[idx]
                truth = np.asarray(cblock.filled(0.0)) != 0.0
                truth &= ~np.ma.getmaskarray(cblock)
            acct.note(*blocks)
            for j in range(k):
                valid = va[j]
                if vb is not None:
                    valid = valid & vb[j]
                if truth is not None:
                    valid = valid & truth[j]
                w = np.where(valid, wblock[j], 0.0)
                da = fa[j] - ma
                saa += float((w * da * da).sum())
                if fb is not None:
                    db = fb[j] - mb
                    sbb += float((w * db * db).sum())
                    sab += float((w * da * db).sum())
            pos += k
        acct.finish()
        if b is None:
            sbb = sab = saa
        self._second = (saa, sbb, sab)
        return self._second

    # -- derived statistics --------------------------------------------------

    def variance_a(self) -> float:
        return self._second_moments()[0] / self.wtot

    def variance_b(self) -> float:
        return self._second_moments()[1] / self.wtot

    def covariance(self) -> float:
        return self._second_moments()[2] / self.wtot

    def rms_difference(self) -> float:
        if self.b is None:
            raise CDATError("rms_difference needs two variables")
        return float(np.sqrt(self._sdd / self.wtot))

    def mean_difference(self) -> float:
        if self.b is None:
            raise CDATError("mean_difference needs two variables")
        return self._sdiff / self.count
