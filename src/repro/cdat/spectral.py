"""Spectral analysis for wave-structure studies.

The Hovmöller plots in Fig. 4 are the visual tool for spotting
propagating waves; the quantitative companions implemented here are the
zonal wavenumber spectrum and a space-time (wavenumber–frequency) power
decomposition that separates eastward- from westward-propagating power
— the analysis used to verify the Fig. 4 benchmark's synthetic waves
propagate at the speed they were generated with.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def zonal_power_spectrum(var: Variable) -> Variable:
    """Power per integer zonal wavenumber, averaged over all other dims.

    Requires a longitude axis covering the full circle.  Output is a
    1-D variable on a ``wavenumber`` axis (0..nlon//2).
    """
    lon_dim = var.axis_index("longitude")
    data = np.moveaxis(var.filled(0.0), lon_dim, -1)
    nlon = data.shape[-1]
    spectrum = np.fft.rfft(data, axis=-1) / nlon
    power = np.abs(spectrum) ** 2
    # one-sided spectrum: double the power of non-Nyquist positive wavenumbers
    if nlon % 2 == 0:
        power[..., 1:-1] *= 2.0
    else:
        power[..., 1:] *= 2.0
    mean_power = power.reshape(-1, power.shape[-1]).mean(axis=0)
    wn_axis = Axis("wavenumber", np.arange(mean_power.size, dtype=np.float64), units="1")
    return Variable(mean_power, (wn_axis,), id=f"zspec({var.id})",
                    attributes={"units": f"({var.units})^2"})


def space_time_power(var: Variable) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Wavenumber–frequency power of a (time, longitude) field.

    Returns ``(power, wavenumbers, frequencies)`` where ``power`` is
    shaped ``(n_freq, n_wavenumber)``; positive frequencies with
    positive wavenumbers correspond to **eastward**-propagating signals
    under the convention exp(i(kx - ωt)).

    Input must be exactly 2-D ordered (time, longitude); reorder first.
    """
    if var.ndim != 2:
        raise CDATError(f"space_time_power requires 2-D (time, longitude), got {var.ndim}-D")
    t_dim = var.axis_index("time")
    x_dim = var.axis_index("longitude")
    if (t_dim, x_dim) != (0, 1):
        var = var.reorder(["time", "longitude"])
    data = var.filled(0.0)
    nt, nx = data.shape
    # remove the time mean at each longitude to drop the DC ridge
    data = data - data.mean(axis=0, keepdims=True)
    coeff = np.fft.fft2(data) / (nt * nx)
    power = np.abs(coeff) ** 2
    freqs = np.fft.fftfreq(nt)  # cycles per time step
    wavenumbers = np.fft.fftfreq(nx) * nx  # integer zonal wavenumbers
    return power, wavenumbers, freqs


def dominant_wave(var: Variable) -> Dict[str, float]:
    """Identify the dominant propagating wave in a (time, longitude) field.

    Returns wavenumber, frequency (cycles/step), direction (+1 east,
    -1 west) and phase speed in degrees longitude per time step.
    """
    power, wavenumbers, freqs = space_time_power(var)
    # fold: a wave exp(i(kx - wt)) appears at (freq=-f, wn=k) in fft2 of
    # exp(i(kx + wt'))... use magnitude over the half-plane wn > 0.
    mask = (wavenumbers[None, :] != 0) & (freqs[:, None] != 0)
    masked_power = np.where(mask, power, 0.0)
    it, ik = np.unravel_index(int(np.argmax(masked_power)), power.shape)
    k = float(wavenumbers[ik])
    f = float(freqs[it])
    # fft2 pairs conjugates at (-f, -k); normalise to k > 0
    if k < 0:
        k, f = -k, -f
    # field cos(k·x_rad - w·t): positive f ↔ eastward. In fft2 index terms
    # the component exp(i(k x + f t)) with f<0 matches kx - |f|t → eastward.
    direction = 1.0 if f < 0 else -1.0
    nx = var.shape[var.axis_index("longitude")]
    lon = var.axes[var.axis_index("longitude")].values
    domain_deg = abs(float(lon[-1] - lon[0])) * nx / max(nx - 1, 1)
    phase_speed = direction * abs(f) * domain_deg / max(k, 1e-12)
    return {
        "wavenumber": k,
        "frequency": abs(f),
        "direction": direction,
        "phase_speed_deg_per_step": phase_speed,
    }
