"""Vertical (level-axis) operations.

DV3D's 3-D plots put pressure level (or height) on the vertical axis;
the companion analysis operations reduce or resample that axis:
mass-weighted vertical means, interpolation to a single level (the 2-D
map a slicer shows), and vertical integrals.
"""

from __future__ import annotations

import numpy as np

from repro.cdms.slabs import is_streamed, map_slabs, materialize, slab_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def _level_dim(var: Variable) -> int:
    for i, axis in enumerate(var.axes):
        if axis.designation() == "level":
            return i
    raise CDATError(f"variable {var.id!r} has no level axis")


def _per_slab(var: Variable, dim: int, fn, op: str):
    """Run a level-axis reduction per slab (level reductions are
    independent per time step, so per-slab + concat is byte-identical)."""
    if is_streamed(var) and slab_axis(var) == dim:
        var = materialize(var, op=op)
    if var.slab_count() > 1:
        return map_slabs(fn, var)
    return fn(var)


def pressure_weighted_mean(var: Variable) -> Variable:
    """Mass-weighted mean over the level axis (weights ∝ layer thickness).

    For a pressure axis the layer-thickness weights are proportional to
    |Δp|, i.e. to the mass of each layer.
    """
    dim = _level_dim(var)
    return _per_slab(var, dim, _pressure_weighted_mean_eager, "pressure_weighted_mean")


def _pressure_weighted_mean_eager(var: Variable) -> Variable:
    dim = _level_dim(var)
    weights = var.get_axis(dim).cell_widths()
    weights = weights / weights.sum()
    data = np.moveaxis(var.data, dim, 0)
    valid = (~np.ma.getmaskarray(data)).astype(np.float64)
    w = weights.reshape((-1,) + (1,) * (data.ndim - 1))
    wsum = (valid * w).sum(axis=0)
    num = (np.asarray(data.filled(0.0)) * valid * w).sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = num / wsum
    result = np.ma.MaskedArray(np.where(wsum > 0, mean, 0.0), mask=(wsum <= 0))
    axes = tuple(a for i, a in enumerate(var.axes) if i != dim)
    if not axes:
        raise CDATError("pressure_weighted_mean over the only axis; need ≥2 dims")
    return Variable(result, axes, id=f"pwm({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))


def interpolate_to_level(var: Variable, level: float = 500.0) -> Variable:
    """Linearly interpolate to one vertical coordinate value.

    The level axis is consumed; the result has one fewer dimension.
    Requesting a level outside the axis range raises.
    """
    dim = _level_dim(var)
    return _per_slab(
        var, dim, lambda s: _interpolate_to_level_eager(s, level), "interpolate_to_level"
    )


def _interpolate_to_level_eager(var: Variable, level: float) -> Variable:
    dim = _level_dim(var)
    axis = var.get_axis(dim)
    values = axis.values
    lo, hi = float(values.min()), float(values.max())
    if not lo <= level <= hi:
        raise CDATError(f"level {level} outside axis range [{lo}, {hi}]")
    data = np.moveaxis(var.filled(np.nan), dim, 0)
    # locate bracketing indices in (possibly decreasing) coordinates
    order = np.argsort(values)
    sorted_vals = values[order]
    j = int(np.searchsorted(sorted_vals, level, side="left"))
    j = min(max(j, 1), len(sorted_vals) - 1)
    i0, i1 = int(order[j - 1]), int(order[j])
    v0, v1 = float(values[i0]), float(values[i1])
    frac = 0.0 if v1 == v0 else (level - v0) / (v1 - v0)
    plane = data[i0] * (1.0 - frac) + data[i1] * frac
    result = np.ma.masked_invalid(plane)
    axes = tuple(a for i, a in enumerate(var.axes) if i != dim)
    if not axes:
        raise CDATError("interpolate_to_level over the only axis; need ≥2 dims")
    return Variable(result, axes, id=f"{var.id}@{level:g}",
                    missing_value=var.missing_value, attributes=dict(var.attributes))


def vertical_integral(var: Variable) -> Variable:
    """Trapezoid-free integral Σ value·|Δlevel| over the level axis.

    Units become ``<data units> * <level units>`` conceptually; the
    attribute is annotated rather than parsed.
    """
    dim = _level_dim(var)
    return _per_slab(var, dim, _vertical_integral_eager, "vertical_integral")


def _vertical_integral_eager(var: Variable) -> Variable:
    dim = _level_dim(var)
    thickness = var.get_axis(dim).cell_widths()
    data = np.moveaxis(var.data, dim, 0)
    w = thickness.reshape((-1,) + (1,) * (data.ndim - 1))
    valid = ~np.ma.getmaskarray(data)
    total = (np.asarray(data.filled(0.0)) * valid * w).sum(axis=0)
    any_valid = valid.any(axis=0)
    result = np.ma.MaskedArray(total, mask=~any_valid)
    axes = tuple(a for i, a in enumerate(var.axes) if i != dim)
    if not axes:
        raise CDATError("vertical_integral over the only axis; need ≥2 dims")
    attrs = dict(var.attributes)
    attrs["integrated_over"] = var.get_axis(dim).id
    return Variable(result, axes, id=f"vint({var.id})",
                    missing_value=var.missing_value, attributes=attrs)
