"""Elementwise arithmetic over variables ("simple arithmetic operations").

These are thin, metadata-preserving wrappers over the masked-array
operators on :class:`~repro.cdms.variable.Variable`.  They exist as
named functions so the operation registry, the calculator interface and
workflow modules can reference them uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.cdms.variable import Variable, as_variable


def add(a: Variable, b: Variable) -> Variable:
    """Elementwise sum of two variables (axes must match in shape)."""
    return a + b


def subtract(a: Variable, b: Variable) -> Variable:
    """Elementwise difference ``a - b``."""
    return a - b


def multiply(a: Variable, b: Variable) -> Variable:
    """Elementwise product."""
    return a * b


def divide(a: Variable, b: Variable) -> Variable:
    """Elementwise quotient; division by zero yields masked values."""
    return a / b


def power(a: Variable, exponent: float = 2.0) -> Variable:
    """Raise a variable to a scalar power."""
    return a ** exponent


def sqrt(a: Variable) -> Variable:
    """Elementwise square root; negative inputs become masked."""
    data = np.ma.sqrt(a.data)
    return as_variable(data, a, id=f"sqrt({a.id})")


def log(a: Variable) -> Variable:
    """Elementwise natural logarithm; non-positive inputs become masked."""
    data = np.ma.log(np.ma.masked_less_equal(a.data, 0.0))
    return as_variable(data, a, id=f"log({a.id})")


def exp(a: Variable) -> Variable:
    """Elementwise exponential."""
    return as_variable(np.ma.exp(a.data), a, id=f"exp({a.id})")


def absolute(a: Variable) -> Variable:
    """Elementwise absolute value."""
    return abs(a)


def scale(a: Variable, factor: float = 1.0) -> Variable:
    """Multiply by a scalar *factor* (e.g. unit conversion)."""
    return a * factor


def offset(a: Variable, amount: float = 0.0) -> Variable:
    """Add a scalar *amount* (e.g. Kelvin↔Celsius shifts)."""
    return a + amount
