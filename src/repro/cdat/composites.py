"""Composite analysis: condition a field on the phases of an index.

The standard exploratory question — "what does the field look like when
the index is high vs low?" — implemented as conditional time means with
a Welch t-statistic marking where the difference is distinguishable
from noise.  This pairs naturally with the DV3D comparison plots (view
the composite difference with a slicer, mask it by significance with a
conditioned comparison).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.cdms.variable import Variable
from repro.util.errors import CDATError


@dataclass
class CompositeResult:
    """High/low composites, their difference, and significance."""

    high: Variable
    low: Variable
    difference: Variable
    t_statistic: Variable
    p_value: Variable
    n_high: int
    n_low: int

    def significant_difference(self, alpha: float = 0.05) -> Variable:
        """The difference masked where p ≥ alpha."""
        from repro.cdat.conditioned import mask_where

        insignificant = Variable(
            (np.asarray(self.p_value.data.filled(1.0)) >= alpha).astype(np.float64),
            self.p_value.axes, id="insig",
        )
        return mask_where(self.difference, insignificant)


def composite_analysis(
    field: Variable,
    index: Variable,
    high_quantile: float = 0.75,
    low_quantile: float = 0.25,
) -> CompositeResult:
    """Composite *field* over high/low phases of a 1-D time *index*.

    Parameters
    ----------
    field:
        Any variable with a time axis.
    index:
        A 1-D time series on the same time axis (e.g. a principal
        component from :func:`repro.cdat.eof.eof_analysis`).
    high_quantile, low_quantile:
        Phase thresholds on the index distribution.
    """
    field_time = field.get_time()
    index_time = index.get_time()
    if field_time is None or index_time is None:
        raise CDATError("composite_analysis: both inputs need time axes")
    if index.ndim != 1:
        index = index.squeeze()
        if index.ndim != 1:
            raise CDATError("index must be (or squeeze to) a 1-D time series")
    if len(index_time) != len(field_time):
        raise CDATError(
            f"time length mismatch: field {len(field_time)} vs index {len(index_time)}"
        )
    if not 0.0 < low_quantile < high_quantile < 1.0:
        raise CDATError("need 0 < low_quantile < high_quantile < 1")

    series = np.asarray(index.data.filled(np.nan))
    finite = np.isfinite(series)
    if finite.sum() < 4:
        raise CDATError("index has too few valid time steps")
    hi_threshold = np.nanquantile(series, high_quantile)
    lo_threshold = np.nanquantile(series, low_quantile)
    high_steps = np.nonzero(finite & (series >= hi_threshold))[0]
    low_steps = np.nonzero(finite & (series <= lo_threshold))[0]
    if high_steps.size < 2 or low_steps.size < 2:
        raise CDATError("too few events in a composite phase (need >= 2 each)")

    t_dim = field.axis_index("time")
    data = np.moveaxis(field.data, t_dim, 0)
    spatial_axes = tuple(a for i, a in enumerate(field.axes) if i != t_dim)

    high_sample = data[high_steps]
    low_sample = data[low_steps]
    high_mean = np.ma.mean(high_sample, axis=0)
    low_mean = np.ma.mean(low_sample, axis=0)
    difference = high_mean - low_mean

    with np.errstate(all="ignore"):
        t_stat, p_val = stats.ttest_ind(
            np.asarray(high_sample.filled(np.nan)),
            np.asarray(low_sample.filled(np.nan)),
            axis=0, equal_var=False, nan_policy="omit",
        )
    t_ma = np.ma.masked_invalid(t_stat)
    p_ma = np.ma.masked_invalid(p_val)

    def wrap(arr, name, units=field.units) -> Variable:
        return Variable(
            np.ma.asarray(arr), spatial_axes, id=f"{name}({field.id})",
            missing_value=field.missing_value, attributes={"units": units},
        )

    return CompositeResult(
        high=wrap(high_mean, "composite_high"),
        low=wrap(low_mean, "composite_low"),
        difference=wrap(difference, "composite_diff"),
        t_statistic=wrap(t_ma, "t", units="1"),
        p_value=wrap(p_ma, "p", units="1"),
        n_high=int(high_steps.size),
        n_low=int(low_steps.size),
    )
