"""Composite analysis: condition a field on the phases of an index.

The standard exploratory question — "what does the field look like when
the index is high vs low?" — implemented as conditional time means with
a Welch t-statistic marking where the difference is distinguishable
from noise.  This pairs naturally with the DV3D comparison plots (view
the composite difference with a slicer, mask it by significance with a
conditioned comparison).

The field never has to fit in memory: phase membership is decided from
the (tiny, 1-D) index series, the per-phase means accumulate through
the group-by kernel, and the Welch statistic is computed from streamed
sufficient statistics (per-point n, mean and variance of each phase)
rather than from gathered samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.cdat.slabkernels import (
    fold_group_squared_deviations,
    fold_group_stats,
    group_means,
)
from repro.cdms.slabs import materialize
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


@dataclass
class CompositeResult:
    """High/low composites, their difference, and significance."""

    high: Variable
    low: Variable
    difference: Variable
    t_statistic: Variable
    p_value: Variable
    n_high: int
    n_low: int

    def significant_difference(self, alpha: float = 0.05) -> Variable:
        """The difference masked where p ≥ alpha."""
        from repro.cdat.conditioned import mask_where

        insignificant = Variable(
            (np.asarray(self.p_value.data.filled(1.0)) >= alpha).astype(np.float64),
            self.p_value.axes, id="insig",
        )
        return mask_where(self.difference, insignificant)


def _welch_from_moments(
    m0: np.ma.MaskedArray, m1: np.ma.MaskedArray,
    v0: np.ndarray, v1: np.ndarray,
    n0: np.ndarray, n1: np.ndarray,
):
    """Welch t and two-sided p from per-phase sufficient statistics."""
    with np.errstate(all="ignore"):
        se0 = v0 / n0
        se1 = v1 / n1
        se2 = se0 + se1
        t_stat = (np.ma.filled(m0, np.nan) - np.ma.filled(m1, np.nan)) / np.sqrt(se2)
        df = se2 * se2 / (se0 * se0 / (n0 - 1.0) + se1 * se1 / (n1 - 1.0))
        bad = (n0 < 2) | (n1 < 2) | ~np.isfinite(t_stat) | ~np.isfinite(df)
        t_stat = np.where(bad, np.nan, t_stat)
        df = np.where(bad, 1.0, df)
        p_val = 2.0 * stats.t.sf(np.abs(t_stat), df)
        p_val = np.where(bad, np.nan, p_val)
    return np.ma.masked_invalid(t_stat), np.ma.masked_invalid(p_val)


def composite_analysis(
    field: Variable,
    index: Variable,
    high_quantile: float = 0.75,
    low_quantile: float = 0.25,
) -> CompositeResult:
    """Composite *field* over high/low phases of a 1-D time *index*.

    Parameters
    ----------
    field:
        Any variable with a time axis.
    index:
        A 1-D time series on the same time axis (e.g. a principal
        component from :func:`repro.cdat.eof.eof_analysis`).
    high_quantile, low_quantile:
        Phase thresholds on the index distribution.
    """
    field_time = field.get_time()
    index_time = index.get_time()
    if field_time is None or index_time is None:
        raise CDATError("composite_analysis: both inputs need time axes")
    index = materialize(index, op="composite_index")  # 1-D: always tiny
    if index.ndim != 1:
        index = index.squeeze()
        if index.ndim != 1:
            raise CDATError("index must be (or squeeze to) a 1-D time series")
    if len(index_time) != len(field_time):
        raise CDATError(
            f"time length mismatch: field {len(field_time)} vs index {len(index_time)}"
        )
    if not 0.0 < low_quantile < high_quantile < 1.0:
        raise CDATError("need 0 < low_quantile < high_quantile < 1")

    series = np.asarray(index.data.filled(np.nan))
    finite = np.isfinite(series)
    if finite.sum() < 4:
        raise CDATError("index has too few valid time steps")
    hi_threshold = np.nanquantile(series, high_quantile)
    lo_threshold = np.nanquantile(series, low_quantile)
    high_steps = np.nonzero(finite & (series >= hi_threshold))[0]
    low_steps = np.nonzero(finite & (series <= lo_threshold))[0]
    if high_steps.size < 2 or low_steps.size < 2:
        raise CDATError("too few events in a composite phase (need >= 2 each)")

    t_dim = field.axis_index("time")
    spatial_axes = tuple(a for i, a in enumerate(field.axes) if i != t_dim)

    # phase membership along time → two streamed accumulator passes
    group_of = np.full(field.shape[t_dim], -1, dtype=np.int64)
    group_of[high_steps] = 0
    group_of[low_steps] = 1
    phase_stats = fold_group_stats(field, t_dim, group_of, 2, op="composite")
    means = group_means(phase_stats["sums"], phase_stats["counts"])
    high_mean = means[0]
    low_mean = means[1]
    difference = high_mean - low_mean

    ssq = fold_group_squared_deviations(
        field, t_dim, group_of, means, op="composite.ssq"
    )
    counts = phase_stats["counts"]
    with np.errstate(all="ignore"):
        v0 = ssq[0] / (counts[0] - 1.0)  # ddof=1 per-phase variance
        v1 = ssq[1] / (counts[1] - 1.0)
    t_ma, p_ma = _welch_from_moments(
        high_mean, low_mean, v0, v1, counts[0], counts[1]
    )

    def wrap(arr, name, units=field.units) -> Variable:
        return Variable(
            np.ma.asarray(arr), spatial_axes, id=f"{name}({field.id})",
            missing_value=field.missing_value, attributes={"units": units},
        )

    return CompositeResult(
        high=wrap(high_mean, "composite_high"),
        low=wrap(low_mean, "composite_low"),
        difference=wrap(difference, "composite_diff"),
        t_statistic=wrap(t_ma, "t", units="1"),
        p_value=wrap(p_ma, "p", units="1"),
        n_high=int(high_steps.size),
        n_low=int(low_steps.size),
    )
