"""EOF (Empirical Orthogonal Function) analysis.

The classic "various statistical operations" workhorse for climate
fields: decompose a (time, ...space) anomaly field into orthogonal
spatial patterns (EOFs) and their time series (principal components),
ranked by explained variance.  Implemented as an area-weighted SVD —
per the session performance guides, the thin SVD
(``full_matrices=False``) is used, which is dramatically cheaper when
``n_time ≪ n_space``.

Sign convention: each EOF is normalized so its largest-magnitude
loading is positive (signs of EOF/PC pairs are otherwise arbitrary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


@dataclass
class EOFResult:
    """The decomposition: patterns, time series, variance fractions."""

    eofs: List[Variable]  # spatial patterns, one per mode
    pcs: Variable  # (mode, time) principal components
    variance_fraction: np.ndarray  # (n_modes,)

    @property
    def n_modes(self) -> int:
        return len(self.eofs)

    def reconstruct(self, n_modes: Optional[int] = None) -> np.ndarray:
        """Rebuild the anomaly field from the leading *n_modes*.

        Returns a plain (time, ...space) array in the analysis's
        weighted space undone — used by tests to verify completeness.
        """
        n = self.n_modes if n_modes is None else min(n_modes, self.n_modes)
        pcs = np.asarray(self.pcs.data)[:n]  # (n, time)
        spatial_shape = self.eofs[0].shape
        patterns = np.stack([e.filled(0.0).reshape(-1) for e in self.eofs[:n]])
        recon = pcs.T @ patterns  # (time, space)
        return recon.reshape((pcs.shape[1],) + spatial_shape)


def eof_analysis(
    variable: Variable,
    n_modes: int = 3,
    weighted: bool = True,
    center: bool = True,
) -> EOFResult:
    """Area-weighted EOF decomposition of a variable with a time axis.

    Parameters
    ----------
    variable:
        Must have a time axis; all other axes are flattened into the
        spatial dimension.  Masked points are excluded from the
        analysis and masked in the returned patterns.
    n_modes:
        Number of leading modes to return (capped by the data rank).
    weighted:
        Weight each grid point by sqrt(area weight) so variance is
        area-true (the standard climate-EOF convention).
    center:
        Remove the time mean first (set False if the input is already
        an anomaly field).
    """
    time_axis = variable.get_time()
    if time_axis is None:
        raise CDATError(f"variable {variable.id!r} has no time axis for EOF analysis")
    if n_modes < 1:
        raise CDATError("n_modes must be >= 1")
    t_dim = variable.axis_index("time")
    data = np.moveaxis(variable.data, t_dim, 0)
    n_time = data.shape[0]
    spatial_shape = data.shape[1:]
    spatial_axes = tuple(a for i, a in enumerate(variable.axes) if i != t_dim)
    flat = np.asarray(data.filled(np.nan)).reshape(n_time, -1)

    # columns valid at every time step participate
    valid = np.isfinite(flat).all(axis=0)
    if not valid.any():
        raise CDATError("no grid points valid at all time steps")
    matrix = flat[:, valid]
    if center:
        matrix = matrix - matrix.mean(axis=0, keepdims=True)

    if weighted:
        weights = np.ones(spatial_shape)
        grid = variable.get_grid()
        if grid is not None:
            lat_dim = [i for i, a in enumerate(spatial_axes) if a.designation() == "latitude"][0]
            lat_weights = spatial_axes[lat_dim].area_weights()
            shape = [1] * len(spatial_shape)
            shape[lat_dim] = len(lat_weights)
            weights = weights * lat_weights.reshape(shape)
        weight_flat = np.sqrt(weights.reshape(-1)[valid])
    else:
        weight_flat = np.ones(matrix.shape[1])
    matrix = matrix * weight_flat[None, :]

    # thin SVD: (time, space) → U (time, k), s (k,), Vt (k, space)
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    rank = int((s > s[0] * 1e-12).sum()) if s.size else 0
    if rank == 0:
        raise CDATError("zero-variance field; EOFs undefined")
    k = min(n_modes, rank)

    total_variance = float((s**2).sum())
    variance_fraction = (s[:k] ** 2) / total_variance

    mode_axis = Axis("mode", np.arange(1, k + 1, dtype=np.float64), units="1")
    pcs_data = (u[:, :k] * s[:k]).T  # (k, time)

    eofs: List[Variable] = []
    flip = np.ones(k)
    for m in range(k):
        pattern_flat = np.full(flat.shape[1], np.nan)
        pattern_flat[valid] = vt[m] / np.maximum(weight_flat, 1e-30)
        # sign convention: strongest loading positive
        peak = np.nanargmax(np.abs(pattern_flat))
        if pattern_flat[peak] < 0:
            pattern_flat = -pattern_flat
            flip[m] = -1.0
        pattern = np.ma.masked_invalid(pattern_flat.reshape(spatial_shape))
        eofs.append(
            Variable(
                pattern, spatial_axes, id=f"eof{m + 1}({variable.id})",
                attributes={"units": variable.units,
                            "variance_fraction": float(variance_fraction[m])},
            )
        )
    pcs_data = pcs_data * flip[:, None]
    pcs = Variable(
        pcs_data, (mode_axis, time_axis), id=f"pcs({variable.id})",
        attributes={"units": variable.units},
    )
    return EOFResult(eofs=eofs, pcs=pcs, variance_fraction=variance_fraction)
