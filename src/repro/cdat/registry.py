"""The named-operation registry.

UV-CDAT's GUI exposes "tools for executing data processing and analysis
operations on variables using either a command-line or calculator
interface" (§III.E).  Both interfaces, and the generic ``CDATOperation``
workflow module, resolve operations by name from this registry.  Each
entry records its callable, a one-line description, and its arity so the
calculator can validate expressions before execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.util.errors import CDATError


@dataclass(frozen=True)
class Operation:
    """A registered analysis operation."""

    name: str
    func: Callable
    description: str
    n_variables: int  # how many Variable positional arguments it takes
    #: True when the operation consumes streamed variables slab by slab
    #: (bounded memory) instead of materializing them; see repro.cdms.slabs
    streaming: bool = False

    def __call__(self, *args, **kwargs):
        return self.func(*args, **kwargs)


class OperationRegistry:
    """A name → :class:`Operation` mapping with introspection helpers."""

    def __init__(self) -> None:
        self._operations: Dict[str, Operation] = {}

    def register(
        self,
        name: str,
        func: Callable,
        description: str = "",
        n_variables: int = 1,
        overwrite: bool = False,
        streaming: bool = False,
    ) -> Operation:
        if name in self._operations and not overwrite:
            raise CDATError(f"operation {name!r} already registered")
        if not description:
            doc = (func.__doc__ or "").strip()
            description = doc.splitlines()[0] if doc else ""
        op = Operation(name, func, description, n_variables, streaming)
        self._operations[name] = op
        return op

    def get(self, name: str) -> Operation:
        try:
            return self._operations[name]
        except KeyError:
            raise CDATError(
                f"unknown operation {name!r}; available: {sorted(self._operations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._operations

    def names(self) -> List[str]:
        return sorted(self._operations)

    def streaming_names(self) -> List[str]:
        """Names of operations that process streamed inputs slab by slab."""
        return sorted(n for n, op in self._operations.items() if op.streaming)

    def describe(self) -> Dict[str, str]:
        return {name: op.description for name, op in sorted(self._operations.items())}

    def apply(self, name: str, *args, **kwargs):
        return self.get(name)(*args, **kwargs)

    def apply_cached(self, name: str, *args, **kwargs):
        """:meth:`apply` with result memoisation in the ambient cache.

        The key hashes the operation name plus the canonical digests of
        every argument (:func:`repro.cache.keys.cache_key`).  A streamed
        variable digests identically to its eager equivalent, so eager
        and out-of-core runs of the same reduction share cache entries.
        With caching disabled — the ambient default — this is exactly
        :meth:`apply`: no digest is even computed.  Entries are stored
        and served as deep copies, immune to caller mutation (e.g. the
        band-pass filter renaming its result in place).
        """
        from repro.cache.config import get_config
        from repro.cache.store import get_cache

        op = self.get(name)
        config = get_config()
        if not config.enabled:
            return op(*args, **kwargs)
        from repro.cache.keys import cache_key

        key = cache_key("cdat.operation", name, list(args), sorted(kwargs.items()))
        cache = get_cache(config)
        hit, value = cache.get(key, site="cdat.operation")
        if hit:
            return _clone_result(value)
        result = op(*args, **kwargs)
        copy = _clone_result(result)
        if copy is not _UNCACHEABLE:
            cache.put(key, copy, site="cdat.operation")
        return result


#: sentinel for results apply_cached cannot safely copy (and so never stores)
_UNCACHEABLE = object()


def _clone_result(value):
    """A deep-enough copy of an operation result, or ``_UNCACHEABLE``.

    Variables are deep-cloned (reduction outputs are small); scalars
    pass through; tuples/dicts of the above recurse.  Anything else —
    composite results, generators — is declared uncacheable rather than
    risking aliased mutable state in the cache.
    """
    from repro.cdms.variable import Variable

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Variable):
        return value.clone(deep=True)
    if isinstance(value, tuple):
        parts = [_clone_result(v) for v in value]
        if any(p is _UNCACHEABLE for p in parts):
            return _UNCACHEABLE
        return tuple(parts)
    if isinstance(value, dict):
        parts = {k: _clone_result(v) for k, v in value.items()}
        if any(p is _UNCACHEABLE for p in parts.values()):
            return _UNCACHEABLE
        return parts
    return _UNCACHEABLE


_DEFAULT: Optional[OperationRegistry] = None


def default_registry() -> OperationRegistry:
    """The process-wide registry, populated with the full CDAT suite."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = OperationRegistry()
        _populate(_DEFAULT)
    return _DEFAULT


def register_operation(
    name: str, description: str = "", n_variables: int = 1
) -> Callable[[Callable], Callable]:
    """Decorator registering a user-defined operation in the default registry."""

    def wrap(func: Callable) -> Callable:
        default_registry().register(name, func, description, n_variables)
        return func

    return wrap


def _populate(reg: OperationRegistry) -> None:
    # imported here to avoid a circular import at package-load time
    from repro.cdat import arithmetic, averages, climatology, conditioned, statistics, vertical

    reg.register("add", arithmetic.add, "elementwise sum of two variables", 2)
    reg.register("subtract", arithmetic.subtract, "elementwise difference of two variables", 2)
    reg.register("multiply", arithmetic.multiply, "elementwise product of two variables", 2)
    reg.register("divide", arithmetic.divide, "elementwise (masked) quotient of two variables", 2)
    reg.register("power", arithmetic.power, "raise a variable to a scalar power", 1)
    reg.register("sqrt", arithmetic.sqrt, "elementwise square root (negatives masked)", 1)
    reg.register("log", arithmetic.log, "elementwise natural log (non-positives masked)", 1)
    reg.register("exp", arithmetic.exp, "elementwise exponential", 1)
    reg.register("abs", arithmetic.absolute, "elementwise absolute value", 1)
    reg.register("scale", arithmetic.scale, "multiply by a scalar factor", 1)
    reg.register("offset", arithmetic.offset, "add a scalar offset", 1)
    reg.register("area_average", averages.area_average, "area-weighted lat/lon mean", 1,
                 streaming=True)
    reg.register("zonal_mean", averages.zonal_mean, "mean over longitude", 1, streaming=True)
    reg.register("meridional_mean", averages.meridional_mean, "area-weighted mean over latitude", 1,
                 streaming=True)
    reg.register("axis_average", averages.axis_average, "weighted mean over one named axis", 1,
                 streaming=True)
    reg.register("running_mean", averages.running_mean, "centred running mean along an axis", 1,
                 streaming=True)
    reg.register("monthly_climatology", climatology.monthly_climatology, "12-month mean annual cycle", 1,
                 streaming=True)
    reg.register("seasonal_climatology", climatology.seasonal_climatology, "DJF/MAM/JJA/SON means", 1,
                 streaming=True)
    reg.register("anomalies", climatology.anomalies, "departures from the monthly climatology", 1,
                 streaming=True)
    reg.register("annual_mean", climatology.annual_mean, "per-year time means", 1, streaming=True)
    reg.register("correlation", statistics.correlation, "weighted correlation of two variables", 2,
                 streaming=True)
    reg.register("covariance", statistics.covariance, "weighted covariance of two variables", 2,
                 streaming=True)
    reg.register("rms_difference", statistics.rms_difference, "weighted RMS difference", 2,
                 streaming=True)
    reg.register("linear_trend", statistics.linear_trend, "least-squares trend along time", 1,
                 streaming=True)
    reg.register("standardize", statistics.standardize, "remove mean, divide by std along an axis", 1,
                 streaming=True)
    reg.register("variance", statistics.variance, "variance along a named axis", 1, streaming=True)
    # percentile gathers the full per-point series along the slab axis —
    # the documented exception to bounded-memory reduction
    reg.register("percentile", statistics.percentile, "percentile along a named axis", 1)
    reg.register("mask_where", conditioned.mask_where, "mask a variable where a condition holds", 2,
                 streaming=True)
    reg.register("compare_where", conditioned.compare_where, "conditioned comparison of two variables", 2,
                 streaming=True)
    reg.register("pressure_weighted_mean", vertical.pressure_weighted_mean, "mass-weighted vertical mean", 1,
                 streaming=True)
    reg.register("interpolate_to_level", vertical.interpolate_to_level,
                 "interpolate to one vertical level", 1, streaming=True)
    reg.register("vertical_integral", vertical.vertical_integral, "integral over the level axis", 1,
                 streaming=True)
    from repro.cdat import filters

    reg.register("spatial_smooth", filters.spatial_smooth, "Gaussian lat/lon smoothing", 1,
                 streaming=True)
    reg.register("detrend", filters.detrend, "remove the linear trend along an axis", 1,
                 streaming=True)
    reg.register("bandpass", filters.bandpass_running_mean, "running-mean band-pass filter", 1,
                 streaming=True)
