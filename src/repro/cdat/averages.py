"""Weighted averages ("weighted averages" in the paper's CDAT list).

All horizontal averages are **area-weighted** using the spherical cell
weights from :class:`~repro.cdms.grid.RectilinearGrid`; axis averages
use the axis's own quadrature weights.  Masked points are excluded and
the weights renormalised over the valid points, matching CDAT's
``cdutil.averager`` semantics.

Every average consumes its input through the slab protocol
(:mod:`repro.cdms.slabs`): reductions *along* the slab axis fold the
accumulator kernels of :mod:`repro.cdat.slabkernels`; reductions over
other dimensions run per slab and concatenate (each output row depends
only on its own input row).  Eager and streamed inputs take the same
code path and produce byte-identical results.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.cdat import slabkernels
from repro.cdms.slabs import is_streamed, map_slabs, materialize, slab_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def _finish_mean(
    var: Variable, drop_dims, num: np.ndarray, wsum: np.ndarray, out_id: str,
    all_masked_message: str,
) -> Union[Variable, float]:
    with np.errstate(invalid="ignore", divide="ignore"):
        mean = num / wsum
    result = np.ma.MaskedArray(np.where(wsum > 0, mean, 0.0), mask=(wsum <= 0))
    axes = tuple(a for i, a in enumerate(var.axes) if i not in drop_dims)
    if not axes:
        if result.mask:
            raise CDATError(all_masked_message)
        return float(result)
    return Variable(
        result, axes, id=out_id,
        missing_value=var.missing_value, attributes=dict(var.attributes),
    )


def _weighted_mean_along(var: Variable, dim: int, weights: np.ndarray) -> Union[Variable, float]:
    """Weighted mean along one dimension, mask-aware, axes preserved."""
    out_id = f"mean[{var.get_axis(dim).id}]({var.id})"
    if slab_axis(var) == dim:
        num, wsum = slabkernels.fold_weighted_sums(
            var, dim, weights, op=f"mean[{var.get_axis(dim).id}]"
        )
        return _finish_mean(
            var, (dim,), num, wsum, out_id,
            f"variable {var.id!r}: all data masked in average",
        )
    if var.slab_count() > 1:
        return map_slabs(
            lambda s: _weighted_mean_eager(s, dim, weights), var, id=out_id
        )
    return _weighted_mean_eager(var, dim, weights)


def _weighted_mean_eager(var: Variable, dim: int, weights: np.ndarray) -> Union[Variable, float]:
    """One-slab weighted mean over a non-slab dimension.

    Per-slab application of this is byte-identical to the whole-array
    computation: each output element's reduction spans only its own
    slab-axis row.
    """
    data = var.data
    shape = [1] * var.ndim
    shape[dim] = len(weights)
    w = weights.reshape(shape)
    valid = ~np.ma.getmaskarray(data)
    wsum = np.sum(np.where(valid, w, 0.0), axis=dim)
    num = np.sum(np.where(valid, np.asarray(data.filled(0.0)) * w, 0.0), axis=dim)
    return _finish_mean(
        var, (dim,), num, wsum, f"mean[{var.get_axis(dim).id}]({var.id})",
        f"variable {var.id!r}: all data masked in average",
    )


def axis_average(var: Variable, axis: str = "time") -> Union[Variable, float]:
    """Weighted mean over one named axis (weights from the axis bounds)."""
    dim = var.axis_index(axis)
    weights = var.get_axis(dim).area_weights()
    return _weighted_mean_along(var, dim, weights)


def zonal_mean(var: Variable) -> Union[Variable, float]:
    """Mean over longitude (uniform weights along a longitude circle)."""
    return axis_average(var, "longitude")


def meridional_mean(var: Variable) -> Union[Variable, float]:
    """Area-weighted mean over latitude."""
    return axis_average(var, "latitude")


def area_average(var: Variable) -> Union[Variable, float]:
    """Area-weighted mean over latitude *and* longitude.

    The reduction is performed jointly (not sequentially) so that masked
    cells are weighted correctly: a sequential zonal-then-meridional
    mean over a masked field would weight latitude rows equally
    regardless of how many valid cells they contain.
    """
    grid = var.get_grid()
    if grid is None:
        raise CDATError(f"variable {var.id!r} has no lat/lon grid for area averaging")
    lat_dim = var.axis_index("latitude")
    lon_dim = var.axis_index("longitude")
    if is_streamed(var) and slab_axis(var) in (lat_dim, lon_dim):
        # chunked along a reduced dimension: gather (observable) first
        var = materialize(var, op="area_average")
    if var.slab_count() > 1:
        return map_slabs(_area_average_eager, var, id=f"areaavg({var.id})")
    return _area_average_eager(var)


def _area_average_eager(var: Variable) -> Union[Variable, float]:
    grid = var.get_grid()
    lat_dim = var.axis_index("latitude")
    lon_dim = var.axis_index("longitude")
    weights2d = grid.area_weights()
    data = np.moveaxis(var.data, (lat_dim, lon_dim), (-2, -1))
    valid = ~np.ma.getmaskarray(data)
    w = np.broadcast_to(weights2d, data.shape)
    wsum = np.sum(np.where(valid, w, 0.0), axis=(-2, -1))
    num = np.sum(np.where(valid, np.asarray(data.filled(0.0)) * w, 0.0), axis=(-2, -1))
    return _finish_mean(
        var, (lat_dim, lon_dim), num, wsum, f"areaavg({var.id})",
        f"variable {var.id!r}: all data masked in area average",
    )


def running_mean(var: Variable, axis: str = "time", window: int = 3) -> Variable:
    """Centred running mean of odd *window* length along a named axis.

    Output has the same shape; the ``window // 2`` points at each end
    (where the window would run off the data) are masked.  Masked input
    points are excluded from each window's average.  Along the slab
    axis the windowed sums are carried across slab boundaries, so a
    streamed input never holds more than ``window + 1`` cumulative rows.
    """
    if window < 1 or window % 2 == 0:
        raise CDATError(f"running_mean: window must be odd and positive, got {window}")
    dim = var.axis_index(axis)
    n = var.shape[dim]
    if window > n:
        raise CDATError(f"running_mean: window {window} exceeds axis length {n}")
    out_id = f"runmean{window}({var.id})"
    if slab_axis(var) == dim:
        out = slabkernels.fold_running_mean(var, dim, window, op=f"runmean{window}")
        out = np.moveaxis(out, 0, dim)
        return Variable(
            out, var.axes, id=out_id,
            missing_value=var.missing_value, attributes=dict(var.attributes),
        )
    if var.slab_count() > 1:
        return map_slabs(
            lambda s: _running_mean_eager(s, dim, window), var, id=out_id
        )
    return _running_mean_eager(var, dim, window)


def _running_mean_eager(var: Variable, dim: int, window: int) -> Variable:
    """One-slab running mean over a non-slab dimension (cumsum form)."""
    n = var.shape[dim]
    data = np.moveaxis(var.data, dim, 0)
    valid = (~np.ma.getmaskarray(data)).astype(np.float64)
    filled = np.asarray(data.filled(0.0))
    # cumulative sums give O(n) windowed sums (vectorized, no Python loop)
    csum = np.cumsum(np.concatenate([np.zeros_like(filled[:1]), filled]), axis=0)
    cvalid = np.cumsum(np.concatenate([np.zeros_like(valid[:1]), valid]), axis=0)
    half = window // 2
    core_sum = csum[window:] - csum[:-window]
    core_valid = cvalid[window:] - cvalid[:-window]
    with np.errstate(invalid="ignore", divide="ignore"):
        core = core_sum / core_valid
    out = np.ma.masked_all(data.shape, dtype=np.float64)
    body = np.ma.MaskedArray(np.where(core_valid > 0, core, 0.0), mask=(core_valid <= 0))
    out[half : n - half] = body
    out = np.moveaxis(out, 0, dim)
    return Variable(
        out, var.axes, id=f"runmean{window}({var.id})",
        missing_value=var.missing_value, attributes=dict(var.attributes),
    )
