"""Statistical operations ("various statistical operations").

Weighted pattern statistics (correlation, covariance, RMS difference),
per-gridpoint temporal statistics (variance, trend, standardisation)
and percentiles — the workhorse comparisons a scientist runs before and
alongside the DV3D visual comparison plots (e.g. the isosurface-of-A-
colored-by-B plot pairs naturally with a pattern correlation of A and B).

The scalar pattern statistics run through the canonical row-fold kernel
(:class:`repro.cdat.slabkernels.ScalarStats`); per-point temporal
statistics fold the two-pass moment / trend-sum kernels along the slab
axis.  Either way, eager and streamed inputs share the code path and
produce byte-identical results.  Percentiles along the slab axis need
the full series per point and gather explicitly (observable as
``cdat.materialize``).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.cdat.slabkernels import (
    ScalarStats,
    fold_moments,
    fold_trend_sums,
)
from repro.cdms.slabs import is_streamed, map_slabs, materialize, slab_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def _check_same_shape(a: Variable, b: Variable, op: str) -> None:
    if a.shape != b.shape:
        raise CDATError(f"{op}: shape mismatch {a.shape} vs {b.shape}")


def covariance(a: Variable, b: Variable) -> float:
    """Weighted covariance of two same-shape variables over valid points."""
    _check_same_shape(a, b, "covariance")
    return ScalarStats(a, b, op="covariance").covariance()


def variance(a: Variable, axis: Optional[str] = None) -> Union[Variable, float]:
    """Variance: scalar (weighted, all data) or along one named axis."""
    if axis is None:
        return ScalarStats(a, op="variance").variance_a()
    dim = a.axis_index(axis)
    out_id = f"var({a.id})"
    axes = tuple(ax for i, ax in enumerate(a.axes) if i != dim)
    if slab_axis(a) == dim:
        _counts, _mean, var_ma = fold_moments(a, dim, op="variance")
        if not axes:
            return float(var_ma)
        return Variable(var_ma, axes, id=out_id,
                        missing_value=a.missing_value, attributes=dict(a.attributes))
    if a.slab_count() > 1:
        return map_slabs(lambda s: _variance_eager(s, dim), a, id=out_id)
    return _variance_eager(a, dim)


def _variance_eager(a: Variable, dim: int) -> Union[Variable, float]:
    data = np.ma.var(a.data, axis=dim)
    axes = tuple(ax for i, ax in enumerate(a.axes) if i != dim)
    if not axes:
        return float(data)
    return Variable(np.ma.asarray(data), axes, id=f"var({a.id})",
                    missing_value=a.missing_value, attributes=dict(a.attributes))


def correlation(a: Variable, b: Variable) -> float:
    """Weighted (pattern) correlation coefficient of two variables."""
    cov = covariance(a, b)
    va = ScalarStats(a, op="correlation.var").variance_a()
    vb = ScalarStats(b, op="correlation.var").variance_a()
    if va <= 0 or vb <= 0:
        raise CDATError("correlation undefined: zero variance")
    return float(cov / np.sqrt(va * vb))


def rms_difference(a: Variable, b: Variable) -> float:
    """Weighted root-mean-square difference of two variables."""
    _check_same_shape(a, b, "rms_difference")
    return ScalarStats(a, b, op="rms_difference").rms_difference()


def linear_trend(var: Variable, axis: str = "time") -> Tuple[Variable, Variable]:
    """Per-point least-squares ``(slope, intercept)`` along a named axis.

    Slopes are in data units per coordinate unit of the chosen axis
    (e.g. K per day for a "days since ..." time axis).  Points with
    fewer than two valid samples are masked.
    """
    dim = var.axis_index(axis)
    axes = tuple(ax for i, ax in enumerate(var.axes) if i != dim)
    if not axes:
        raise CDATError("linear_trend over the only axis yields scalars; keep ≥2 dims")
    if is_streamed(var) and slab_axis(var) != dim:
        var = materialize(var, op="linear_trend")
    t = var.get_axis(dim).values
    n, st, sy, stt, sty = fold_trend_sums(var, dim, t, op="linear_trend")
    denom = n * stt - st * st
    with np.errstate(invalid="ignore", divide="ignore"):
        slope = (n * sty - st * sy) / denom
        intercept = (sy - slope * st) / n
    bad = (n < 2) | (np.abs(denom) < 1e-30)
    slope_ma = np.ma.MaskedArray(np.where(bad, 0.0, slope), mask=bad)
    inter_ma = np.ma.MaskedArray(np.where(bad, 0.0, intercept), mask=bad)
    mk = lambda arr, name: Variable(  # noqa: E731
        arr, axes, id=f"{name}({var.id})",
        missing_value=var.missing_value, attributes=dict(var.attributes),
    )
    return mk(slope_ma, "trend"), mk(inter_ma, "intercept")


def standardize(var: Variable, axis: str = "time") -> Variable:
    """Remove the mean and divide by the standard deviation along *axis*.

    Points whose standard deviation is zero are masked.  Along the slab
    axis this is two accumulator passes (mean, then squared deviations)
    plus a per-slab transform pass — three bounded-memory sweeps.
    """
    dim = var.axis_index(axis)
    out_id = f"std({var.id})"
    if slab_axis(var) == dim:
        _counts, mean, var_ma = fold_moments(var, dim, op="standardize")
        std = np.ma.sqrt(var_ma)
        keep_shape = tuple(
            1 if i == dim else n for i, n in enumerate(var.shape)
        )
        mean_k = mean.reshape(keep_shape)
        std_k = std.reshape(keep_shape)

        def transform(slab: Variable) -> Variable:
            with np.errstate(invalid="ignore", divide="ignore"):
                z = (slab.data - mean_k) / std_k
            z = np.ma.masked_invalid(z)
            return Variable(z, slab.axes, id=out_id,
                            missing_value=var.missing_value,
                            attributes=dict(var.attributes))

        return map_slabs(transform, var, id=out_id)
    if var.slab_count() > 1:
        return map_slabs(lambda s: _standardize_eager(s, dim), var, id=out_id)
    return _standardize_eager(var, dim)


def _standardize_eager(var: Variable, dim: int) -> Variable:
    mean = np.ma.mean(var.data, axis=dim, keepdims=True)
    std = np.ma.std(var.data, axis=dim, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        z = (var.data - mean) / std
    z = np.ma.masked_invalid(z)
    return Variable(z, var.axes, id=f"std({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))


def percentile(var: Variable, q: float = 50.0, axis: str = "time") -> Variable:
    """The *q*-th percentile along a named axis (masked points excluded).

    A percentile along the slab axis needs every point's full series at
    once, so a streamed input is gathered first — the documented
    (observable) exception to bounded-memory reduction.
    """
    if not 0.0 <= q <= 100.0:
        raise CDATError(f"percentile: q={q} out of [0, 100]")
    dim = var.axis_index(axis)
    if is_streamed(var):
        if slab_axis(var) == dim:
            var = materialize(var, op="percentile")
        else:
            return map_slabs(
                lambda s: _percentile_eager(s, q, dim), var, id=f"p{q:g}({var.id})"
            )
    return _percentile_eager(var, q, dim)


def _percentile_eager(var: Variable, q: float, dim: int) -> Variable:
    filled = np.where(np.ma.getmaskarray(var.data), np.nan, np.asarray(var.data.filled(np.nan)))
    with np.errstate(all="ignore"):
        result = np.nanpercentile(filled, q, axis=dim)
    result = np.ma.masked_invalid(np.atleast_1d(result))
    axes = tuple(ax for i, ax in enumerate(var.axes) if i != dim)
    if not axes:
        from repro.cdms.axis import Axis
        axes = (Axis("scalar", [0.0]),)
        result = result.reshape(1)
    return Variable(result, axes, id=f"p{q:g}({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))
