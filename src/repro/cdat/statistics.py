"""Statistical operations ("various statistical operations").

Weighted pattern statistics (correlation, covariance, RMS difference),
per-gridpoint temporal statistics (variance, trend, standardisation)
and percentiles — the workhorse comparisons a scientist runs before and
alongside the DV3D visual comparison plots (e.g. the isosurface-of-A-
colored-by-B plot pairs naturally with a pattern correlation of A and B).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def _joint_valid_weights(a: Variable, b: Optional[Variable]) -> np.ndarray:
    """Flattened weights over jointly valid points (area weights if gridded)."""
    grid = a.get_grid()
    if grid is not None:
        w2 = grid.area_weights()
        lat_dim = a.axis_index("latitude")
        lon_dim = a.axis_index("longitude")
        shape = [1] * a.ndim
        shape[lat_dim] = a.shape[lat_dim]
        shape[lon_dim] = a.shape[lon_dim]
        weights = np.broadcast_to(w2.reshape(shape), a.shape).copy()
    else:
        weights = np.ones(a.shape, dtype=np.float64)
    valid = ~np.ma.getmaskarray(a.data)
    if b is not None:
        valid &= ~np.ma.getmaskarray(b.data)
    weights[~valid] = 0.0
    total = weights.sum()
    if total <= 0:
        raise CDATError("no jointly valid data points")
    return weights / total


def _check_same_shape(a: Variable, b: Variable, op: str) -> None:
    if a.shape != b.shape:
        raise CDATError(f"{op}: shape mismatch {a.shape} vs {b.shape}")


def covariance(a: Variable, b: Variable) -> float:
    """Weighted covariance of two same-shape variables over valid points."""
    _check_same_shape(a, b, "covariance")
    w = _joint_valid_weights(a, b)
    fa, fb = a.filled(0.0), b.filled(0.0)
    ma = float((w * fa).sum())
    mb = float((w * fb).sum())
    return float((w * (fa - ma) * (fb - mb)).sum())


def variance(a: Variable, axis: Optional[str] = None) -> Union[Variable, float]:
    """Variance: scalar (weighted, all data) or along one named axis."""
    if axis is None:
        return covariance(a, a)
    dim = a.axis_index(axis)
    data = np.ma.var(a.data, axis=dim)
    axes = tuple(ax for i, ax in enumerate(a.axes) if i != dim)
    if not axes:
        return float(data)
    return Variable(np.ma.asarray(data), axes, id=f"var({a.id})",
                    missing_value=a.missing_value, attributes=dict(a.attributes))


def correlation(a: Variable, b: Variable) -> float:
    """Weighted (pattern) correlation coefficient of two variables."""
    cov = covariance(a, b)
    va, vb = covariance(a, a), covariance(b, b)
    if va <= 0 or vb <= 0:
        raise CDATError("correlation undefined: zero variance")
    return float(cov / np.sqrt(va * vb))


def rms_difference(a: Variable, b: Variable) -> float:
    """Weighted root-mean-square difference of two variables."""
    _check_same_shape(a, b, "rms_difference")
    w = _joint_valid_weights(a, b)
    diff = a.filled(0.0) - b.filled(0.0)
    return float(np.sqrt((w * diff * diff).sum()))


def linear_trend(var: Variable, axis: str = "time") -> Tuple[Variable, Variable]:
    """Per-point least-squares ``(slope, intercept)`` along a named axis.

    Slopes are in data units per coordinate unit of the chosen axis
    (e.g. K per day for a "days since ..." time axis).  Points with
    fewer than two valid samples are masked.
    """
    dim = var.axis_index(axis)
    t = var.get_axis(dim).values
    data = np.moveaxis(var.data, dim, 0)
    valid = (~np.ma.getmaskarray(data)).astype(np.float64)
    y = np.asarray(data.filled(0.0))
    tcol = t.reshape((-1,) + (1,) * (y.ndim - 1))
    n = valid.sum(axis=0)
    st = (valid * tcol).sum(axis=0)
    sy = (valid * y).sum(axis=0)
    stt = (valid * tcol * tcol).sum(axis=0)
    sty = (valid * tcol * y).sum(axis=0)
    denom = n * stt - st * st
    with np.errstate(invalid="ignore", divide="ignore"):
        slope = (n * sty - st * sy) / denom
        intercept = (sy - slope * st) / n
    bad = (n < 2) | (np.abs(denom) < 1e-30)
    slope_ma = np.ma.MaskedArray(np.where(bad, 0.0, slope), mask=bad)
    inter_ma = np.ma.MaskedArray(np.where(bad, 0.0, intercept), mask=bad)
    axes = tuple(ax for i, ax in enumerate(var.axes) if i != dim)
    if not axes:
        raise CDATError("linear_trend over the only axis yields scalars; keep ≥2 dims")
    mk = lambda arr, name: Variable(  # noqa: E731
        arr, axes, id=f"{name}({var.id})",
        missing_value=var.missing_value, attributes=dict(var.attributes),
    )
    return mk(slope_ma, "trend"), mk(inter_ma, "intercept")


def standardize(var: Variable, axis: str = "time") -> Variable:
    """Remove the mean and divide by the standard deviation along *axis*.

    Points whose standard deviation is zero are masked.
    """
    dim = var.axis_index(axis)
    mean = np.ma.mean(var.data, axis=dim, keepdims=True)
    std = np.ma.std(var.data, axis=dim, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        z = (var.data - mean) / std
    z = np.ma.masked_invalid(z)
    return Variable(z, var.axes, id=f"std({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))


def percentile(var: Variable, q: float = 50.0, axis: str = "time") -> Variable:
    """The *q*-th percentile along a named axis (masked points excluded)."""
    if not 0.0 <= q <= 100.0:
        raise CDATError(f"percentile: q={q} out of [0, 100]")
    dim = var.axis_index(axis)
    filled = np.where(np.ma.getmaskarray(var.data), np.nan, np.asarray(var.data.filled(np.nan)))
    with np.errstate(all="ignore"):
        result = np.nanpercentile(filled, q, axis=dim)
    result = np.ma.masked_invalid(np.atleast_1d(result))
    axes = tuple(ax for i, ax in enumerate(var.axes) if i != dim)
    if not axes:
        from repro.cdms.axis import Axis
        axes = (Axis("scalar", [0.0]),)
        result = result.reshape(1)
    return Variable(result, axes, id=f"p{q:g}({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))
