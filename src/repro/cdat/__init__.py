"""Climate Data Analysis Tools (CDAT) substrate.

The paper: "The CDAT toolkit provides a wide range of climate data
analysis operations, e.g. simple arithmetic operations, regridding,
conditioned comparisons, weighted averages, various statistical
operations, etc."  This package implements that operation suite over
the :mod:`repro.cdms` variable model:

* :mod:`repro.cdat.arithmetic` — elementwise math with metadata;
* :mod:`repro.cdat.averages` — area/axis-weighted averages, running means;
* :mod:`repro.cdat.climatology` — monthly/seasonal climatologies & anomalies;
* :mod:`repro.cdat.statistics` — correlation, RMS, trends, standardisation;
* :mod:`repro.cdat.conditioned` — conditioned comparisons and masking;
* :mod:`repro.cdat.vertical` — vertical integrals and level interpolation;
* :mod:`repro.cdat.spectral` — zonal and space-time spectra;
* :mod:`repro.cdat.registry` — the named-operation registry the UV-CDAT
  calculator interface and workflow modules resolve operations from.
"""

from repro.cdat.registry import OperationRegistry, default_registry, register_operation
from repro.cdat.arithmetic import (
    add, subtract, multiply, divide, power, sqrt, log, exp, absolute, scale, offset,
)
from repro.cdat.averages import area_average, axis_average, running_mean, zonal_mean, meridional_mean
from repro.cdat.climatology import monthly_climatology, seasonal_climatology, anomalies, annual_mean
from repro.cdat.statistics import (
    correlation, covariance, rms_difference, linear_trend, standardize, percentile, variance,
)
from repro.cdat.conditioned import mask_where, compare_where, masked_fraction
from repro.cdat.vertical import pressure_weighted_mean, interpolate_to_level, vertical_integral
from repro.cdat.spectral import zonal_power_spectrum, space_time_power
from repro.cdat.eof import EOFResult, eof_analysis
from repro.cdat.composites import CompositeResult, composite_analysis
from repro.cdat.filters import bandpass_running_mean, detrend, lag_correlation, spatial_smooth

__all__ = [
    "OperationRegistry", "default_registry", "register_operation",
    "add", "subtract", "multiply", "divide", "power", "sqrt", "log", "exp",
    "absolute", "scale", "offset",
    "area_average", "axis_average", "running_mean", "zonal_mean", "meridional_mean",
    "monthly_climatology", "seasonal_climatology", "anomalies", "annual_mean",
    "correlation", "covariance", "rms_difference", "linear_trend", "standardize",
    "percentile", "variance",
    "mask_where", "compare_where", "masked_fraction",
    "pressure_weighted_mean", "interpolate_to_level", "vertical_integral",
    "zonal_power_spectrum", "space_time_power",
    "EOFResult", "eof_analysis",
    "CompositeResult", "composite_analysis",
    "spatial_smooth", "detrend", "lag_correlation", "bandpass_running_mean",
]
