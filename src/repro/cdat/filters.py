"""Temporal and spatial filtering.

The remaining members of the paper's "wide range of climate data
analysis operations": spatial smoothing (for noisy high-resolution
fields ahead of isosurfacing), linear detrending, lagged correlation
(the standard teleconnection diagnostic) and band-pass filtering of
time series via running-mean differences.

The time-axis paths stream: detrending folds the trend-sum kernel and
subtracts the fit slab by slab, the band-pass rides the carried
running-mean kernel, and spatial smoothing (independent per time step)
maps over slabs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.cdms.slabs import is_streamed, map_slabs, materialize, slab_axis
from repro.cdms.variable import Variable
from repro.util.errors import CDATError


def spatial_smooth(var: Variable, sigma_points: float = 1.0) -> Variable:
    """Gaussian smoothing over the lat/lon plane (σ in grid points).

    Longitude wraps (global fields are periodic); latitude reflects.
    Masked points are excluded and re-masked in the output (the
    normalized-convolution trick: smooth data·valid and valid
    separately, divide).  Smoothing touches only the lat/lon plane, so
    streamed inputs are processed one slab at a time.
    """
    if sigma_points <= 0:
        raise CDATError("sigma_points must be positive")
    grid = var.get_grid()
    if grid is None:
        raise CDATError(f"variable {var.id!r} has no lat/lon grid to smooth")
    lat_dim = var.axis_index("latitude")
    lon_dim = var.axis_index("longitude")
    if is_streamed(var) and slab_axis(var) in (lat_dim, lon_dim):
        var = materialize(var, op="spatial_smooth")
    return map_slabs(
        lambda s: _spatial_smooth_eager(s, sigma_points, lat_dim, lon_dim),
        var, id=f"smooth({var.id})",
    )


def _spatial_smooth_eager(
    var: Variable, sigma_points: float, lat_dim: int, lon_dim: int
) -> Variable:
    data = np.moveaxis(var.data, (lat_dim, lon_dim), (-2, -1))
    valid = (~np.ma.getmaskarray(data)).astype(np.float64)
    filled = np.asarray(data.filled(0.0))

    # periodic in longitude, reflective in latitude
    modes = ["nearest"] * filled.ndim
    modes[-1] = "wrap"
    modes[-2] = "reflect"

    def smooth(arr: np.ndarray) -> np.ndarray:
        out = arr
        for axis in (-2, -1):
            out = ndimage.gaussian_filter1d(
                out, sigma_points, axis=axis, mode=modes[axis]
            )
        return out

    numerator = smooth(filled * valid)
    denominator = smooth(valid)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = numerator / denominator
    mask = denominator < 0.5
    out = np.ma.MaskedArray(np.where(mask, 0.0, result), mask=mask)
    out = np.ma.asarray(np.moveaxis(out, (-2, -1), (lat_dim, lon_dim)))
    return Variable(out, var.axes, id=f"smooth({var.id})",
                    missing_value=var.missing_value, attributes=dict(var.attributes))


def detrend(var: Variable, axis: str = "time") -> Variable:
    """Remove the per-point least-squares linear trend along *axis*.

    The regression sums accumulate in one streaming pass
    (:func:`repro.cdat.statistics.linear_trend`); the fitted line is
    then subtracted slab by slab.
    """
    from repro.cdat.statistics import linear_trend

    dim = var.axis_index(axis)
    if is_streamed(var) and slab_axis(var) != dim:
        var = materialize(var, op="detrend")
    slope, intercept = linear_trend(var, axis)
    coords = var.get_axis(dim).values
    slope0 = np.asarray(slope.data.filled(0.0))
    inter0 = np.asarray(intercept.data.filled(0.0))
    pos = 0

    def piece(slab: Variable) -> Variable:
        nonlocal pos
        k = slab.shape[dim]
        shape = [1] * var.ndim
        shape[dim] = k
        fitted = (
            np.expand_dims(slope0, dim) * coords[pos : pos + k].reshape(shape)
            + np.expand_dims(inter0, dim)
        )
        pos += k
        result = slab.data - fitted
        return Variable(result, slab.axes, id=f"detrend({var.id})",
                        missing_value=var.missing_value, attributes=dict(var.attributes))

    return map_slabs(piece, var, id=f"detrend({var.id})")


def lag_correlation(
    a: Variable,
    b: Variable,
    max_lag: int = 10,
) -> Tuple[np.ndarray, np.ndarray]:
    """Correlation of two 1-D time series at lags −max_lag..+max_lag.

    Positive lag means *a leads b* (a at t correlates with b at t+lag).
    Returns ``(lags, correlations)``; lags with fewer than 3 overlapping
    samples yield NaN.  The inputs are 1-D series, so streamed variables
    are simply gathered (tiny, and lag windows overlap arbitrarily).
    """
    a = materialize(a, op="lag_correlation")
    b = materialize(b, op="lag_correlation")
    sa = np.asarray(a.squeeze().data.filled(np.nan)).reshape(-1)
    sb = np.asarray(b.squeeze().data.filled(np.nan)).reshape(-1)
    if sa.size != sb.size:
        raise CDATError(f"series lengths differ: {sa.size} vs {sb.size}")
    if max_lag < 0 or max_lag >= sa.size:
        raise CDATError(f"max_lag {max_lag} out of range for length {sa.size}")
    lags = np.arange(-max_lag, max_lag + 1)
    correlations = np.full(lags.size, np.nan)
    for i, lag in enumerate(lags):
        if lag >= 0:
            xa, xb = sa[: sa.size - lag], sb[lag:]
        else:
            xa, xb = sa[-lag:], sb[: sb.size + lag]
        pair_valid = np.isfinite(xa) & np.isfinite(xb)
        if pair_valid.sum() < 3:
            continue
        xa, xb = xa[pair_valid], xb[pair_valid]
        if xa.std() < 1e-30 or xb.std() < 1e-30:
            continue
        correlations[i] = float(np.corrcoef(xa, xb)[0, 1])
    return lags, correlations


def bandpass_running_mean(
    var: Variable,
    short_window: int = 3,
    long_window: int = 11,
    axis: str = "time",
) -> Variable:
    """Band-pass via running-mean difference: smooth(short) − smooth(long).

    Retains variability between the two window periods — the poor
    man's Lanczos filter, standard for quick intraseasonal isolation.
    Both running means stream (windowed sums carried across slab
    boundaries), so the band-pass of a streamed variable holds at most
    two full-size outputs plus the carry state.
    """
    from repro.cdat.averages import running_mean

    if short_window >= long_window:
        raise CDATError("short_window must be smaller than long_window")
    short = running_mean(var, axis=axis, window=short_window)
    long = running_mean(var, axis=axis, window=long_window)
    out = short - long
    out.id = f"bandpass({var.id})"
    return out
