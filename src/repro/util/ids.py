"""Identifier generation.

Workflow modules, connections, provenance actions, spreadsheet cells and
hyperwall messages all need stable integer or string identifiers.  The
:class:`IdGenerator` hands out monotonically increasing integers (the
VisTrails convention for module/action ids); :func:`new_uuid` produces
random string ids for entities that cross process boundaries.
"""

from __future__ import annotations

import itertools
import uuid


class IdGenerator:
    """Monotonic integer id source, optionally starting above existing ids."""

    def __init__(self, start: int = 0) -> None:
        self._counter = itertools.count(start)
        self._last = start - 1

    def next(self) -> int:
        self._last = next(self._counter)
        return self._last

    @property
    def last(self) -> int:
        """The most recently issued id (``start - 1`` if none issued)."""
        return self._last

    def reserve_through(self, value: int) -> None:
        """Ensure future ids are strictly greater than *value*.

        Used when deserializing a pipeline/vistrail so new entities do
        not collide with persisted ones.
        """
        if value >= self._last:
            self._counter = itertools.count(value + 1)
            self._last = value


def new_uuid() -> str:
    """A random 32-hex-character identifier."""
    return uuid.uuid4().hex
