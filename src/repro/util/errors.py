"""Exception hierarchy for the ``repro`` package.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without accidentally swallowing programming errors
(`TypeError`, `KeyError`, ...) from their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class CDMSError(ReproError):
    """Raised by the climate data management subsystem (:mod:`repro.cdms`)."""


class StreamingError(CDMSError):
    """Raised by the out-of-core streaming layer (:mod:`repro.streaming`).

    Covers unreadable or unverifiable chunks after the retry budget is
    exhausted, bad streaming configurations, and v2 container layout
    violations.  Subclasses :class:`CDMSError` so callers treating the
    streaming path as "just storage" keep working; the animation loop
    catches it to degrade instead of aborting.
    """


class ChunkCorruptionError(StreamingError):
    """A chunk's payload failed content-digest verification.

    Raised after reads and retries have been exhausted; the offending
    chunk is quarantined by the reader so the prefetch pipeline stops
    wasting slots on it.
    """


class CDATError(ReproError):
    """Raised by the climate data analysis toolkit (:mod:`repro.cdat`)."""


class ESGError(ReproError):
    """Raised by the simulated Earth System Grid (:mod:`repro.esg`)."""


class RenderingError(ReproError):
    """Raised by the software rendering substrate (:mod:`repro.rendering`)."""


class WorkflowError(ReproError):
    """Raised by the workflow engine (:mod:`repro.workflow`)."""


class ModuleExecutionError(WorkflowError):
    """A workflow module raised during execution.

    Wraps the original exception and records the module responsible, so
    the executor (and the provenance log) can attribute failures.
    """

    def __init__(self, module_name: str, original: BaseException):
        self.module_name = module_name
        self.original = original
        super().__init__(f"module {module_name!r} failed: {original!r}")


class KernelPoolError(ReproError):
    """Raised by the process-parallel kernel pool (:mod:`repro.parallel`).

    Covers worker crashes (a tile process dying mid-kernel), pool-wide
    timeouts, and tile functions that raised: the pool converts all of
    them into this single, catchable failure after tearing down its
    worker processes and unlinking its shared-memory segments.
    """


class ResilienceError(ReproError):
    """Raised by the fault-tolerance subsystem (:mod:`repro.resilience`).

    Covers exhausted retry budgets, open circuit breakers and invalid
    policy parameters.
    """


class InjectedFault(ResilienceError):
    """An artificial failure fired by the fault-injection registry.

    Tests and benchmarks arm faults at named sites
    (:mod:`repro.resilience.faults`); instrumented code raises this to
    exercise a recovery path deterministically.
    """


class ProvenanceError(ReproError):
    """Raised by the provenance subsystem (:mod:`repro.provenance`)."""


class SpreadsheetError(ReproError):
    """Raised by the spreadsheet model (:mod:`repro.spreadsheet`)."""


class HyperwallError(ReproError):
    """Raised by the hyperwall distributed framework (:mod:`repro.hyperwall`)."""


class DV3DError(ReproError):
    """Raised by the DV3D plot package (:mod:`repro.dv3d`)."""


class CacheError(ReproError):
    """Raised by the result cache (:mod:`repro.cache`).

    Covers bad configurations and values that cannot be canonically
    hashed — never I/O failures of the disk tier, which degrade to
    cache misses instead of failing the computation they memoize.
    """


class ServingError(ReproError):
    """Raised by the multi-tenant serving layer (:mod:`repro.serving`).

    Covers bad configurations and lifecycle misuse (submitting to a
    closed server).  Overload is never an exception: shed and expired
    requests come back as ``Response(status="shed")`` so callers always
    get an answer they can account for.
    """


class SlotDeadError(ServingError):
    """A backend slot died (or was killed) while serving a request.

    The serving layer catches this internally: the dead slot is retired
    from the affinity router, its sessions are re-pinned to surviving
    slots, and the request is retried there — callers only see it when
    every slot is gone.
    """


class WireError(ServingError):
    """Base class for session wire-protocol failures (:mod:`repro.serving.wire`).

    Every defect a remote peer can present — truncation, corruption,
    version skew, malformed framing — maps to a *typed* subclass so
    endpoints can distinguish "reconnect and resume" (truncation,
    corruption) from "refuse the peer" (version skew).
    """


class WireFormatError(WireError):
    """A frame violated the wire format (bad magic, absurd lengths,
    malformed header JSON)."""


class WireVersionError(WireError):
    """The peer speaks a wire-protocol version this endpoint does not."""


class WireTruncatedError(WireError):
    """The stream ended (or the buffer ran out) mid-frame."""


class WireCorruptionError(WireError):
    """A frame's payload bytes do not match its stamped content digest."""
