"""A minimal synchronous event bus.

DV3D propagates interaction events (key presses, mouse drags, slice
moves, camera changes) between plots, spreadsheet cells, and hyperwall
nodes.  The paper describes this as "configuration and navigation
operations are propagated to all active cells".  The :class:`EventBus`
is the in-process backbone of that propagation; the hyperwall protocol
serializes the same :class:`Event` objects over sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple


@dataclass(frozen=True)
class Event:
    """An immutable named event with a payload dictionary.

    Attributes
    ----------
    topic:
        Dotted topic string, e.g. ``"cell.configure"`` or
        ``"camera.moved"``.  Subscriptions match on exact topic or on a
        prefix followed by ``.*``.
    payload:
        Arbitrary JSON-serializable data (the hyperwall layer requires
        serializability; in-process use does not).
    source:
        Identifier of the emitting component, used to break propagation
        cycles (a cell ignores events it emitted itself).
    """

    topic: str
    payload: Tuple[Tuple[str, Any], ...] = ()
    source: str = ""

    @staticmethod
    def make(topic: str, source: str = "", **payload: Any) -> "Event":
        return Event(topic=topic, payload=tuple(sorted(payload.items())), source=source)

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.payload:
            if k == key:
                return v
        return default

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.payload)


Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub.

    Handlers run in subscription order on the publisher's thread.  A
    handler raising does not prevent later handlers from running; the
    first exception is re-raised after delivery completes so bugs are
    not silently swallowed.
    """

    def __init__(self) -> None:
        self._subs: Dict[str, List[Handler]] = {}
        self._delivered = 0

    @property
    def delivered_count(self) -> int:
        """Total number of handler invocations performed by this bus."""
        return self._delivered

    def subscribe(self, topic: str, handler: Handler) -> Callable[[], None]:
        """Register *handler* for *topic*.

        ``topic`` may end with ``.*`` to match any event whose topic
        starts with the prefix before the wildcard.  Returns an
        unsubscribe callable.
        """
        self._subs.setdefault(topic, []).append(handler)

        def unsubscribe() -> None:
            handlers = self._subs.get(topic, [])
            if handler in handlers:
                handlers.remove(handler)

        return unsubscribe

    def publish(self, event: Event) -> int:
        """Deliver *event* to all matching handlers; return delivery count."""
        matched: List[Handler] = []
        for pattern, handlers in self._subs.items():
            if pattern == event.topic:
                matched.extend(handlers)
            elif pattern.endswith(".*") and event.topic.startswith(pattern[:-1]):
                matched.extend(handlers)
        first_error: BaseException | None = None
        for handler in list(matched):
            try:
                handler(event)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = exc
            self._delivered += 1
        if first_error is not None:
            raise first_error
        return len(matched)

    def emit(self, topic: str, source: str = "", **payload: Any) -> int:
        """Convenience: build an :class:`Event` and publish it."""
        return self.publish(Event.make(topic, source=source, **payload))
