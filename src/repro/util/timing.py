"""Lightweight wall-clock instrumentation.

The workflow executor records per-module execution times in the
provenance log (the paper: provenance "maintains a record of every step
... as well as the datasets and parameters used in each workflow
execution"); the hyperwall benchmarks report end-to-end latencies.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class Stopwatch:
    """Accumulates named timing samples.

    >>> sw = Stopwatch()
    >>> with sw.measure("render"):
    ...     pass
    >>> sw.count("render")
    1
    """

    samples: Dict[str, List[float]] = field(default_factory=dict)

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.samples.setdefault(name, []).append(time.perf_counter() - start)

    def total(self, name: str) -> float:
        return float(sum(self.samples.get(name, ())))

    def count(self, name: str) -> int:
        return len(self.samples.get(name, ()))

    def mean(self, name: str) -> float:
        values = self.samples.get(name, ())
        return float(sum(values) / len(values)) if values else 0.0

    def summary(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {"count": len(vals), "total": float(sum(vals)), "mean": float(sum(vals) / len(vals))}
            for name, vals in self.samples.items()
            if vals
        }


@contextmanager
def timed() -> Iterator[List[float]]:
    """Context manager yielding a one-element list holding elapsed seconds.

    >>> with timed() as t:
    ...     pass
    >>> t[0] >= 0
    True
    """
    box: List[float] = [0.0]
    start = time.perf_counter()
    try:
        yield box
    finally:
        box[0] = time.perf_counter() - start
