"""Shared utilities used across all ``repro`` subsystems.

This package deliberately stays tiny and dependency-free (numpy only):
error hierarchy, deterministic identifiers, an in-process event bus, a
wall-clock timer, and deterministic random-number helpers.  Everything
higher up the stack (CDMS data model, rendering, workflow engine, DV3D)
builds on these primitives.
"""

from repro.util.errors import (
    ReproError,
    CDMSError,
    WorkflowError,
    ProvenanceError,
    RenderingError,
    HyperwallError,
    SpreadsheetError,
)
from repro.util.events import Event, EventBus
from repro.util.ids import IdGenerator, new_uuid
from repro.util.rng import deterministic_rng
from repro.util.timing import Stopwatch, timed

__all__ = [
    "ReproError",
    "CDMSError",
    "WorkflowError",
    "ProvenanceError",
    "RenderingError",
    "HyperwallError",
    "SpreadsheetError",
    "Event",
    "EventBus",
    "IdGenerator",
    "new_uuid",
    "deterministic_rng",
    "Stopwatch",
    "timed",
]
