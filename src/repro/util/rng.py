"""Deterministic random-number helpers.

All synthetic data generation in :mod:`repro.data` and all stochastic
benchmark workloads take explicit seeds so that tests, examples and
benchmarks are reproducible run-to-run (a core promise of the paper's
provenance story: any analysis product can be regenerated).
"""

from __future__ import annotations

import hashlib

import numpy as np


def deterministic_rng(seed: int | str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    String seeds are hashed (SHA-256) to a 64-bit integer first so that
    callers can namespace generators by name, e.g.
    ``deterministic_rng("temperature/run1")``.
    """
    if isinstance(seed, str):
        digest = hashlib.sha256(seed.encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(seed)
