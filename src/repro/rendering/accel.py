"""Acceleration structures for the batched render kernels.

The hot paths (ray casting, isosurface extraction) spend most of their
time evaluating regions of the volume that provably contribute nothing:
samples whose transfer-function opacity is exactly zero, cells that the
isovalue does not cross.  A :class:`MinMaxPyramid` makes those regions
cheap to identify *conservatively* — per-tile value bounds guarantee
that every trilinear sample and every cell-corner value inside a tile
lies within the tile's ``[min, max]`` interval, so a tile whose bounds
rule out any contribution can be skipped without changing a single
output byte.  The same structure feeds the adaptive tile scheduler in
:mod:`repro.parallel` (occupancy-weighted partitions) and is the shape
the future chunked-storage work needs for per-slab culling.

Level 0 tiles are ``tile``³ cells; each coarser level merges 2×2×2
finer tiles.  Bounds are computed over *cell corner* values (the 8
voxels bounding each cell), so tiles correctly cover the voxels shared
with their neighbours.  Non-finite voxels (NaN/±inf) are tracked
separately: they map to zero opacity in the ray caster and to
"outside" in marching tetrahedra, so they never prevent a skip — but a
tile holding them must still be treated as unbounded-below for the
isosurface test (NaN becomes ``-inf`` there).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.util.errors import RenderingError

#: default level-0 tile edge, in cells
DEFAULT_TILE = 4

#: safety margin (normalized units) widening the opacity support when
#: classifying tiles — absorbs trilinear round-off so a sample that
#: lands ulps outside its cell's value bounds can never be skipped
#: while carrying real opacity
SUPPORT_MARGIN = 1e-6


class PyramidLevel:
    """One resolution level: per-tile value bounds over cell corners."""

    __slots__ = ("tile", "vmin", "vmax", "nonfinite")

    def __init__(
        self, tile: int, vmin: np.ndarray, vmax: np.ndarray, nonfinite: np.ndarray
    ) -> None:
        self.tile = int(tile)
        self.vmin = vmin
        self.vmax = vmax
        self.nonfinite = nonfinite

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.vmin.shape  # type: ignore[return-value]


def _pad_reduce(block: np.ndarray, tile: int, op, fill) -> np.ndarray:
    """Tile-reduce a 3-D array with *op*, padding partial tiles with *fill*."""
    shape = block.shape
    padded_shape = tuple(-(-s // tile) * tile for s in shape)
    if padded_shape != shape:
        padded = np.full(padded_shape, fill, dtype=block.dtype)
        padded[: shape[0], : shape[1], : shape[2]] = block
        block = padded
    nt = tuple(s // tile for s in block.shape)
    view = block.reshape(nt[0], tile, nt[1], tile, nt[2], tile)
    return op(view, axis=(1, 3, 5))


class MinMaxPyramid:
    """Per-tile conservative value bounds for one scalar volume.

    ``levels[0]`` is the finest; ``levels[k]`` tiles are ``tile * 2**k``
    cells on edge.  All bounds are over finite voxel values only, with
    ``nonfinite`` flagging tiles that contain any NaN/±inf voxel (and
    ``vmin > vmax`` marking tiles with *no* finite voxel at all).
    """

    def __init__(self, dims: Tuple[int, int, int], levels: List[PyramidLevel]) -> None:
        self.dims = dims
        self.levels = levels

    # -- construction -----------------------------------------------------

    @classmethod
    def build(cls, values: np.ndarray, tile: int = DEFAULT_TILE) -> "MinMaxPyramid":
        """Build the pyramid for a scalar array shaped ``(nx, ny, nz)``.

        Requires at least 2 points per axis (one cell); *tile* is the
        level-0 tile edge in cells.
        """
        if values.ndim != 3:
            raise RenderingError("MinMaxPyramid requires a 3-D scalar array")
        if tile < 1:
            raise RenderingError(f"tile must be >= 1, got {tile}")
        nx, ny, nz = values.shape
        if min(nx, ny, nz) < 2:
            raise RenderingError("MinMaxPyramid requires at least one cell per axis")
        vals = values.astype(np.float64, copy=False)
        finite = np.isfinite(vals)
        lo = np.where(finite, vals, np.inf)
        hi = np.where(finite, vals, -np.inf)
        bad = ~finite
        # cell-level bounds over each cell's 8 corner voxels
        cmin = lo[:-1, :-1, :-1]
        cmax = hi[:-1, :-1, :-1]
        cbad = bad[:-1, :-1, :-1]
        for ox, oy, oz in (
            (1, 0, 0), (0, 1, 0), (0, 0, 1), (1, 1, 0),
            (1, 0, 1), (0, 1, 1), (1, 1, 1),
        ):
            sel = (
                slice(ox, ox + nx - 1),
                slice(oy, oy + ny - 1),
                slice(oz, oz + nz - 1),
            )
            cmin = np.minimum(cmin, lo[sel])
            cmax = np.maximum(cmax, hi[sel])
            cbad = cbad | bad[sel]
        levels = [
            PyramidLevel(
                tile,
                _pad_reduce(cmin, tile, np.min, np.inf),
                _pad_reduce(cmax, tile, np.max, -np.inf),
                _pad_reduce(cbad, tile, np.max, False).astype(bool),
            )
        ]
        while max(levels[-1].shape) > 1:
            prev = levels[-1]
            levels.append(
                PyramidLevel(
                    prev.tile * 2,
                    _pad_reduce(prev.vmin, 2, np.min, np.inf),
                    _pad_reduce(prev.vmax, 2, np.max, -np.inf),
                    _pad_reduce(prev.nonfinite, 2, np.max, False).astype(bool),
                )
            )
        return cls((nx, ny, nz), levels)

    @property
    def tile(self) -> int:
        return self.levels[0].tile

    @property
    def cell_dims(self) -> Tuple[int, int, int]:
        nx, ny, nz = self.dims
        return nx - 1, ny - 1, nz - 1

    # -- classification ---------------------------------------------------

    def blocked_outside(
        self, lo: float, hi: float, level: int = 0
    ) -> np.ndarray:
        """Tiles whose every *finite* value falls outside ``(lo, hi)``.

        This is the ray-caster test: with an opacity transfer function
        that is exactly zero outside ``[lo, hi]`` (and zero for
        non-finite samples), a ``True`` tile cannot contribute color or
        absorb light — every sample in it has opacity exactly 0.  The
        comparison keeps :data:`SUPPORT_MARGIN` of slack so trilinear
        round-off can never un-skip a contributing sample.
        """
        lvl = self.levels[level]
        empty = lvl.vmin > lvl.vmax  # no finite voxel at all
        # slack scales with each tile's own value magnitude, so float32
        # interpolation round-off (≈ magnitude * 2^-24) is always covered
        with np.errstate(invalid="ignore"):
            mag = np.maximum(np.maximum(np.abs(lvl.vmin), np.abs(lvl.vmax)), 1.0)
            margin = np.where(np.isfinite(mag), SUPPORT_MARGIN * mag, 0.0)
            out = empty | (lvl.vmax + margin < lo) | (lvl.vmin - margin > hi)
        return out

    def straddling(self, isovalue: float, level: int = 0) -> np.ndarray:
        """Tiles that may contain cells crossed by *isovalue*.

        Marching tetrahedra treats non-finite voxels as ``-inf``
        ("outside" at any isovalue), so a tile holding one is unbounded
        below.  A cell produces triangles only when some corner is
        ``> isovalue`` and some is ``<= isovalue``; a ``False`` tile
        provably holds no such cell.  Exact — corner values are members
        of the min/max, so no floating-point margin is needed.
        """
        lvl = self.levels[level]
        iso = float(isovalue)
        vmin = np.where(lvl.nonfinite | (lvl.vmin > lvl.vmax), -np.inf, lvl.vmin)
        vmax = np.where(lvl.vmin > lvl.vmax, -np.inf, lvl.vmax)
        return (vmax > iso) & (vmin <= iso)

    def cell_mask(self, tile_mask: np.ndarray, level: int = 0) -> np.ndarray:
        """Expand a per-tile mask to per-cell, shaped ``cell_dims``."""
        lvl = self.levels[level]
        if tile_mask.shape != lvl.shape:
            raise RenderingError(
                f"tile mask shape {tile_mask.shape} != level shape {lvl.shape}"
            )
        cx, cy, cz = self.cell_dims
        out = tile_mask
        for axis in range(3):
            out = np.repeat(out, lvl.tile, axis=axis)
        return out[:cx, :cy, :cz]

    @staticmethod
    def occupancy(tile_mask: np.ndarray) -> float:
        """Fraction of ``True`` tiles (the adaptive scheduler's signal)."""
        return float(np.count_nonzero(tile_mask)) / max(tile_mask.size, 1)

    def active_cell_bounds(
        self, tile_mask: np.ndarray, level: int = 0
    ) -> Optional[Tuple[int, int, int, int, int, int]]:
        """Tight cell-index bounding box of ``True`` tiles, or None.

        Returns half-open cell ranges ``(i0, i1, j0, j1, k0, k1)``
        clipped to the cell grid; every sample whose containing cell is
        outside the box lies in a ``False`` tile.
        """
        if not tile_mask.any():
            return None
        lvl = self.levels[level]
        bounds = []
        for axis, n_cells in enumerate(self.cell_dims):
            axes = tuple(a for a in range(3) if a != axis)
            occupied = np.nonzero(tile_mask.any(axis=axes))[0]
            t0, t1 = int(occupied[0]), int(occupied[-1]) + 1
            bounds.extend((t0 * lvl.tile, min(t1 * lvl.tile, n_cells)))
        return tuple(bounds)  # type: ignore[return-value]


# -- cost models for the adaptive tile scheduler -----------------------------


def z_layer_weights(cell_mask: np.ndarray) -> np.ndarray:
    """Per-z-cell-layer extraction cost estimate from a candidate mask.

    One unit per candidate cell plus a small per-layer base cost, so an
    all-empty layer still costs something (slicing, classification
    setup) and weighted partitions never degenerate.
    """
    counts = cell_mask.sum(axis=(0, 1)).astype(np.float64)
    base = max(1.0, 0.02 * cell_mask.shape[0] * cell_mask.shape[1])
    return counts + base


def raycast_row_weights(
    volume,
    camera,
    width: int,
    height: int,
    step: float,
    bounds_world: Optional[Tuple[float, float, float, float, float, float]],
) -> np.ndarray:
    """Per-image-row cost estimate for the ray caster.

    Cost of a row ≈ expected sample count: each pixel ray is intersected
    with the world-space bounding box of the occupied region and charged
    its in-box step count, plus one unit of fixed per-ray overhead.
    Deterministic — depends only on camera/size/volume, never on
    runtime measurements — so the partition (and therefore the tiling)
    is reproducible across runs.
    """
    weights = np.ones(height, dtype=np.float64)
    if bounds_world is None or step <= 0:
        return weights
    from repro.rendering.raycast import _ray_box_intersection

    origins, dirs = camera.pixel_rays(width, height)
    t_enter, t_exit = _ray_box_intersection(origins, dirs, bounds_world)
    t_enter = np.maximum(t_enter, camera.near)
    span = np.maximum(t_exit - t_enter, 0.0)
    steps = (span / step).reshape(height, width)
    return weights + steps.sum(axis=1)
