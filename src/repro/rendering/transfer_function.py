"""Transfer functions for volume rendering.

"Due to the complexity of creating useful transfer functions the art of
generating volume renderings has in the past been relegated to
visualization professionals.  DV3D offers interfaces that greatly
simplify this process" — specifically the interactive *leveling*
operation: click-dragging in a cell adjusts a (window-center,
window-width) pair that reshapes the opacity or color mapping.

This module provides the underlying objects: piecewise-linear opacity
and color transfer functions plus the combined :class:`TransferFunction`
whose :meth:`TransferFunction.level` implements the drag gesture.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.rendering.colormap import Colormap
from repro.util.errors import RenderingError


class OpacityTransferFunction:
    """Piecewise-linear scalar→opacity mapping on normalized [0, 1]."""

    def __init__(self, points: Sequence[Tuple[float, float]] = ((0.0, 0.0), (1.0, 1.0))) -> None:
        pts = sorted((float(x), float(y)) for x, y in points)
        if len(pts) < 2:
            raise RenderingError("opacity transfer function needs >= 2 points")
        for x, y in pts:
            if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
                raise RenderingError(f"control point ({x}, {y}) outside [0,1]^2")
        self.points = pts

    def __call__(self, normalized: np.ndarray) -> np.ndarray:
        xs = np.array([p[0] for p in self.points])
        ys = np.array([p[1] for p in self.points])
        return np.interp(np.clip(normalized, 0.0, 1.0), xs, ys)

    def support(self) -> Optional[Tuple[float, float]]:
        """Normalized interval outside which opacity is *exactly* zero.

        Piecewise-linear segments between two zero control points are
        identically zero, so the support is bounded by the last zero
        point before the first positive one and the first zero point
        after the last positive one.  Values clipped to [0, 1] inherit
        the boundary opacity, so a positive endpoint extends the
        support to infinity on that side.  Returns ``None`` when the
        function is zero everywhere (nothing can ever contribute).
        """
        xs = [p[0] for p in self.points]
        ys = [p[1] for p in self.points]
        positive = [i for i, y in enumerate(ys) if y > 0.0]
        if not positive:
            return None
        lo = -np.inf if positive[0] == 0 else xs[positive[0] - 1]
        hi = np.inf if positive[-1] == len(xs) - 1 else xs[positive[-1] + 1]
        return float(lo), float(hi)

    @staticmethod
    def window(center: float, width: float, peak: float = 1.0) -> "OpacityTransferFunction":
        """A tent function: zero outside the window, *peak* at its center.

        This is the shape the DV3D leveling gesture manipulates.
        """
        width = max(width, 1e-4)
        lo = center - width / 2
        hi = center + width / 2
        pts: List[Tuple[float, float]] = []
        if lo > 0.0:
            pts.append((0.0, 0.0))
        pts.append((float(np.clip(lo, 0.0, 1.0)), 0.0))
        pts.append((float(np.clip(center, 0.0, 1.0)), float(np.clip(peak, 0.0, 1.0))))
        pts.append((float(np.clip(hi, 0.0, 1.0)), 0.0))
        if hi < 1.0:
            pts.append((1.0, 0.0))
        # de-duplicate identical x positions introduced by clipping
        dedup: Dict[float, float] = {}
        for x, y in pts:
            dedup[x] = max(dedup.get(x, 0.0), y)
        return OpacityTransferFunction(sorted(dedup.items()))

    @staticmethod
    def ramp(threshold: float = 0.5, softness: float = 0.1) -> "OpacityTransferFunction":
        """Zero below *threshold*, ramping to 1 over *softness*."""
        lo = float(np.clip(threshold, 0.0, 1.0))
        hi = float(np.clip(threshold + max(softness, 1e-4), 0.0, 1.0))
        pts = [(0.0, 0.0), (lo, 0.0), (hi, 1.0), (1.0, 1.0)]
        dedup: Dict[float, float] = {}
        for x, y in pts:
            dedup[x] = max(dedup.get(x, 0.0), y)
        return OpacityTransferFunction(sorted(dedup.items()))


class ColorTransferFunction:
    """Scalar→RGB via a :class:`Colormap` over a configurable sub-window."""

    def __init__(self, colormap: Colormap, window: Tuple[float, float] = (0.0, 1.0)) -> None:
        lo, hi = float(window[0]), float(window[1])
        if not 0.0 <= lo < hi <= 1.0:
            raise RenderingError(f"bad color window {window!r}")
        self.colormap = colormap
        self.window = (lo, hi)

    def __call__(self, normalized: np.ndarray) -> np.ndarray:
        lo, hi = self.window
        remapped = (np.clip(normalized, lo, hi) - lo) / (hi - lo)
        return self.colormap.map_scalars(remapped, 0.0, 1.0)


class TransferFunction:
    """The combined volume-rendering transfer function.

    Operates on *raw* scalar values: normalizes by ``scalar_range``,
    then applies the color and opacity components.  The
    :meth:`level` method implements DV3D's interactive leveling drag:
    horizontal motion moves the window center, vertical motion scales
    its width.
    """

    def __init__(
        self,
        scalar_range: Tuple[float, float],
        colormap: Colormap | None = None,
        center: float = 0.75,
        width: float = 0.4,
        peak_opacity: float = 0.8,
        color_window: Tuple[float, float] = (0.0, 1.0),
    ) -> None:
        lo, hi = float(scalar_range[0]), float(scalar_range[1])
        if hi <= lo:
            raise RenderingError(f"bad scalar range {scalar_range!r}")
        self.scalar_range = (lo, hi)
        self.colormap = colormap or Colormap()
        self.center = float(np.clip(center, 0.0, 1.0))
        self.width = float(np.clip(width, 1e-3, 2.0))
        self.peak_opacity = float(np.clip(peak_opacity, 0.0, 1.0))
        c_lo = float(np.clip(color_window[0], 0.0, 1.0))
        c_hi = float(np.clip(color_window[1], 0.0, 1.0))
        if c_hi - c_lo < 1e-3:
            mid = (c_lo + c_hi) / 2
            c_lo, c_hi = max(mid - 5e-4, 0.0), min(mid + 5e-4, 1.0)
            c_hi = max(c_hi, c_lo + 1e-4)
        self.color_window = (c_lo, c_hi)
        self._opacity_cache: Optional[OpacityTransferFunction] = None
        self._color_cache: Optional[ColorTransferFunction] = None

    # -- components (cached: instances are immutable — every leveling /
    # -- colormap operation returns a new TransferFunction) -----------------

    @property
    def opacity(self) -> OpacityTransferFunction:
        if self._opacity_cache is None:
            self._opacity_cache = OpacityTransferFunction.window(
                self.center, self.width, self.peak_opacity
            )
        return self._opacity_cache

    @property
    def color(self) -> ColorTransferFunction:
        if self._color_cache is None:
            self._color_cache = ColorTransferFunction(self.colormap, self.color_window)
        return self._color_cache

    def opacity_support(self) -> Optional[Tuple[float, float]]:
        """Raw-scalar interval outside which opacity is exactly zero.

        ``None`` means the opacity function is zero everywhere.  The
        ray caster's empty-space skipping compares per-tile value
        bounds against this interval; anything outside contributes
        nothing to the image, byte for byte.
        """
        support = self.opacity.support()
        if support is None:
            return None
        lo, hi = self.scalar_range
        span = hi - lo
        return lo + support[0] * span, lo + support[1] * span

    def normalize(self, values: np.ndarray) -> np.ndarray:
        lo, hi = self.scalar_range
        return (np.asarray(values, dtype=np.float64) - lo) / (hi - lo)

    def evaluate(self, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Raw scalars → ``(rgb, alpha)``; NaNs get zero opacity."""
        norm = self.normalize(values)
        finite = np.isfinite(norm)
        safe = np.where(finite, norm, 0.0)
        rgb = self.color(safe)
        alpha = self.opacity(safe)
        alpha = np.where(finite, alpha, 0.0)
        return rgb, alpha

    # -- interactive leveling ------------------------------------------------

    def level(self, d_center: float, d_width: float) -> "TransferFunction":
        """Return a new function with the *opacity* window moved/scaled.

        *d_center* and *d_width* are in normalized units (a full-cell
        drag ≈ 1.0).  The interaction layer converts pixel deltas.
        """
        return TransferFunction(
            self.scalar_range,
            colormap=self.colormap,
            center=float(np.clip(self.center + d_center, 0.0, 1.0)),
            width=float(np.clip(self.width * (1.0 + d_width) + 1e-9, 1e-3, 2.0)),
            peak_opacity=self.peak_opacity,
            color_window=self.color_window,
        )

    def level_color(self, d_center: float, d_width: float) -> "TransferFunction":
        """The color-side leveling drag: remap the colormap sub-window.

        Horizontal motion shifts the window; vertical motion scales its
        width.  (The paper: the leveling operation "controls the shape
        of the plot's opacity **or color** transfer function".)
        """
        lo, hi = self.color_window
        center = (lo + hi) / 2 + d_center
        half = (hi - lo) / 2 * (1.0 + d_width)
        half = float(np.clip(half, 5e-4, 0.5))
        return TransferFunction(
            self.scalar_range,
            colormap=self.colormap,
            center=self.center,
            width=self.width,
            peak_opacity=self.peak_opacity,
            color_window=(center - half, center + half),
        )

    def with_colormap(self, colormap: Colormap) -> "TransferFunction":
        return TransferFunction(
            self.scalar_range, colormap=colormap, center=self.center,
            width=self.width, peak_opacity=self.peak_opacity,
            color_window=self.color_window,
        )

    def state(self) -> Dict[str, object]:
        """Serializable configuration (provenance / hyperwall sync)."""
        return {
            "scalar_range": list(self.scalar_range),
            "colormap": self.colormap.state(),
            "center": self.center,
            "width": self.width,
            "peak_opacity": self.peak_opacity,
            "color_window": list(self.color_window),
        }

    @staticmethod
    def from_state(state: Dict[str, object]) -> "TransferFunction":
        return TransferFunction(
            tuple(state["scalar_range"]),  # type: ignore[arg-type]
            colormap=Colormap.from_state(state["colormap"]),  # type: ignore[arg-type]
            center=float(state["center"]),  # type: ignore[arg-type]
            width=float(state["width"]),  # type: ignore[arg-type]
            peak_opacity=float(state["peak_opacity"]),  # type: ignore[arg-type]
            color_window=tuple(state.get("color_window", (0.0, 1.0))),  # type: ignore[arg-type]
        )
