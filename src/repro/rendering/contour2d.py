"""2-D contour lines via marching squares.

The Slicer plot can overlay "a slice through a second data volume ...
as a contour map over the first" — this module produces those contour
polylines from a 2-D scalar field.  The 16-case marching-squares table
is resolved per cell; saddle cases (5, 10) are disambiguated with the
cell-center average, the standard rule.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.util.errors import RenderingError

# cell corner order: 0=(i,j) 1=(i+1,j) 2=(i+1,j+1) 3=(i,j+1)  (x=i, y=j)
# edge order: 0 = bottom (0-1), 1 = right (1-2), 2 = top (3-2), 3 = left (0-3)
#: case → list of (edge, edge) segments
_SEGMENTS: dict = {
    0: [], 15: [],
    1: [(3, 0)], 14: [(3, 0)],
    2: [(0, 1)], 13: [(0, 1)],
    3: [(3, 1)], 12: [(3, 1)],
    4: [(1, 2)], 11: [(1, 2)],
    6: [(0, 2)], 9: [(0, 2)],
    7: [(3, 2)], 8: [(3, 2)],
    # saddles resolved at runtime
    5: None, 10: None,
}


def marching_squares(
    field: np.ndarray,
    level: float,
    x_coords: Sequence[float] | None = None,
    y_coords: Sequence[float] | None = None,
) -> List[np.ndarray]:
    """Contour polyline segments of ``field == level``.

    Parameters
    ----------
    field:
        2-D array indexed ``[i, j]`` with i along x and j along y.
        NaNs suppress contours through their cells.
    level:
        The contour level.
    x_coords, y_coords:
        Coordinates of the grid points (defaults to indices).

    Returns
    -------
    A list of ``(2, 2)`` arrays, each one contour segment
    ``[[x0, y0], [x1, y1]]`` in coordinate space.  (Segments are not
    chained into long polylines; the renderer draws them directly.)
    """
    field = np.asarray(field, dtype=np.float64)
    if field.ndim != 2:
        raise RenderingError("marching_squares requires a 2-D field")
    ni, nj = field.shape
    if ni < 2 or nj < 2:
        return []
    xs = np.asarray(x_coords if x_coords is not None else np.arange(ni), dtype=np.float64)
    ys = np.asarray(y_coords if y_coords is not None else np.arange(nj), dtype=np.float64)
    if xs.size != ni or ys.size != nj:
        raise RenderingError("coordinate lengths do not match field shape")

    safe = np.where(np.isfinite(field), field, -np.inf)
    inside = safe > level
    c0 = inside[:-1, :-1]
    c1 = inside[1:, :-1]
    c2 = inside[1:, 1:]
    c3 = inside[:-1, 1:]
    codes = (
        c0.astype(np.uint8)
        | (c1.astype(np.uint8) << 1)
        | (c2.astype(np.uint8) << 2)
        | (c3.astype(np.uint8) << 3)
    )
    # cells touching non-finite corners produce no segments
    finite = (
        np.isfinite(field[:-1, :-1]) & np.isfinite(field[1:, :-1])
        & np.isfinite(field[1:, 1:]) & np.isfinite(field[:-1, 1:])
    )
    active = np.nonzero((codes != 0) & (codes != 15) & finite)
    if active[0].size == 0:
        return []

    def interp(va: np.ndarray, vb: np.ndarray) -> np.ndarray:
        denom = vb - va
        with np.errstate(invalid="ignore", divide="ignore"):
            t = (level - va) / np.where(np.abs(denom) < 1e-300, 1.0, denom)
        return np.clip(np.where(np.isfinite(t), t, 0.5), 0.0, 1.0)

    ii, jj = active
    f00 = field[ii, jj]
    f10 = field[ii + 1, jj]
    f11 = field[ii + 1, jj + 1]
    f01 = field[ii, jj + 1]
    cell_codes = codes[ii, jj]

    # crossing point on each of the 4 edges, for all active cells
    x0, x1 = xs[ii], xs[ii + 1]
    y0, y1 = ys[jj], ys[jj + 1]
    edge_pts = np.empty((4, ii.size, 2), dtype=np.float64)
    t = interp(f00, f10)  # bottom
    edge_pts[0, :, 0] = x0 + (x1 - x0) * t
    edge_pts[0, :, 1] = y0
    t = interp(f10, f11)  # right
    edge_pts[1, :, 0] = x1
    edge_pts[1, :, 1] = y0 + (y1 - y0) * t
    t = interp(f01, f11)  # top
    edge_pts[2, :, 0] = x0 + (x1 - x0) * t
    edge_pts[2, :, 1] = y1
    t = interp(f00, f01)  # left
    edge_pts[3, :, 0] = x0
    edge_pts[3, :, 1] = y0 + (y1 - y0) * t

    segments: List[np.ndarray] = []
    for k in range(ii.size):
        code = int(cell_codes[k])
        pairs = _SEGMENTS[code]
        if pairs is None:  # saddle: use the cell-center mean to connect
            center_above = (f00[k] + f10[k] + f11[k] + f01[k]) / 4.0 > level
            if code == 5:
                pairs = [(3, 2), (0, 1)] if center_above else [(3, 0), (1, 2)]
            else:  # code == 10
                pairs = [(3, 0), (1, 2)] if center_above else [(3, 2), (0, 1)]
        for ea, eb in pairs:
            segments.append(np.stack([edge_pts[ea, k], edge_pts[eb, k]]))
    return segments


def contour_levels(field: np.ndarray, n_levels: int = 8) -> np.ndarray:
    """Evenly spaced contour levels inside the finite data range."""
    finite = field[np.isfinite(field)]
    if finite.size == 0:
        raise RenderingError("no finite data for contour levels")
    lo, hi = float(finite.min()), float(finite.max())
    if hi <= lo:
        return np.array([lo])
    # exclude the exact extremes (they produce empty/degenerate contours)
    return np.linspace(lo, hi, n_levels + 2)[1:-1]
