"""Streamline integration through vector fields.

The Vector slicer plot displays "a vector glyph or streamline plot" on
a slice plane.  Streamlines are integrated with classical RK4 through
the trilinearly-interpolated vector field, vectorized across all seeds
simultaneously; a seed retires when it leaves the volume, stalls
(speed below threshold) or reaches the step limit.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import obs
from repro.rendering.geometry import PolyData
from repro.rendering.image_data import ImageData
from repro.util.errors import RenderingError


def integrate_streamlines(
    volume: ImageData,
    vector_name: str,
    seeds: np.ndarray,
    step_size: Optional[float] = None,
    max_steps: int = 200,
    min_speed: float = 1e-6,
    bidirectional: bool = False,
    parallel=None,
) -> List[np.ndarray]:
    """Integrate streamlines from *seeds* → list of ``(n_i, 3)`` polylines.

    Parameters
    ----------
    step_size:
        World-space integration step (default: half the smallest grid
        spacing).  The field is normalized to unit speed for stepping,
        so lines advance uniformly regardless of field magnitude.
    bidirectional:
        Also integrate upstream and join the two halves.
    parallel:
        Optional :class:`repro.parallel.ParallelConfig` (defaults to
        the ambient config).  Seeds are independent, so chunking them
        across worker processes returns the identical list of lines.
    """
    seeds = np.atleast_2d(np.asarray(seeds, dtype=np.float64))
    if seeds.shape[1] != 3:
        raise RenderingError("seeds must be (n, 3)")
    if max_steps < 1:
        raise RenderingError("max_steps must be >= 1")

    from repro.parallel.config import get_config

    config = parallel if parallel is not None else get_config()
    if config.wants(seeds.shape[0]):
        from repro.parallel.kernels import parallel_integrate_streamlines

        return parallel_integrate_streamlines(
            volume, vector_name, seeds,
            step_size=step_size, max_steps=max_steps, min_speed=min_speed,
            bidirectional=bidirectional, config=config,
        )
    h = float(step_size) if step_size else 0.5 * float(min(volume.spacing))

    def field(points: np.ndarray) -> np.ndarray:
        """Unit-speed direction field (zero outside / at stalls)."""
        vec = volume.sample_vector(points, vector_name)
        speed = np.linalg.norm(vec, axis=1, keepdims=True)
        return np.where(speed > min_speed, vec / np.maximum(speed, 1e-30), 0.0)

    bounds = volume.bounds()

    def inside(points: np.ndarray) -> np.ndarray:
        ok = np.ones(points.shape[0], dtype=bool)
        for axis in range(3):
            ok &= (points[:, axis] >= bounds[2 * axis]) & (points[:, axis] <= bounds[2 * axis + 1])
        return ok

    _obs_on = obs.enabled()
    n_seeds = seeds.shape[0]

    def march(direction: float):
        """Advance every live seed in lock step → ``(buffer, counts)``.

        Paths are recorded into one preallocated
        ``(n_seeds, max_steps + 1, 3)`` buffer with per-seed point
        counts — a vectorized scatter per step instead of a Python loop
        over seeds.  ``buffer[i, :counts[i]]`` is seed *i*'s polyline
        (the seed itself first).
        """
        pts = seeds.copy()
        alive = inside(pts)
        buf = np.empty((n_seeds, max_steps + 1, 3), dtype=np.float64)
        buf[:, 0] = seeds
        counts = np.ones(n_seeds, dtype=np.intp)
        steps = 0
        advanced = 0
        for _ in range(max_steps):
            if not alive.any():
                break
            if _obs_on:
                steps += 1
                advanced += int(alive.sum())
            idx = np.nonzero(alive)[0]
            p = pts[idx]
            k1 = field(p) * direction
            k2 = field(p + 0.5 * h * k1) * direction
            k3 = field(p + 0.5 * h * k2) * direction
            k4 = field(p + h * k3) * direction
            step_vec = (h / 6.0) * (k1 + 2 * k2 + 2 * k3 + k4)
            moved = np.linalg.norm(step_vec, axis=1) > 1e-12
            new_p = p + step_vec
            ok = inside(new_p) & moved
            good = idx[ok]
            pts[good] = new_p[ok]
            buf[good, counts[good]] = new_p[ok]
            counts[good] += 1
            alive[idx[~ok]] = False
        if _obs_on:
            obs.counter("streamline.rk4_steps", steps)
            obs.counter("streamline.seed_advances", advanced)
        return buf, counts

    with obs.span(
        "streamline.integrate",
        seeds=int(seeds.shape[0]),
        bidirectional=bool(bidirectional),
    ) as _span:
        buf_f, counts_f = march(+1.0)
        lines = []
        if not bidirectional:
            for i in range(n_seeds):
                if counts_f[i] >= 2:
                    lines.append(buf_f[i, : counts_f[i]].copy())
        else:
            buf_b, counts_b = march(-1.0)
            for i in range(n_seeds):
                # upstream half reversed (seed point dropped) + downstream
                if counts_b[i] - 1 + counts_f[i] >= 2:
                    lines.append(
                        np.concatenate(
                            [buf_b[i, 1 : counts_b[i]][::-1], buf_f[i, : counts_f[i]]]
                        )
                    )
        if _obs_on:
            n_points = int(sum(line.shape[0] for line in lines))
            obs.counter("streamline.points", n_points)
            _span.set(lines=len(lines), points=n_points)
    return lines


def streamlines_to_polydata(
    lines: List[np.ndarray],
    volume: Optional[ImageData] = None,
    vector_name: Optional[str] = None,
) -> PolyData:
    """Pack streamline polylines into one PolyData.

    When *volume*/*vector_name* are given, per-point scalars are set to
    the local field speed (for colormapping lines by wind speed).
    """
    lines = [np.atleast_2d(l) for l in lines if len(l) >= 2]
    if not lines:
        return PolyData(np.zeros((0, 3)))
    points = np.concatenate(lines)
    offsets = np.cumsum([0] + [len(l) for l in lines[:-1]])
    connectivity = [np.arange(len(l)) + off for l, off in zip(lines, offsets)]
    scalars = None
    if volume is not None and vector_name is not None:
        vec = volume.sample_vector(points, vector_name)
        scalars = np.linalg.norm(vec, axis=1)
    return PolyData(points, lines=connectivity, scalars=scalars)


def plane_seed_grid(
    volume: ImageData,
    axis: int,
    world_coord: float,
    n_u: int = 12,
    n_v: int = 12,
    margin: float = 0.05,
) -> np.ndarray:
    """A regular grid of seed points on an axis-aligned plane."""
    if axis not in (0, 1, 2):
        raise RenderingError("axis must be 0, 1 or 2")
    bounds = volume.bounds()
    other = [a for a in range(3) if a != axis]
    seeds = np.empty((n_u * n_v, 3), dtype=np.float64)
    lo_u, hi_u = bounds[2 * other[0]], bounds[2 * other[0] + 1]
    lo_v, hi_v = bounds[2 * other[1]], bounds[2 * other[1] + 1]
    span_u, span_v = hi_u - lo_u, hi_v - lo_v
    us = np.linspace(lo_u + margin * span_u, hi_u - margin * span_u, n_u)
    vs = np.linspace(lo_v + margin * span_v, hi_v - margin * span_v, n_v)
    gu, gv = np.meshgrid(us, vs, indexing="ij")
    seeds[:, axis] = world_coord
    seeds[:, other[0]] = gu.reshape(-1)
    seeds[:, other[1]] = gv.reshape(-1)
    return seeds
