"""Vector glyphs (arrows) for the Vector slicer plot.

Each glyph is a shaft polyline plus a two-stroke arrowhead oriented in
the glyph's own plane.  Glyph length scales with local field magnitude,
clamped so dense grids stay readable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.rendering.geometry import PolyData
from repro.rendering.image_data import ImageData
from repro.util.errors import RenderingError


def arrow_glyphs(
    points: np.ndarray,
    vectors: np.ndarray,
    scale: float = 1.0,
    max_length: Optional[float] = None,
    head_fraction: float = 0.3,
) -> PolyData:
    """Build arrow glyphs at *points* along *vectors*.

    Returns PolyData whose ``lines`` hold one 5-point polyline per
    glyph: tail → tip → left barb → tip → right barb; per-point scalars
    carry the vector magnitude for colormapping.
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
    if points.shape != vectors.shape or points.shape[1] != 3:
        raise RenderingError("points and vectors must both be (n, 3)")
    magnitude = np.linalg.norm(vectors, axis=1)
    keep = magnitude > 1e-12
    points, vectors, magnitude = points[keep], vectors[keep], magnitude[keep]
    n = points.shape[0]
    if n == 0:
        return PolyData(np.zeros((0, 3)))

    lengths = magnitude * scale
    if max_length is not None:
        lengths = np.minimum(lengths, max_length)
    direction = vectors / magnitude[:, None]
    tips = points + direction * lengths[:, None]

    # barbs lie in the plane spanned by the direction and a reference
    # vector least aligned with it
    ref = np.where(
        np.abs(direction[:, 2:3]) < 0.9,
        np.array([[0.0, 0.0, 1.0]]),
        np.array([[0.0, 1.0, 0.0]]),
    )
    side = np.cross(direction, ref)
    side /= np.maximum(np.linalg.norm(side, axis=1, keepdims=True), 1e-30)
    head = lengths[:, None] * head_fraction
    left = tips - direction * head + side * head * 0.5
    right = tips - direction * head - side * head * 0.5

    # vertex layout per glyph: [tail, tip, left, right]
    all_points = np.concatenate([points, tips, left, right])
    scalars = np.tile(magnitude, 4)
    lines = []
    for i in range(n):
        tail, tip, lf, rt = i, n + i, 2 * n + i, 3 * n + i
        lines.append(np.array([tail, tip, lf, tip, rt], dtype=np.intp))
    return PolyData(all_points, lines=lines, scalars=scalars)


def slice_plane_glyphs(
    volume: ImageData,
    vector_name: str,
    axis: int,
    world_coord: float,
    stride: int = 4,
    scale: Optional[float] = None,
) -> PolyData:
    """Arrow glyphs sampled on a regular sub-grid of a slice plane.

    *stride* controls glyph density (every stride-th grid point).  The
    default *scale* targets glyphs about ``stride`` cells long at the
    field's 95th-percentile magnitude.
    """
    if axis not in (0, 1, 2):
        raise RenderingError("axis must be 0, 1 or 2")
    if stride < 1:
        raise RenderingError("stride must be >= 1")
    other = [a for a in range(3) if a != axis]
    coords_u = volume.axis_coordinates(other[0])[::stride]
    coords_v = volume.axis_coordinates(other[1])[::stride]
    gu, gv = np.meshgrid(coords_u, coords_v, indexing="ij")
    pts = np.empty((gu.size, 3), dtype=np.float64)
    pts[:, axis] = world_coord
    pts[:, other[0]] = gu.reshape(-1)
    pts[:, other[1]] = gv.reshape(-1)
    vectors = volume.sample_vector(pts, vector_name)
    # project vectors into the slice plane so glyphs stay on it
    vectors[:, axis] = 0.0
    if scale is None:
        speeds = np.linalg.norm(vectors, axis=1)
        ref = float(np.percentile(speeds, 95)) if speeds.size else 1.0
        cell = volume.spacing[other[0]]
        scale = stride * cell / max(ref, 1e-12)
    return arrow_glyphs(pts, vectors, scale=scale)
