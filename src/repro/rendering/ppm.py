"""Binary PPM/PGM image I/O.

The only image format simple enough to implement in a few lines with no
external dependencies, and sufficient for the examples and benchmarks
to persist rendered frames (and for tests to round-trip them).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.util.errors import RenderingError

PathLike = Union[str, Path]


def ppm_bytes(image: np.ndarray) -> bytes:
    """Encode an ``(h, w, 3)`` uint8 array as binary PPM (P6) bytes.

    The serving layer ships frames as these payloads: the encoding is
    deterministic, so equal framebuffers produce byte-identical
    responses (the coalescing fan-out contract).
    """
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise RenderingError(f"ppm_bytes expects (h, w, 3) uint8, got {image.shape} {image.dtype}")
    height, width = image.shape[:2]
    header = f"P6\n{width} {height}\n255\n".encode("ascii")
    return header + np.ascontiguousarray(image).tobytes()


def write_ppm(path: PathLike, image: np.ndarray) -> None:
    """Write an ``(h, w, 3)`` uint8 array as binary PPM (P6)."""
    with open(path, "wb") as handle:
        handle.write(ppm_bytes(image))


def write_pgm(path: PathLike, image: np.ndarray) -> None:
    """Write an ``(h, w)`` uint8 array as binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2 or image.dtype != np.uint8:
        raise RenderingError(f"write_pgm expects (h, w) uint8, got {image.shape} {image.dtype}")
    height, width = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{width} {height}\n255\n".encode("ascii"))
        handle.write(np.ascontiguousarray(image).tobytes())


def read_ppm(path: PathLike) -> np.ndarray:
    """Read a binary PPM (P6) or PGM (P5) written by this module."""
    with open(path, "rb") as handle:
        blob = handle.read()
    # header: magic, width, height, maxval separated by whitespace
    parts = []
    pos = 0
    while len(parts) < 4:
        while pos < len(blob) and blob[pos : pos + 1].isspace():
            pos += 1
        if blob[pos : pos + 1] == b"#":  # comment line
            while pos < len(blob) and blob[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(blob) and not blob[pos : pos + 1].isspace():
            pos += 1
        parts.append(blob[start:pos])
    pos += 1  # single whitespace after maxval
    magic = parts[0].decode("ascii")
    width, height, maxval = int(parts[1]), int(parts[2]), int(parts[3])
    if maxval != 255:
        raise RenderingError(f"unsupported maxval {maxval}")
    if magic == "P6":
        data = np.frombuffer(blob, dtype=np.uint8, count=width * height * 3, offset=pos)
        return data.reshape(height, width, 3).copy()
    if magic == "P5":
        data = np.frombuffer(blob, dtype=np.uint8, count=width * height, offset=pos)
        return data.reshape(height, width).copy()
    raise RenderingError(f"unsupported magic {magic!r}")
