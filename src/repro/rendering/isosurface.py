"""Isosurface extraction via marching tetrahedra.

VTK's isosurface filter (``vtkContourFilter``) implements marching
cubes; we implement the marching-*tetrahedra* variant, which produces
an equivalent watertight surface from the same structured data with a
16-case table small enough to derive (and property-test) from first
principles rather than transcribe.

Every cube cell is split into six tetrahedra that all share the cube's
main diagonal (corner 0 → corner 6), which makes the decomposition
consistent across neighbouring cells and therefore crack-free.  Within
each tetrahedron the surface crossing is found by linear interpolation
along the cut edges.  The implementation is vectorized across *all*
cells for each of the six tetrahedra in turn — there is no per-cell
Python loop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.rendering.geometry import PolyData
from repro.rendering.image_data import ImageData
from repro.util.errors import RenderingError

#: cube corner offsets, bit 0 → +x, bit 1 → +y, bit 2 → +z
_CORNER_OFFSETS = np.array(
    [
        [0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0],
        [0, 0, 1], [1, 0, 1], [0, 1, 1], [1, 1, 1],
    ],
    dtype=np.intp,
)

#: six tetrahedra per cube, all containing the 0–7 body diagonal
#: (corner indices into _CORNER_OFFSETS)
_CUBE_TETS = np.array(
    [
        [0, 1, 3, 7],
        [0, 3, 2, 7],
        [0, 2, 6, 7],
        [0, 6, 4, 7],
        [0, 4, 5, 7],
        [0, 5, 1, 7],
    ],
    dtype=np.intp,
)

#: tetrahedron edges as (vertex, vertex) pairs; edge index = row
_TET_EDGES = np.array(
    [[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]], dtype=np.intp
)

#: case (4-bit inside mask) → list of triangles, each a triple of edge ids.
#: Derived by hand; see module docstring.  Winding is not guaranteed
#: consistent (the renderer shades double-sided).
_TET_TRIANGLES: Dict[int, List[Tuple[int, int, int]]] = {
    0: [],
    1: [(0, 1, 2)],
    2: [(0, 3, 4)],
    3: [(1, 2, 4), (1, 4, 3)],
    4: [(1, 3, 5)],
    5: [(0, 2, 5), (0, 5, 3)],
    6: [(0, 4, 5), (0, 5, 1)],
    7: [(2, 4, 5)],
    8: [(2, 4, 5)],
    9: [(0, 1, 5), (0, 5, 4)],
    10: [(0, 3, 5), (0, 5, 2)],
    11: [(1, 3, 5)],
    12: [(1, 3, 4), (1, 4, 2)],
    13: [(0, 3, 4)],
    14: [(0, 1, 2)],
    15: [],
}


def marching_tetrahedra(
    volume: ImageData,
    isovalue: float,
    array_name: Optional[str] = None,
    deduplicate: bool = True,
    parallel=None,
    accelerate: bool = True,
) -> PolyData:
    """Extract the *isovalue* surface of a scalar array as triangles.

    Parameters
    ----------
    volume:
        The structured grid; NaNs are treated as "outside" at any
        isovalue, so masked regions simply produce no surface.
    isovalue:
        The level-set value.
    array_name:
        Scalar array to contour (defaults to the active scalars).
    deduplicate:
        Merge coincident vertices so shared edges produce shared points
        (needed for smooth point normals).  Costs one vertex sort.
    parallel:
        Optional :class:`repro.parallel.ParallelConfig`; defaults to
        the ambient config.  When enabled (and *deduplicate* is on) the
        volume is partitioned into z-slabs extracted on worker
        processes, with an identical final surface (vertices are
        deduplicated and triangles canonically ordered either way).
    accelerate:
        Preselect candidate cells with the volume's min/max tile
        pyramid: only cells whose tile straddles the isovalue are
        classified.  A skipped cell provably yields no triangles for
        any of its six tetrahedra, so the output is array-identical
        with acceleration on or off (the flag exists for differential
        tests and ablation benchmarks).

    Returns
    -------
    PolyData with ``scalars`` set to the isovalue at every point.
    """
    name = array_name or volume.active_scalars_name
    scalars = volume.get_array(name)
    if scalars.ndim != 3:
        raise RenderingError("marching_tetrahedra requires a scalar array")
    nx, ny, nz = scalars.shape
    if min(nx, ny, nz) < 2:
        return PolyData(np.zeros((0, 3)))

    from repro.parallel.config import get_config

    config = parallel if parallel is not None else get_config()
    if deduplicate and config.enabled:
        from repro.parallel.kernels import parallel_marching_tetrahedra

        return parallel_marching_tetrahedra(
            volume, isovalue, array_name=array_name, config=config,
            accelerate=accelerate,
        )

    n_cells = (nx - 1) * (ny - 1) * (nz - 1)
    with obs.span(
        "isosurface.marching_tetrahedra",
        cells=int(n_cells),
        isovalue=float(isovalue),
    ) as _span:
        candidates = (
            candidate_cells(volume, float(isovalue), name) if accelerate else None
        )
        if candidates is not None and obs.enabled():
            obs.counter(
                "isosurface.cells.skipped",
                int(n_cells - np.count_nonzero(candidates)),
            )
        values = _prepared_values(scalars)
        tri_pts = _slab_triangle_points(
            values, float(isovalue), 0, nz - 1, candidates=candidates
        )
        surface = _finalize_surface(
            volume, tri_pts, float(isovalue), deduplicate, n_cells, _span,
        )
    return surface


def candidate_cells(
    volume: ImageData, isovalue: float, array_name: str
) -> np.ndarray:
    """Conservative boolean cell mask of isovalue-straddling candidates.

    Uses the volume's cached min/max pyramid: a ``False`` cell has no
    corner above the isovalue or none at-or-below it, so every one of
    its tetrahedra classifies to the empty case.  Exact — the pyramid
    stores corner-value bounds and treats non-finite voxels as
    unbounded-below, matching :func:`_prepared_values`.
    """
    pyramid = volume.min_max_pyramid(array_name)
    return pyramid.cell_mask(pyramid.straddling(isovalue))


def _prepared_values(scalars: np.ndarray) -> np.ndarray:
    """Scalars with NaNs mapped to -inf ("outside" at any isovalue)."""
    return np.where(np.isfinite(scalars), scalars, -np.inf).astype(np.float64)


def _slab_triangle_points(
    values: np.ndarray,
    isovalue: float,
    z0: int,
    z1: int,
    candidates: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Triangle corner points (index coords) for cells with z in [z0, z1).

    Works on the grid slab ``values[:, :, z0:z1+1]`` — every cell's
    corner values and edge interpolation are computed exactly as in a
    full-volume pass, so concatenating slab outputs covers each cell
    once with bitwise-identical coordinates.  *candidates* (optional)
    is a full-grid boolean cell mask from :func:`candidate_cells`;
    cells outside it are never classified.  Because excluded cells
    produce no triangles, and candidates are visited in the same
    ascending flat order as the dense pass, the concatenated output is
    array-identical either way.  Returns ``(n_tri, 3, 3)`` (possibly
    empty).
    """
    nx, ny, nz = values.shape
    cx, cy = nx - 1, ny - 1
    if not 0 <= z0 < z1 <= nz - 1:
        raise RenderingError(f"bad z-slab [{z0}, {z1}) for {nz - 1} cell layers")
    cz = z1 - z0
    slab = values[:, :, z0 : z1 + 1]

    if candidates is None:
        # corner values for every slab cell: shape (8, cx, cy, cz)
        corner_vals = np.empty((8, cx, cy, cz), dtype=np.float64)
        for c, (ox, oy, oz) in enumerate(_CORNER_OFFSETS):
            corner_vals[c] = slab[ox : ox + cx, oy : oy + cy, oz : oz + cz]
        corner_vals = corner_vals.reshape(8, -1)  # (8, n_cells)

        base_idx = np.stack(
            np.meshgrid(np.arange(cx), np.arange(cy), np.arange(z0, z1), indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)  # (n_cells, 3) integer cell origins
    else:
        if candidates.shape != (cx, cy, nz - 1):
            raise RenderingError(
                f"candidate mask shape {candidates.shape} != cell grid "
                f"{(cx, cy, nz - 1)}"
            )
        # ascending flat indices of candidate cells in this slab — same
        # C-order flattening as the dense meshgrid above, so downstream
        # per-code grouping sees cells in an identical order
        cand = np.nonzero(candidates[:, :, z0:z1].reshape(-1))[0]
        if cand.size == 0:
            return np.zeros((0, 3, 3), dtype=np.float64)
        cyz = cy * cz
        ci = cand // cyz
        rem = cand - ci * cyz
        cj = rem // cz
        ck = rem - cj * cz
        corner_vals = np.empty((8, cand.size), dtype=np.float64)
        for c, (ox, oy, oz) in enumerate(_CORNER_OFFSETS):
            corner_vals[c] = slab[ci + ox, cj + oy, ck + oz]
        base_idx = np.stack([ci, cj, ck + z0], axis=1)

    triangles_xyz: List[np.ndarray] = []
    for tet in _CUBE_TETS:
        tet_vals = corner_vals[tet]  # (4, n_cells)
        inside = tet_vals > isovalue
        codes = (
            inside[0].astype(np.uint8)
            | (inside[1].astype(np.uint8) << 1)
            | (inside[2].astype(np.uint8) << 2)
            | (inside[3].astype(np.uint8) << 3)
        )
        active = np.nonzero((codes != 0) & (codes != 15))[0]
        if active.size == 0:
            continue
        active_codes = codes[active]
        present = [int(c) for c in np.unique(active_codes)]

        # interpolate the crossing point on every edge referenced by a
        # present case, for the whole active set at once — interpolation
        # is elementwise, so each cell's value is bit-identical whether
        # computed here or in a tiny per-case batch
        needed = sorted(
            {e for code in present for tri in _TET_TRIANGLES[code] for e in tri}
        )
        edge_points = np.empty((len(_TET_EDGES), active.size, 3), dtype=np.float64)
        for edge_id in needed:
            va_local, vb_local = _TET_EDGES[edge_id]
            ca, cb = tet[va_local], tet[vb_local]
            fa = corner_vals[ca][active]
            fb = corner_vals[cb][active]
            # cells whose case doesn't reference this edge may have both
            # corners at -inf (masked data); their rows are never
            # gathered, so silence the inf-inf=NaN they produce here
            with np.errstate(invalid="ignore", divide="ignore"):
                denom = fb - fa
                t = (isovalue - fa) / np.where(np.abs(denom) < 1e-300, 1.0, denom)
            t = np.clip(np.where(np.isfinite(t), t, 0.5), 0.0, 1.0)
            pa = base_idx[active] + _CORNER_OFFSETS[ca]
            pb = base_idx[active] + _CORNER_OFFSETS[cb]
            edge_points[edge_id] = pa + (pb - pa) * t[:, None]

        # assemble the tet's triangles with one gather, in the exact
        # order of the per-case loop: ascending case code, triangles in
        # table order, cells ascending
        pos_parts: List[np.ndarray] = []
        edge_parts: List[np.ndarray] = []
        for code in present:
            tris = _TET_TRIANGLES[code]
            if not tris:
                continue
            sel = np.nonzero(active_codes == code)[0]
            for tri_edges in tris:
                pos_parts.append(sel)
                edge_parts.append(
                    np.broadcast_to(
                        np.array(tri_edges, dtype=np.intp), (sel.size, 3)
                    )
                )
        if not pos_parts:
            continue
        pos_all = np.concatenate(pos_parts)
        edges_all = np.concatenate(edge_parts)
        triangles_xyz.append(edge_points[edges_all, pos_all[:, None]])  # (n, 3, 3)

    if not triangles_xyz:
        return np.zeros((0, 3, 3), dtype=np.float64)
    return np.concatenate(triangles_xyz)  # (n_tri, 3 corners, 3 index-coords)


def _unique_rows(rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``np.unique(rows, axis=0, return_inverse=True)``, but faster.

    ``np.unique(axis=0)`` sorts a structured view with generic
    comparisons; three type-specialized integer key sorts via
    ``np.lexsort`` produce the same row-lexicographic unique array and
    inverse mapping in a fraction of the time.  Exact — both orderings
    compare rows column-by-column numerically.
    """
    if rows.shape[0] == 0:
        return rows.copy(), np.zeros(0, dtype=np.intp)
    order = np.lexsort((rows[:, 2], rows[:, 1], rows[:, 0]))
    ranked = rows[order]
    boundary = np.empty(ranked.shape[0], dtype=bool)
    boundary[0] = True
    np.any(ranked[1:] != ranked[:-1], axis=1, out=boundary[1:])
    group_of_rank = np.cumsum(boundary) - 1
    inverse = np.empty(order.shape[0], dtype=np.intp)
    inverse[order] = group_of_rank
    return ranked[boundary], inverse


def _finalize_surface(
    volume: ImageData,
    tri_pts: np.ndarray,
    isovalue: float,
    deduplicate: bool,
    n_cells: int,
    _span,
) -> PolyData:
    """Build the output PolyData from raw triangle corner points.

    With *deduplicate* the result is canonical: vertices come out of
    ``np.unique`` sorted and triangle rows are lexsorted, so serial and
    slab-merged extractions of the same volume are array-identical.
    """
    if tri_pts.shape[0] == 0:
        return PolyData(np.zeros((0, 3)))
    flat = tri_pts.reshape(-1, 3)

    if deduplicate:
        # quantize to merge float-identical shared-edge vertices
        quant = np.round(flat * 2.0**20).astype(np.int64)
        unique, inverse = _unique_rows(quant)
        points_index = unique.astype(np.float64) / 2.0**20
        triangles = inverse.reshape(-1, 3)
        # drop degenerate triangles (two corners merged)
        good = (
            (triangles[:, 0] != triangles[:, 1])
            & (triangles[:, 1] != triangles[:, 2])
            & (triangles[:, 0] != triangles[:, 2])
        )
        triangles = triangles[good]
        # canonical triangle order, independent of generation order
        order = np.lexsort((triangles[:, 2], triangles[:, 1], triangles[:, 0]))
        triangles = triangles[order]
    else:
        points_index = flat
        triangles = np.arange(flat.shape[0], dtype=np.intp).reshape(-1, 3)

    points_world = volume.index_to_world(points_index)
    scalars_out = np.full(points_world.shape[0], float(isovalue))
    if obs.enabled():
        obs.counter("isosurface.triangles", int(triangles.shape[0]))
        obs.counter("isosurface.cells", int(n_cells))
        if _span is not None:
            _span.set(
                triangles=int(triangles.shape[0]), points=int(points_world.shape[0])
            )
    return PolyData(points_world, triangles, scalars=scalars_out)


def color_surface_by_field(
    surface: PolyData,
    volume: ImageData,
    array_name: str,
    colormap,
    value_range: Optional[Tuple[float, float]] = None,
) -> PolyData:
    """Color an isosurface by sampling a *second* field at its points.

    This is the paper's Isosurface plot: "an isosurface derived from
    one variable's data volume and colored by the spatially
    correspondent values from a second variable's data volume."
    """
    if surface.n_points == 0:
        return surface
    sampled = volume.sample(surface.points, name=array_name)
    if value_range is None:
        finite = sampled[np.isfinite(sampled)]
        if finite.size == 0:
            raise RenderingError("second field has no finite values on the surface")
        value_range = (float(finite.min()), float(finite.max()))
    colors = colormap.map_scalars(sampled, *value_range)
    out = surface.with_colors(colors.astype(np.float32))
    return out.with_scalars(np.nan_to_num(sampled, nan=0.0))
