"""Perspective camera with interactive navigation and stereo support.

DV3D cells offer "navigation controls" and "active and passive 3D
stereo visualization support" (via VTK).  The camera here provides the
world→clip transform chain the rasterizer and ray caster share, the
orbit/zoom/pan/roll operations the interaction layer maps mouse drags
onto, and :meth:`Camera.stereo_pair` for left/right eye rendering.

Coordinate conventions: right-handed world space; camera looks from
``position`` toward ``focal_point`` with ``view_up`` approximately up.
NDC x/y in [-1, 1]; screen origin at the top-left pixel.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.util.errors import RenderingError


def _normalize(v: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(v))
    if norm < 1e-12:
        raise RenderingError("cannot normalize zero-length vector")
    return v / norm


@dataclass(frozen=True)
class Camera:
    """An immutable perspective camera; navigation returns new cameras."""

    position: Tuple[float, float, float] = (0.0, 0.0, 10.0)
    focal_point: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    view_up: Tuple[float, float, float] = (0.0, 1.0, 0.0)
    fov_degrees: float = 30.0
    near: float = 0.01
    far: float = 1000.0

    def __post_init__(self) -> None:
        if not 1.0 <= self.fov_degrees <= 170.0:
            raise RenderingError(f"fov {self.fov_degrees} out of range")
        if self.near <= 0 or self.far <= self.near:
            raise RenderingError(f"bad clip planes near={self.near} far={self.far}")
        if np.allclose(self.position, self.focal_point):
            raise RenderingError("camera position coincides with focal point")

    # -- basis ------------------------------------------------------------

    def basis(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Right-handed (right, up, forward) unit vectors."""
        pos = np.asarray(self.position, dtype=np.float64)
        foc = np.asarray(self.focal_point, dtype=np.float64)
        forward = _normalize(foc - pos)
        up_hint = np.asarray(self.view_up, dtype=np.float64)
        right = np.cross(forward, up_hint)
        if np.linalg.norm(right) < 1e-9:  # up parallel to view direction
            up_hint = np.array([0.0, 0.0, 1.0]) if abs(forward[2]) < 0.9 else np.array([0.0, 1.0, 0.0])
            right = np.cross(forward, up_hint)
        right = _normalize(right)
        up = _normalize(np.cross(right, forward))
        return right, up, forward

    @property
    def distance(self) -> float:
        return float(
            np.linalg.norm(np.asarray(self.focal_point) - np.asarray(self.position))
        )

    # -- transforms ----------------------------------------------------------

    def world_to_view(self, points: np.ndarray) -> np.ndarray:
        """World points (n, 3) → view space (x right, y up, z *forward*)."""
        right, up, forward = self.basis()
        rel = np.atleast_2d(points).astype(np.float64) - np.asarray(self.position)
        return np.stack([rel @ right, rel @ up, rel @ forward], axis=1)

    def view_to_ndc(self, view: np.ndarray) -> np.ndarray:
        """View space → NDC (x, y in [-1,1] inside frustum, z = view depth).

        Points at or behind the eye plane get NaN x/y (callers clip).
        """
        half = np.tan(np.radians(self.fov_degrees) / 2.0)
        z = view[:, 2]
        with np.errstate(divide="ignore", invalid="ignore"):
            x = view[:, 0] / (z * half)
            y = view[:, 1] / (z * half)
        bad = z <= self.near * 0.5
        x = np.where(bad, np.nan, x)
        y = np.where(bad, np.nan, y)
        return np.stack([x, y, z], axis=1)

    def project(self, points: np.ndarray, width: int, height: int) -> np.ndarray:
        """World points → ``(n, 3)`` of (pixel_x, pixel_y, view_depth).

        Pixel y grows downward.  The aspect ratio is handled by scaling
        NDC x by height/width so square pixels are preserved.
        """
        ndc = self.view_to_ndc(self.world_to_view(points))
        aspect = width / max(height, 1)
        px = (ndc[:, 0] / aspect * 0.5 + 0.5) * (width - 1)
        py = (0.5 - ndc[:, 1] * 0.5) * (height - 1)
        return np.stack([px, py, ndc[:, 2]], axis=1)

    def pixel_rays(self, width: int, height: int) -> Tuple[np.ndarray, np.ndarray]:
        """Ray origins/directions for every pixel → ``((h*w, 3), (h*w, 3))``.

        Directions are unit length; origins are all the camera position.
        Used by the volume ray caster.
        """
        right, up, forward = self.basis()
        half = np.tan(np.radians(self.fov_degrees) / 2.0)
        aspect = width / max(height, 1)
        xs = (np.arange(width) + 0.5) / width * 2.0 - 1.0
        ys = 1.0 - (np.arange(height) + 0.5) / height * 2.0
        gx, gy = np.meshgrid(xs * half * aspect, ys * half)
        dirs = (
            forward[None, None, :]
            + gx[..., None] * right[None, None, :]
            + gy[..., None] * up[None, None, :]
        ).reshape(-1, 3)
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        origins = np.broadcast_to(np.asarray(self.position, dtype=np.float64), dirs.shape)
        return origins, dirs

    # -- navigation (each returns a new Camera) --------------------------------

    def orbit(self, d_azimuth_deg: float, d_elevation_deg: float) -> "Camera":
        """Rotate the position around the focal point (mouse-drag rotate)."""
        right, up, _forward = self.basis()
        pos = np.asarray(self.position) - np.asarray(self.focal_point)

        def rotate(v: np.ndarray, axis: np.ndarray, angle_deg: float) -> np.ndarray:
            angle = np.radians(angle_deg)
            axis = _normalize(axis)
            return (
                v * np.cos(angle)
                + np.cross(axis, v) * np.sin(angle)
                + axis * (axis @ v) * (1 - np.cos(angle))
            )

        pos = rotate(pos, up, d_azimuth_deg)
        pos = rotate(pos, right, d_elevation_deg)
        new_up = rotate(np.asarray(self.view_up, dtype=np.float64), right, d_elevation_deg)
        return replace(
            self,
            position=tuple(pos + np.asarray(self.focal_point)),
            view_up=tuple(new_up),
        )

    def zoom(self, factor: float) -> "Camera":
        """Dolly toward (>1) or away from (<1) the focal point."""
        if factor <= 0:
            raise RenderingError("zoom factor must be positive")
        pos = np.asarray(self.position)
        foc = np.asarray(self.focal_point)
        new_pos = foc + (pos - foc) / factor
        if np.linalg.norm(new_pos - foc) < self.near:
            return self
        return replace(self, position=tuple(new_pos))

    def pan(self, dx: float, dy: float) -> "Camera":
        """Translate position and focal point in the view plane."""
        right, up, _ = self.basis()
        shift = dx * right + dy * up
        return replace(
            self,
            position=tuple(np.asarray(self.position) + shift),
            focal_point=tuple(np.asarray(self.focal_point) + shift),
        )

    def roll(self, angle_deg: float) -> "Camera":
        """Rotate view_up around the view direction."""
        _right, up, forward = self.basis()
        angle = np.radians(angle_deg)
        new_up = up * np.cos(angle) + np.cross(forward, up) * np.sin(angle)
        return replace(self, view_up=tuple(new_up))

    # -- stereo -----------------------------------------------------------------

    def stereo_pair(self, eye_separation_fraction: float = 0.03) -> Tuple["Camera", "Camera"]:
        """(left, right) cameras offset along the right axis, converging
        on the focal point — the classic toe-in stereo rig VTK provides."""
        right, _up, _forward = self.basis()
        offset = right * (self.distance * eye_separation_fraction / 2.0)
        pos = np.asarray(self.position)
        left = replace(self, position=tuple(pos - offset))
        right_cam = replace(self, position=tuple(pos + offset))
        return left, right_cam

    # -- fitting ------------------------------------------------------------------

    @staticmethod
    def fit_bounds(
        bounds: Tuple[float, float, float, float, float, float],
        direction: Tuple[float, float, float] = (1.0, -1.2, 0.8),
        fov_degrees: float = 30.0,
        margin: float = 1.25,
    ) -> "Camera":
        """A camera framing an axis-aligned bounding box from *direction*."""
        center = np.array(
            [(bounds[0] + bounds[1]) / 2, (bounds[2] + bounds[3]) / 2, (bounds[4] + bounds[5]) / 2]
        )
        radius = 0.5 * float(
            np.sqrt(
                (bounds[1] - bounds[0]) ** 2
                + (bounds[3] - bounds[2]) ** 2
                + (bounds[5] - bounds[4]) ** 2
            )
        )
        radius = max(radius, 1e-6)
        dist = radius * margin / np.tan(np.radians(fov_degrees) / 2.0)
        dirv = _normalize(np.asarray(direction, dtype=np.float64))
        position = center - dirv * dist
        return Camera(
            position=tuple(position),
            focal_point=tuple(center),
            view_up=(0.0, 0.0, 1.0) if abs(dirv[2]) < 0.9 else (0.0, 1.0, 0.0),
            fov_degrees=fov_degrees,
            near=max(dist * 1e-3, 1e-6),
            far=dist + 10 * radius,
        )

    def state(self) -> Dict[str, object]:
        """Serializable configuration (hyperwall camera sync)."""
        return {
            "position": list(self.position),
            "focal_point": list(self.focal_point),
            "view_up": list(self.view_up),
            "fov_degrees": self.fov_degrees,
            "near": self.near,
            "far": self.far,
        }

    @staticmethod
    def from_state(state: Dict[str, object]) -> "Camera":
        return Camera(
            position=tuple(state["position"]),  # type: ignore[arg-type]
            focal_point=tuple(state["focal_point"]),  # type: ignore[arg-type]
            view_up=tuple(state["view_up"]),  # type: ignore[arg-type]
            fov_degrees=float(state["fov_degrees"]),  # type: ignore[arg-type]
            near=float(state["near"]),  # type: ignore[arg-type]
            far=float(state["far"]),  # type: ignore[arg-type]
        )
