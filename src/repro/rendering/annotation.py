"""Axis annotations: ticks and coordinate labels around the plot box.

DV3D cells carry geographic context: the base map below the volume plus
labeled axes so a scientist reads positions directly off the view.
This module generates tick geometry (small line segments along the box
edges) and the screen-space label placements the cell blends over the
frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.rendering.camera import Camera
from repro.rendering.geometry import PolyData
from repro.util.errors import RenderingError

Bounds = Tuple[float, float, float, float, float, float]


def nice_ticks(lo: float, hi: float, target_count: int = 5) -> np.ndarray:
    """Round tick positions covering [lo, hi] (the classic 1-2-5 ladder)."""
    if hi <= lo:
        raise RenderingError(f"bad tick range ({lo}, {hi})")
    span = hi - lo
    raw_step = span / max(target_count, 1)
    magnitude = 10.0 ** np.floor(np.log10(raw_step))
    for multiple in (1.0, 2.0, 5.0, 10.0):
        step = multiple * magnitude
        if span / step <= target_count + 1:
            break
    first = np.ceil(lo / step) * step
    ticks = np.arange(first, hi + step * 1e-9, step)
    return np.round(ticks, 10)


@dataclass(frozen=True)
class AxisLabel:
    """One tick's label and its world-space anchor point."""

    text: str
    world: Tuple[float, float, float]


def _format_geo(value: float, axis: int) -> str:
    if axis == 0:  # longitude
        lon = value % 360.0
        if lon == 0 or lon == 180:
            return f"{lon:.0f}"
        return f"{lon:.0f}E" if lon < 180 else f"{360 - lon:.0f}W"
    if axis == 1:  # latitude
        if value == 0:
            return "EQ"
        return f"{abs(value):.0f}{'N' if value > 0 else 'S'}"
    return f"{value:g}"


def axis_annotations(
    bounds: Bounds,
    target_count: int = 5,
    tick_fraction: float = 0.02,
) -> Tuple[PolyData, List[AxisLabel]]:
    """Tick geometry + labels for the x (lon) and y (lat) box edges.

    Ticks are drawn along the front-bottom edges of the bounding box
    (y = ymin for longitude ticks, x = xmin for latitude ticks), poking
    outward; labels anchor just beyond the tick tips.
    """
    x0, x1, y0, y1, z0, _z1 = bounds
    if x1 <= x0 or y1 <= y0:
        raise RenderingError(f"degenerate bounds {bounds!r}")
    tick_len = tick_fraction * max(x1 - x0, y1 - y0)
    points: List[np.ndarray] = []
    lines: List[np.ndarray] = []
    labels: List[AxisLabel] = []

    def add_tick(p_from: Sequence[float], p_to: Sequence[float]) -> None:
        index = len(points)
        points.append(np.asarray(p_from, dtype=np.float64))
        points.append(np.asarray(p_to, dtype=np.float64))
        lines.append(np.array([index, index + 1], dtype=np.intp))

    for x in nice_ticks(x0, x1, target_count):
        add_tick((x, y0, z0), (x, y0 - tick_len, z0))
        labels.append(AxisLabel(_format_geo(float(x), 0), (float(x), y0 - 2.5 * tick_len, z0)))
    for y in nice_ticks(y0, y1, target_count):
        add_tick((x0, y, z0), (x0 - tick_len, y, z0))
        labels.append(AxisLabel(_format_geo(float(y), 1), (x0 - 2.5 * tick_len, float(y), z0)))

    if not points:
        return PolyData(np.zeros((0, 3))), []
    return PolyData(np.stack(points), lines=lines), labels


def project_labels(
    labels: List[AxisLabel],
    camera: Camera,
    width: int,
    height: int,
) -> List[Tuple[str, int, int]]:
    """Screen placements ``(text, row, col)`` for visible labels."""
    if not labels:
        return []
    world = np.array([label.world for label in labels], dtype=np.float64)
    projected = camera.project(world, width, height)
    out: List[Tuple[str, int, int]] = []
    for label, (px, py, depth) in zip(labels, projected):
        if not (np.isfinite(px) and np.isfinite(py)) or depth <= 0:
            continue
        if -50 <= px <= width + 50 and -20 <= py <= height + 20:
            out.append((label.text, int(round(py)), int(round(px))))
    return out
