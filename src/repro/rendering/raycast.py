"""Volume rendering by front-to-back ray casting.

The Volume render plot "maps variable values within a data volume to
opacity and color".  This is the classic emission–absorption ray
caster: per-pixel rays are intersected with the volume's bounding box,
the scalar field is trilinearly sampled at fixed world-space steps, the
transfer function converts samples to (color, opacity), and samples
composite front-to-back with early termination.

Vectorization strategy (per the session guides): all rays advance in
lock-step through one Python loop over *steps*; each step samples every
still-active ray with a single ``map_coordinates`` call.  Rays whose
transmittance drops below a threshold, or that pass behind already-
rasterized opaque geometry (the framebuffer depth), are retired from
the active set.

Empty-space skipping: a cached per-tile min/max pyramid
(:mod:`repro.rendering.accel`) marks tiles whose value bounds fall
entirely outside the opacity transfer function's support — every
sample in such a tile has opacity *exactly* zero, so it is never
evaluated.  Rays are clipped to the occupied region's bounding box
(skipping leading/trailing all-blocked runs without changing the
fixed ``t_enter + k*step`` sample positions), and inside the box each
step only samples rays currently inside a potentially-contributing
tile.  Skipped samples would have contributed nothing byte-for-byte,
so the output is bitwise identical with skipping on or off.

Tiling: :func:`raycast_rows` renders any horizontal band of the image.
Every per-ray quantity is computed strictly elementwise (no batched
BLAS reductions whose rounding could depend on cohort size), so a band
render is bitwise identical to the same rows of a full-frame render —
the invariant the process-parallel path in :mod:`repro.parallel`
depends on.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import ndimage

from repro import obs
from repro.rendering.camera import Camera
from repro.rendering.image_data import ImageData
from repro.rendering.transfer_function import TransferFunction
from repro.util.errors import RenderingError

_MIN_TRANSMITTANCE = 5e-3


def _ray_box_intersection(
    origins: np.ndarray,
    directions: np.ndarray,
    bounds: Tuple[float, float, float, float, float, float],
) -> Tuple[np.ndarray, np.ndarray]:
    """Slab-method intersection → (t_enter, t_exit); misses give t_enter > t_exit."""
    t_enter = np.full(origins.shape[0], -np.inf)
    t_exit = np.full(origins.shape[0], np.inf)
    for axis in range(3):
        lo, hi = bounds[2 * axis], bounds[2 * axis + 1]
        o = origins[:, axis]
        d = directions[:, axis]
        parallel = np.abs(d) < 1e-300
        with np.errstate(divide="ignore", invalid="ignore"):
            t0 = (lo - o) / d
            t1 = (hi - o) / d
        near = np.minimum(t0, t1)
        far = np.maximum(t0, t1)
        # parallel rays hit iff origin inside the slab
        inside = (o >= lo) & (o <= hi)
        near = np.where(parallel, np.where(inside, -np.inf, np.inf), near)
        far = np.where(parallel, np.where(inside, np.inf, -np.inf), far)
        t_enter = np.maximum(t_enter, near)
        t_exit = np.minimum(t_exit, far)
    return t_enter, t_exit


def _rows_dot(vectors: np.ndarray, direction: np.ndarray) -> np.ndarray:
    """Per-row dot product with a fixed 3-vector, strictly elementwise.

    Equivalent to ``vectors @ direction`` but with a fixed evaluation
    order per row, so the result for any row is independent of how many
    other rows are in the batch (required for tile determinism).
    """
    return (
        vectors[:, 0] * direction[0]
        + vectors[:, 1] * direction[1]
        + vectors[:, 2] * direction[2]
    )


def _skip_setup(
    volume: ImageData,
    transfer: TransferFunction,
    name: str,
):
    """Empty-space-skipping state: (live-tile flat mask, tile shape, world box).

    Returns ``None`` when skipping is unavailable (degenerate volume),
    and ``(None, None, None)`` when *nothing* can contribute (opacity
    support empty, or every tile blocked).
    """
    if min(volume.dimensions) < 2:
        return None
    support = transfer.opacity_support()
    pyramid = volume.min_max_pyramid(name)
    level = pyramid.levels[0]
    if support is None:
        return (None, None, None)
    blocked = pyramid.blocked_outside(support[0], support[1])
    cell_bounds = pyramid.active_cell_bounds(~blocked)
    if cell_bounds is None:
        return (None, None, None)
    i0, i1, j0, j1, k0, k1 = cell_bounds
    lo_w = volume.index_to_world(np.array([i0, j0, k0], dtype=np.float64))
    hi_w = volume.index_to_world(np.array([i1, j1, k1], dtype=np.float64))
    box = (
        float(lo_w[0]), float(hi_w[0]),
        float(lo_w[1]), float(hi_w[1]),
        float(lo_w[2]), float(hi_w[2]),
    )
    return (~blocked).ravel(), level.shape, box


def raycast_rows(
    volume: ImageData,
    transfer: TransferFunction,
    camera: Camera,
    width: int,
    height: int,
    row0: int,
    row1: int,
    step_size: Optional[float] = None,
    array_name: Optional[str] = None,
    depth_limit: Optional[np.ndarray] = None,
    lighting: bool = True,
    light_direction: Tuple[float, float, float] = (0.4, -0.5, 0.8),
    empty_space_skipping: bool = True,
    _span=None,
) -> np.ndarray:
    """Render pixel rows ``[row0, row1)`` → ``(row1-row0, width, 4)`` RGBA.

    Rays are generated for the full ``width``×``height`` frame and the
    band is sliced out, so the band's pixels are bitwise identical to
    the same rows of :func:`raycast_volume`.  *depth_limit* (when
    given) is always the full ``(height, width)`` buffer.
    *empty_space_skipping* toggles the min/max-pyramid acceleration;
    the output is bitwise identical either way (the flag exists for
    differential tests and ablation benchmarks).
    """
    if width < 1 or height < 1:
        raise RenderingError("bad image size")
    if not 0 <= row0 < row1 <= height:
        raise RenderingError(f"bad row band [{row0}, {row1}) for height {height}")
    name = array_name or volume.active_scalars_name
    step = float(step_size) if step_size else float(min(volume.spacing))
    if step <= 0:
        raise RenderingError("step_size must be positive")

    all_origins, all_dirs = camera.pixel_rays(width, height)
    band = slice(row0 * width, row1 * width)
    origins = all_origins[band]
    dirs = all_dirs[band]
    n_rays = origins.shape[0]
    t_enter, t_exit = _ray_box_intersection(origins, dirs, volume.bounds())
    t_enter = np.maximum(t_enter, camera.near)

    if depth_limit is not None:
        if depth_limit.shape != (height, width):
            raise RenderingError("depth_limit shape mismatch")
        # convert view-space depth (distance along forward axis) to ray t
        _right, _up, forward = camera.basis()
        cos = _rows_dot(dirs, forward)
        with np.errstate(divide="ignore", invalid="ignore"):
            t_geom = depth_limit[row0:row1].reshape(-1) / np.maximum(cos, 1e-9)
        t_exit = np.minimum(t_exit, np.where(np.isfinite(t_geom), t_geom, np.inf))

    color = np.zeros((n_rays, 3), dtype=np.float64)
    transmittance = np.ones(n_rays, dtype=np.float64)

    # -- empty-space skipping setup --------------------------------------
    live_flat: Optional[np.ndarray] = None
    tile_shape: Optional[Tuple[int, int, int]] = None
    t_start, t_limit = t_enter, t_exit
    skip = _skip_setup(volume, transfer, name) if empty_space_skipping else None
    nothing_contributes = False
    if skip is not None:
        live_flat, tile_shape, occupied_box = skip
        if live_flat is None:
            nothing_contributes = True
        else:
            tb_enter, tb_exit = _ray_box_intersection(origins, dirs, occupied_box)
            # clip sampling to the occupied box, preserving the exact
            # t_enter + k*step sample positions; one step of slack on
            # each side absorbs the intersection's floating-point error
            with np.errstate(invalid="ignore"):
                lead = np.maximum(np.floor((tb_enter - t_enter) / step) - 1.0, 0.0)
            t_start = t_enter + lead * step
            t_limit = np.minimum(t_exit, tb_exit + 2.0 * step)

    hit = (t_enter < t_exit) & (t_start < t_limit)
    if nothing_contributes:
        hit = np.zeros(n_rays, dtype=bool)
    t_current = np.where(hit, t_start, np.inf)
    active = np.nonzero(hit)[0]

    gradient = volume.gradient(name) if lighting else None
    light = np.asarray(light_direction, dtype=np.float64)
    light /= max(np.linalg.norm(light), 1e-30)

    # opacity correction reference: transfer functions are defined per
    # unit step of the smallest spacing
    reference_step = float(min(volume.spacing))
    if tile_shape is not None:
        cell_hi = np.array(
            [max(d - 2, 0) for d in volume.dimensions], dtype=np.float64
        )
        tile_edge = volume.min_max_pyramid(name).tile

    # instrumentation state is accumulated in plain locals so the
    # per-step cost with recording off is a single branch
    _obs_on = obs.enabled()
    _samples = 0
    _skipped = 0
    _steps = 0

    max_steps = int(np.ceil(volume.diagonal() / step)) + 2
    for _ in range(max_steps):
        if active.size == 0:
            break
        t = t_current[active]
        pts = origins[active] + dirs[active] * t[:, None]
        if live_flat is None:
            live = None
            sub = active
            spts = pts
        else:
            idxf = volume.world_to_index(pts)
            cell = np.clip(np.floor(idxf), 0.0, cell_hi).astype(np.intp)
            tx, ty, tz = (cell // tile_edge).T
            flat = (tx * tile_shape[1] + ty) * tile_shape[2] + tz
            live = live_flat[flat]
            sub = active[live]
            spts = pts[live]
        if _obs_on:
            _samples += int(sub.size)
            _skipped += int(active.size - sub.size)
            _steps += 1
        if sub.size:
            samples = volume.sample(spts, name=name)
            rgb, alpha = transfer.evaluate(samples)
            # correct opacity for the actual step length
            alpha = 1.0 - np.power(
                1.0 - np.clip(alpha, 0.0, 0.999), step / reference_step
            )
            if gradient is not None:
                idx = (idxf[live] if live is not None
                       else volume.world_to_index(spts)).T
                g = np.empty((spts.shape[0], 3), dtype=np.float64)
                for c in range(3):
                    g[:, c] = ndimage.map_coordinates(
                        gradient[..., c], idx, order=1, mode="nearest",
                        prefilter=False,
                    )
                glen = np.linalg.norm(g, axis=1)
                shading = np.where(
                    glen > 1e-12,
                    0.4 + 0.6 * np.abs(
                        _rows_dot(g / np.maximum(glen, 1e-12)[:, None], light)
                    ),
                    1.0,
                )
                rgb = rgb * shading[:, None]
            tr = transmittance[sub]
            color[sub] += (tr * alpha)[:, None] * rgb
            transmittance[sub] = tr * (1.0 - alpha)
        t_current[active] = t + step
        keep = (
            (transmittance[active] > _MIN_TRANSMITTANCE)
            & (t_current[active] < t_limit[active])
        )
        active = active[keep]

    if _obs_on:
        obs.counter("raycast.samples", _samples)
        obs.counter("raycast.samples.skipped", _skipped)
        obs.counter("raycast.rays", int(n_rays))
        if _span is not None:
            _span.set(steps=_steps, samples=_samples, skipped=_skipped)

    alpha_out = 1.0 - transmittance
    rgba = np.concatenate([color, alpha_out[:, None]], axis=1)
    return rgba.reshape(row1 - row0, width, 4).astype(np.float32)


def raycast_volume(
    volume: ImageData,
    transfer: TransferFunction,
    camera: Camera,
    width: int,
    height: int,
    step_size: Optional[float] = None,
    array_name: Optional[str] = None,
    depth_limit: Optional[np.ndarray] = None,
    lighting: bool = True,
    light_direction: Tuple[float, float, float] = (0.4, -0.5, 0.8),
    empty_space_skipping: bool = True,
) -> np.ndarray:
    """Render *volume* → an ``(height, width, 4)`` float32 RGBA image.

    Parameters
    ----------
    step_size:
        World-space sampling distance; defaults to the smallest grid
        spacing (≈ Nyquist for trilinear sampling).
    depth_limit:
        Optional ``(height, width)`` view-depth buffer from rasterized
        geometry; rays stop there so opaque geometry occludes volume.
    lighting:
        Modulate sample colors by gradient-based Lambertian shading.
    empty_space_skipping:
        Use the min/max tile pyramid to avoid evaluating samples whose
        opacity is provably zero.  Bitwise identical on or off.
    """
    if width < 1 or height < 1:
        raise RenderingError("bad image size")
    with obs.span(
        "raycast.render", rays=int(width * height), width=int(width), height=int(height)
    ) as _span:
        rgba = raycast_rows(
            volume,
            transfer,
            camera,
            width,
            height,
            0,
            height,
            step_size=step_size,
            array_name=array_name,
            depth_limit=depth_limit,
            lighting=lighting,
            light_direction=light_direction,
            empty_space_skipping=empty_space_skipping,
            _span=_span,
        )
    return rgba
