"""RGB + depth framebuffer.

The render target shared by the rasterizer, the volume ray caster
(composited via the depth buffer) and the 2-D overlay layer (labels,
legends).  Color is float32 RGB in [0, 1]; depth is view-space distance
(smaller = nearer), initialised to +inf.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.errors import RenderingError


class Framebuffer:
    """A ``(height, width)`` RGB color buffer with a z-buffer."""

    def __init__(self, width: int, height: int,
                 background: Tuple[float, float, float] = (0.08, 0.08, 0.12)) -> None:
        if width < 1 or height < 1:
            raise RenderingError(f"bad framebuffer size {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.background = tuple(float(c) for c in background)
        self.color = np.empty((self.height, self.width, 3), dtype=np.float32)
        self.depth = np.empty((self.height, self.width), dtype=np.float32)
        self.clear()

    def clear(self) -> None:
        self.color[:] = np.asarray(self.background, dtype=np.float32)
        self.depth[:] = np.inf

    @classmethod
    def from_arrays(
        cls,
        color: np.ndarray,
        depth: np.ndarray,
        background: Tuple[float, float, float] = (0.08, 0.08, 0.12),
    ) -> "Framebuffer":
        """Wrap existing ``(h, w, 3)`` color / ``(h, w)`` depth arrays.

        The arrays are used in place — not copied, not cleared — so a
        pool worker can rasterize straight into a shared-memory segment
        (:mod:`repro.parallel`).  Both must be float32 and agree on
        ``(h, w)``.
        """
        color = np.asarray(color)
        depth = np.asarray(depth)
        if color.ndim != 3 or color.shape[2] != 3 or color.dtype != np.float32:
            raise RenderingError(f"from_arrays: bad color buffer {color.shape} {color.dtype}")
        if depth.shape != color.shape[:2] or depth.dtype != np.float32:
            raise RenderingError(f"from_arrays: bad depth buffer {depth.shape} {depth.dtype}")
        fb = cls.__new__(cls)
        fb.height, fb.width = int(color.shape[0]), int(color.shape[1])
        fb.background = tuple(float(c) for c in background)
        fb.color = color
        fb.depth = depth
        return fb

    def __repr__(self) -> str:
        return f"Framebuffer({self.width}x{self.height})"

    # -- pixel writes ----------------------------------------------------

    def write_pixels(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        depths: np.ndarray,
        colors: np.ndarray,
    ) -> int:
        """Depth-tested opaque write of scattered pixels; returns count drawn.

        Duplicate pixels within one call are resolved nearest-first.
        """
        rows = np.asarray(rows, dtype=np.intp)
        cols = np.asarray(cols, dtype=np.intp)
        depths = np.asarray(depths, dtype=np.float32)
        inside = (rows >= 0) & (rows < self.height) & (cols >= 0) & (cols < self.width)
        rows, cols, depths, colors = rows[inside], cols[inside], depths[inside], colors[inside]
        if rows.size == 0:
            return 0
        # sort far-to-near so the final (nearest) write wins per pixel
        order = np.argsort(-depths, kind="stable")
        rows, cols, depths, colors = rows[order], cols[order], depths[order], colors[order]
        passed = depths < self.depth[rows, cols]
        rows, cols, depths, colors = rows[passed], cols[passed], depths[passed], colors[passed]
        self.color[rows, cols] = colors.astype(np.float32)
        self.depth[rows, cols] = depths
        return int(rows.size)

    def blend_image(self, rgba: np.ndarray) -> None:
        """Alpha-blend a full-frame ``(h, w, 4)`` image over the buffer
        (no depth test — used for volume-render composites and overlays)."""
        if rgba.shape != (self.height, self.width, 4):
            raise RenderingError(
                f"blend_image: shape {rgba.shape} != ({self.height}, {self.width}, 4)"
            )
        alpha = rgba[..., 3:4].astype(np.float32)
        self.color[:] = rgba[..., :3].astype(np.float32) * alpha + self.color * (1.0 - alpha)

    def blend_patch(self, row: int, col: int, rgba: np.ndarray) -> None:
        """Alpha-blend a small ``(h, w, 4)`` patch at (row, col), clipped."""
        ph, pw = rgba.shape[:2]
        r0, c0 = max(row, 0), max(col, 0)
        r1, c1 = min(row + ph, self.height), min(col + pw, self.width)
        if r0 >= r1 or c0 >= c1:
            return
        patch = rgba[r0 - row : r1 - row, c0 - col : c1 - col]
        alpha = patch[..., 3:4].astype(np.float32)
        dest = self.color[r0:r1, c0:c1]
        dest[:] = patch[..., :3].astype(np.float32) * alpha + dest * (1.0 - alpha)

    # -- output -----------------------------------------------------------

    def to_uint8(self) -> np.ndarray:
        """The color buffer as ``(h, w, 3)`` uint8."""
        return (np.clip(self.color, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)

    def save(self, path: str) -> None:
        """Write the color buffer as a binary PPM file."""
        from repro.rendering.ppm import write_ppm

        write_ppm(path, self.to_uint8())

    def coverage(self) -> float:
        """Fraction of pixels whose depth was written (geometry coverage)."""
        return float(np.isfinite(self.depth).mean())

    def downsample(self, factor: int) -> np.ndarray:
        """Box-filtered uint8 image at 1/factor resolution.

        Used by the hyperwall server's reduced-resolution mirror cells.
        """
        if factor < 1:
            raise RenderingError("downsample factor must be >= 1")
        h = (self.height // factor) * factor
        w = (self.width // factor) * factor
        img = self.color[:h, :w].reshape(h // factor, factor, w // factor, factor, 3)
        return (np.clip(img.mean(axis=(1, 3)), 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
