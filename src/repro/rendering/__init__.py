"""Software rendering substrate (the VTK analog).

DV3D "builds on VTK, an open-source, object-oriented library, for
visualization and analysis" and its value proposition is hiding VTK's
low-level objects ("actors, cameras, renderers, and transfer
functions") behind climate-scientist-level interfaces.  This package
provides those low-level objects in pure numpy so the DV3D layer has a
real pipeline to encapsulate:

* :mod:`repro.rendering.image_data` — structured volumes (vtkImageData);
* :mod:`repro.rendering.colormap` / :mod:`repro.rendering.transfer_function`
  — scalar→color and scalar→opacity mappings;
* :mod:`repro.rendering.camera` — perspective camera with orbit/zoom/pan
  and stereo eye offsets;
* :mod:`repro.rendering.geometry` — triangle/line polydata;
* :mod:`repro.rendering.rasterizer` — z-buffered triangle/line raster;
* :mod:`repro.rendering.isosurface` — marching-tetrahedra extraction;
* :mod:`repro.rendering.contour2d` — marching-squares contour lines;
* :mod:`repro.rendering.raycast` — front-to-back volume ray casting;
* :mod:`repro.rendering.streamline` — RK4 streamline integration;
* :mod:`repro.rendering.glyphs` — vector arrow glyphs;
* :mod:`repro.rendering.scene` — actors, lights, renderer;
* :mod:`repro.rendering.text` — bitmap-font overlay labels;
* :mod:`repro.rendering.ppm` — PPM/PGM image output.
"""

from repro.rendering.image_data import ImageData
from repro.rendering.colormap import Colormap, colormap_names, get_colormap
from repro.rendering.transfer_function import ColorTransferFunction, OpacityTransferFunction, TransferFunction
from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.geometry import PolyData
from repro.rendering.isosurface import marching_tetrahedra
from repro.rendering.contour2d import marching_squares
from repro.rendering.raycast import raycast_volume
from repro.rendering.streamline import integrate_streamlines
from repro.rendering.scene import Actor, DirectionalLight, Renderer, Scene, VolumeActor
from repro.rendering.ppm import write_ppm, read_ppm

__all__ = [
    "ImageData",
    "Colormap",
    "colormap_names",
    "get_colormap",
    "ColorTransferFunction",
    "OpacityTransferFunction",
    "TransferFunction",
    "Camera",
    "Framebuffer",
    "PolyData",
    "marching_tetrahedra",
    "marching_squares",
    "raycast_volume",
    "integrate_streamlines",
    "Actor",
    "DirectionalLight",
    "Renderer",
    "Scene",
    "VolumeActor",
    "write_ppm",
    "read_ppm",
]
