"""Actors, lights, scenes and the renderer.

This is the object layer DV3D "hides" from scientists: geometry actors
(surfaces, slice planes, lines), volume actors (a volume plus its
transfer function), directional lights, and the :class:`Renderer` that
composes them into a framebuffer — rasterized geometry first (filling
the depth buffer), then volume ray casting limited by that depth so
opaque geometry correctly occludes translucent volume.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.geometry import PolyData
from repro.rendering.image_data import ImageData
from repro.rendering.rasterizer import rasterize
from repro.rendering.raycast import raycast_volume
from repro.rendering.transfer_function import TransferFunction
from repro.util.errors import RenderingError


@dataclass
class DirectionalLight:
    """A simple directional light (direction toward the scene)."""

    direction: Tuple[float, float, float] = (0.4, -0.5, 0.8)
    intensity: float = 1.0


@dataclass
class Actor:
    """A geometry actor: PolyData plus display properties."""

    poly: PolyData
    color: Tuple[float, float, float] = (0.8, 0.8, 0.8)
    line_color: Optional[Tuple[float, float, float]] = None
    lighting: bool = True
    visible: bool = True
    point_size: int = 1
    name: str = ""

    def bounds(self):
        return self.poly.bounds()


@dataclass
class VolumeActor:
    """A volume actor: ImageData + transfer function + sampling control."""

    volume: ImageData
    transfer: TransferFunction
    array_name: Optional[str] = None
    step_size: Optional[float] = None
    lighting: bool = True
    visible: bool = True
    name: str = ""

    def bounds(self):
        return self.volume.bounds()


class Scene:
    """An ordered collection of actors plus a background color."""

    def __init__(self, background: Tuple[float, float, float] = (0.08, 0.08, 0.12)) -> None:
        self.background = background
        self.actors: List[Actor] = []
        self.volume_actors: List[VolumeActor] = []
        self.lights: List[DirectionalLight] = [DirectionalLight()]

    def add_actor(self, actor: Actor) -> Actor:
        self.actors.append(actor)
        return actor

    def add_volume(self, actor: VolumeActor) -> VolumeActor:
        self.volume_actors.append(actor)
        return actor

    def remove(self, name: str) -> int:
        """Remove all actors with the given name; returns count removed."""
        before = len(self.actors) + len(self.volume_actors)
        self.actors = [a for a in self.actors if a.name != name]
        self.volume_actors = [a for a in self.volume_actors if a.name != name]
        return before - len(self.actors) - len(self.volume_actors)

    def bounds(self) -> Tuple[float, float, float, float, float, float]:
        """Union of all visible actor bounds."""
        boxes = [a.bounds() for a in self.actors if a.visible and a.poly.n_points]
        boxes += [a.bounds() for a in self.volume_actors if a.visible]
        if not boxes:
            raise RenderingError("scene is empty")
        arr = np.asarray(boxes)
        return (
            float(arr[:, 0].min()), float(arr[:, 1].max()),
            float(arr[:, 2].min()), float(arr[:, 3].max()),
            float(arr[:, 4].min()), float(arr[:, 5].max()),
        )

    def fit_camera(self, direction: Tuple[float, float, float] = (1.0, -1.2, 0.8)) -> Camera:
        """A camera framing the whole scene from *direction*."""
        return Camera.fit_bounds(self.bounds(), direction=direction)


class Renderer:
    """Renders a :class:`Scene` through a :class:`Camera` into a framebuffer.

    *parallel* (a :class:`repro.parallel.ParallelConfig`) tiles the
    rasterization and ray-casting passes across worker processes; it
    defaults to the ambient config (serial unless the application
    opted in), and the tiled passes produce a bitwise-identical
    framebuffer.
    """

    def __init__(self, width: int = 400, height: int = 300, parallel=None) -> None:
        if width < 1 or height < 1:
            raise RenderingError("bad renderer size")
        self.width = int(width)
        self.height = int(height)
        self.parallel = parallel

    def render(self, scene: Scene, camera: Optional[Camera] = None) -> Framebuffer:
        from repro.cache.config import get_config as get_cache_config
        from repro.parallel.config import get_config

        camera = camera or scene.fit_camera()

        # the frame cache: whole frames keyed by (scene, camera, size).
        # The tiled parallel kernels are bitwise-identical to serial, so
        # the key deliberately excludes the parallel config.  Buffers
        # are copied both ways — callers (DV3D cells, the hyperwall)
        # blend overlays into the returned framebuffer in place.
        frame_cache = None
        if get_cache_config().enabled:
            from repro.cache.keys import cache_key, scene_digest
            from repro.cache.store import get_cache

            frame_cache = get_cache()
            frame_key = cache_key(
                "render.frame",
                scene_digest(scene),
                camera.state(),
                self.width,
                self.height,
            )
            found, frame = frame_cache.get(frame_key, site="render")
            if found:
                color, depth, background = frame
                return Framebuffer.from_arrays(
                    color.copy(), depth.copy(), background=background
                )

        config = self.parallel if self.parallel is not None else get_config()
        if config.enabled:
            from repro.parallel import kernels

            do_rasterize = functools.partial(kernels.parallel_rasterize, config=config)
            do_raycast = functools.partial(kernels.parallel_raycast, config=config)
        else:
            do_rasterize, do_raycast = rasterize, raycast_volume

        fb = Framebuffer(self.width, self.height, background=scene.background)
        light = scene.lights[0] if scene.lights else DirectionalLight()

        for actor in scene.actors:
            if not actor.visible or actor.poly.n_points == 0:
                continue
            do_rasterize(
                actor.poly,
                camera,
                fb,
                light_direction=np.asarray(light.direction) if actor.lighting else None,
                flat_color=actor.color,
                line_color=actor.line_color,
                point_size=actor.point_size,
            )
        for vactor in scene.volume_actors:
            if not vactor.visible:
                continue
            rgba = do_raycast(
                vactor.volume,
                vactor.transfer,
                camera,
                self.width,
                self.height,
                step_size=vactor.step_size,
                array_name=vactor.array_name,
                depth_limit=fb.depth,
                lighting=vactor.lighting,
                light_direction=tuple(light.direction),
            )
            fb.blend_image(rgba)
        if frame_cache is not None:
            frame_cache.put(
                frame_key,
                (fb.color.copy(), fb.depth.copy(), fb.background),
                site="render",
            )
        return fb

    def render_stereo(
        self, scene: Scene, camera: Optional[Camera] = None, eye_separation: float = 0.03
    ) -> Tuple[Framebuffer, Framebuffer]:
        """Render a left/right stereo pair (paper: "active and passive 3D
        stereo visualization support")."""
        camera = camera or scene.fit_camera()
        left_cam, right_cam = camera.stereo_pair(eye_separation)
        return self.render(scene, left_cam), self.render(scene, right_cam)
