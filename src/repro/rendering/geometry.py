"""Polygonal geometry — the ``vtkPolyData`` analog.

A :class:`PolyData` holds points plus triangle and polyline
connectivity, with optional per-point scalars (for colormapping) and
per-point RGB colors.  Isosurface extraction, slice planes, streamlines
and glyphs all produce PolyData; the rasterizer consumes it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.util.errors import RenderingError


class PolyData:
    """Points + triangles + polylines with optional point attributes."""

    def __init__(
        self,
        points: np.ndarray,
        triangles: Optional[np.ndarray] = None,
        lines: Optional[list] = None,
        scalars: Optional[np.ndarray] = None,
        colors: Optional[np.ndarray] = None,
    ) -> None:
        self.points = np.ascontiguousarray(np.atleast_2d(points), dtype=np.float64)
        if self.points.ndim != 2 or self.points.shape[1] != 3:
            raise RenderingError(f"points must be (n, 3), got {self.points.shape}")
        n = self.points.shape[0]
        if triangles is None:
            triangles = np.zeros((0, 3), dtype=np.intp)
        self.triangles = np.ascontiguousarray(triangles, dtype=np.intp).reshape(-1, 3)
        if self.triangles.size and (self.triangles.min() < 0 or self.triangles.max() >= n):
            raise RenderingError("triangle indices out of range")
        self.lines: list = [np.asarray(l, dtype=np.intp) for l in (lines or [])]
        for line in self.lines:
            if line.size and (line.min() < 0 or line.max() >= n):
                raise RenderingError("line indices out of range")
        self.scalars = None if scalars is None else np.asarray(scalars, dtype=np.float64).reshape(-1)
        if self.scalars is not None and self.scalars.shape[0] != n:
            raise RenderingError("scalars length mismatch")
        self.colors = None if colors is None else np.asarray(colors, dtype=np.float32).reshape(-1, 3)
        if self.colors is not None and self.colors.shape[0] != n:
            raise RenderingError("colors length mismatch")

    def __repr__(self) -> str:
        return (
            f"PolyData(points={len(self.points)}, triangles={len(self.triangles)}, "
            f"lines={len(self.lines)})"
        )

    @property
    def n_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def n_triangles(self) -> int:
        return int(self.triangles.shape[0])

    def bounds(self) -> Tuple[float, float, float, float, float, float]:
        if self.n_points == 0:
            return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        mins = self.points.min(axis=0)
        maxs = self.points.max(axis=0)
        return (mins[0], maxs[0], mins[1], maxs[1], mins[2], maxs[2])

    # -- attribute helpers ----------------------------------------------------

    def with_colors(self, colors: np.ndarray) -> "PolyData":
        return PolyData(self.points, self.triangles, self.lines, self.scalars, colors)

    def with_scalars(self, scalars: np.ndarray) -> "PolyData":
        return PolyData(self.points, self.triangles, self.lines, scalars, self.colors)

    # -- derived quantities ------------------------------------------------------

    def triangle_normals(self) -> np.ndarray:
        """Per-triangle unit normals, ``(n_triangles, 3)`` (vectorized)."""
        p = self.points
        t = self.triangles
        e1 = p[t[:, 1]] - p[t[:, 0]]
        e2 = p[t[:, 2]] - p[t[:, 0]]
        normals = np.cross(e1, e2)
        lengths = np.linalg.norm(normals, axis=1, keepdims=True)
        return normals / np.maximum(lengths, 1e-30)

    def point_normals(self) -> np.ndarray:
        """Area-weighted per-point normals (smooth shading), ``(n, 3)``."""
        tri_normals = np.cross(
            self.points[self.triangles[:, 1]] - self.points[self.triangles[:, 0]],
            self.points[self.triangles[:, 2]] - self.points[self.triangles[:, 0]],
        )  # unnormalized = area-weighted
        normals = np.zeros_like(self.points)
        for corner in range(3):
            np.add.at(normals, self.triangles[:, corner], tri_normals)
        lengths = np.linalg.norm(normals, axis=1, keepdims=True)
        return normals / np.maximum(lengths, 1e-30)

    def surface_area(self) -> float:
        """Total triangle surface area."""
        tri_normals = np.cross(
            self.points[self.triangles[:, 1]] - self.points[self.triangles[:, 0]],
            self.points[self.triangles[:, 2]] - self.points[self.triangles[:, 0]],
        )
        return float(0.5 * np.linalg.norm(tri_normals, axis=1).sum())

    def transformed(self, matrix: np.ndarray, translation: np.ndarray | None = None) -> "PolyData":
        """Apply a 3×3 linear transform (plus optional translation)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (3, 3):
            raise RenderingError("transform matrix must be 3x3")
        pts = self.points @ matrix.T
        if translation is not None:
            pts = pts + np.asarray(translation, dtype=np.float64)
        return PolyData(pts, self.triangles, self.lines, self.scalars, self.colors)

    @staticmethod
    def merge(*pieces: "PolyData") -> "PolyData":
        """Concatenate several PolyData objects into one."""
        pieces = tuple(p for p in pieces if p.n_points)
        if not pieces:
            return PolyData(np.zeros((0, 3)))
        points = np.concatenate([p.points for p in pieces])
        offsets = np.cumsum([0] + [p.n_points for p in pieces[:-1]])
        triangles = np.concatenate(
            [p.triangles + off for p, off in zip(pieces, offsets)]
        ) if any(p.n_triangles for p in pieces) else None
        lines: list = []
        for p, off in zip(pieces, offsets):
            lines.extend(line + off for line in p.lines)
        def gather(attr: str, default: float) -> Optional[np.ndarray]:
            if all(getattr(p, attr) is None for p in pieces):
                return None
            parts = []
            for p in pieces:
                value = getattr(p, attr)
                if value is None:
                    shape = (p.n_points,) if attr == "scalars" else (p.n_points, 3)
                    value = np.full(shape, default)
                parts.append(value)
            return np.concatenate(parts)
        return PolyData(points, triangles, lines, gather("scalars", 0.0), gather("colors", 0.7))


def plane_quad(corner: np.ndarray, edge_u: np.ndarray, edge_v: np.ndarray,
               nu: int = 2, nv: int = 2) -> PolyData:
    """A tessellated quad patch: corner + s·edge_u + t·edge_v, s,t ∈ [0,1]."""
    if nu < 2 or nv < 2:
        raise RenderingError("plane_quad needs nu, nv >= 2")
    s = np.linspace(0.0, 1.0, nu)
    t = np.linspace(0.0, 1.0, nv)
    gs, gt = np.meshgrid(s, t, indexing="ij")
    pts = (
        np.asarray(corner)[None, :]
        + gs.reshape(-1, 1) * np.asarray(edge_u)[None, :]
        + gt.reshape(-1, 1) * np.asarray(edge_v)[None, :]
    )
    # two triangles per grid cell
    ii, jj = np.meshgrid(np.arange(nu - 1), np.arange(nv - 1), indexing="ij")
    base = (ii * nv + jj).reshape(-1)
    tri_a = np.stack([base, base + nv, base + 1], axis=1)
    tri_b = np.stack([base + nv, base + nv + 1, base + 1], axis=1)
    return PolyData(pts, np.concatenate([tri_a, tri_b]))


def box_outline(bounds: Tuple[float, float, float, float, float, float]) -> PolyData:
    """The 12-edge wireframe of an axis-aligned box (plot frame)."""
    x0, x1, y0, y1, z0, z1 = bounds
    corners = np.array(
        [
            [x0, y0, z0], [x1, y0, z0], [x1, y1, z0], [x0, y1, z0],
            [x0, y0, z1], [x1, y0, z1], [x1, y1, z1], [x0, y1, z1],
        ]
    )
    edges = [
        [0, 1], [1, 2], [2, 3], [3, 0],
        [4, 5], [5, 6], [6, 7], [7, 4],
        [0, 4], [1, 5], [2, 6], [3, 7],
    ]
    return PolyData(corners, lines=[np.array(e) for e in edges])
