"""Colormaps: named scalar→RGB lookup tables.

DV3D spreadsheet cells offer "interactive key press and mouse drag
operations facilitating the configuration of colormaps" — cycling the
map, inverting it, and re-windowing its range.  A :class:`Colormap`
here is an interpolated control-point table supporting exactly those
operations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.util.errors import RenderingError

RGB = Tuple[float, float, float]

#: control points (position in [0,1], rgb in [0,1]) for the built-in maps
_COLORMAP_POINTS: Dict[str, List[Tuple[float, RGB]]] = {
    # perceptually-ordered dark-to-light map (viridis-like)
    "default": [
        (0.00, (0.267, 0.005, 0.329)),
        (0.25, (0.229, 0.322, 0.546)),
        (0.50, (0.128, 0.567, 0.551)),
        (0.75, (0.369, 0.789, 0.383)),
        (1.00, (0.993, 0.906, 0.144)),
    ],
    # the classic rainbow scientists keep asking for
    "jet": [
        (0.000, (0.0, 0.0, 0.5)),
        (0.125, (0.0, 0.0, 1.0)),
        (0.375, (0.0, 1.0, 1.0)),
        (0.625, (1.0, 1.0, 0.0)),
        (0.875, (1.0, 0.0, 0.0)),
        (1.000, (0.5, 0.0, 0.0)),
    ],
    # diverging blue-white-red for anomaly fields
    "coolwarm": [
        (0.00, (0.230, 0.299, 0.754)),
        (0.50, (0.865, 0.865, 0.865)),
        (1.00, (0.706, 0.016, 0.150)),
    ],
    "grayscale": [
        (0.0, (0.0, 0.0, 0.0)),
        (1.0, (1.0, 1.0, 1.0)),
    ],
    # hue sweep (the VTK default lookup table)
    "rainbow": [
        (0.00, (1.0, 0.0, 0.0)),
        (0.20, (1.0, 1.0, 0.0)),
        (0.40, (0.0, 1.0, 0.0)),
        (0.60, (0.0, 1.0, 1.0)),
        (0.80, (0.0, 0.0, 1.0)),
        (1.00, (1.0, 0.0, 1.0)),
    ],
    # single-hue sequential for precipitation-like fields
    "blues": [
        (0.0, (0.97, 0.98, 1.00)),
        (0.5, (0.42, 0.68, 0.84)),
        (1.0, (0.03, 0.19, 0.42)),
    ],
}


def colormap_names() -> List[str]:
    """Names of the registered colormaps, in cycling order."""
    return sorted(_COLORMAP_POINTS)


def register_colormap(name: str, points: List[Tuple[float, RGB]], overwrite: bool = False) -> None:
    """Register a user-defined colormap from control points.

    *points* is a list of ``(position, (r, g, b))`` with positions
    covering 0 and 1; the map then participates in cycling, inversion
    and serialization like the built-ins.
    """
    if name in _COLORMAP_POINTS and not overwrite:
        raise RenderingError(f"colormap {name!r} already registered")
    if len(points) < 2:
        raise RenderingError("a colormap needs at least 2 control points")
    positions = sorted(p for p, _ in points)
    if positions[0] != 0.0 or positions[-1] != 1.0:
        raise RenderingError("control points must cover positions 0.0 and 1.0")
    for position, rgb in points:
        if not 0.0 <= position <= 1.0:
            raise RenderingError(f"control position {position} outside [0, 1]")
        if len(rgb) != 3 or any(not 0.0 <= c <= 1.0 for c in rgb):
            raise RenderingError(f"bad RGB {rgb!r}")
    _COLORMAP_POINTS[name] = sorted(points)


class Colormap:
    """An interpolated lookup table mapping scalars to RGB.

    Parameters
    ----------
    name:
        A built-in name from :func:`colormap_names`.
    n_colors:
        Table resolution.
    inverted:
        Reverse the map (the DV3D "invert colormap" key command).
    """

    def __init__(self, name: str = "default", n_colors: int = 256, inverted: bool = False) -> None:
        if name not in _COLORMAP_POINTS:
            raise RenderingError(f"unknown colormap {name!r}; available: {colormap_names()}")
        if n_colors < 2:
            raise RenderingError("n_colors must be >= 2")
        self.name = name
        self.n_colors = int(n_colors)
        self.inverted = bool(inverted)
        self._table = self._build_table()

    def _build_table(self) -> np.ndarray:
        points = _COLORMAP_POINTS[self.name]
        positions = np.array([p for p, _ in points])
        colors = np.array([c for _, c in points])
        x = np.linspace(0.0, 1.0, self.n_colors)
        table = np.empty((self.n_colors, 3), dtype=np.float32)
        for channel in range(3):
            table[:, channel] = np.interp(x, positions, colors[:, channel])
        if self.inverted:
            table = table[::-1].copy()
        return table

    @property
    def table(self) -> np.ndarray:
        """The ``(n_colors, 3)`` float32 RGB table in [0, 1]."""
        return self._table

    def invert(self) -> "Colormap":
        """A reversed copy (key command in the DV3D cell interface)."""
        return Colormap(self.name, self.n_colors, inverted=not self.inverted)

    def next_map(self) -> "Colormap":
        """Cycle to the next built-in map (another DV3D key command)."""
        names = colormap_names()
        idx = (names.index(self.name) + 1) % len(names)
        return Colormap(names[idx], self.n_colors, inverted=self.inverted)

    def map_scalars(
        self,
        values: np.ndarray,
        vmin: float,
        vmax: float,
        nan_color: RGB = (0.35, 0.35, 0.35),
    ) -> np.ndarray:
        """Map *values* into RGB, normalising by ``[vmin, vmax]``.

        NaN (missing) values map to *nan_color*.  Output shape is
        ``values.shape + (3,)``, dtype float32.
        """
        values = np.asarray(values, dtype=np.float64)
        if vmax <= vmin:
            # widen degenerate ranges relative to their magnitude so the
            # division below stays finite even for large vmin
            vmax = vmin + max(1e-30, abs(vmin) * 1e-9)
        norm = (values - vmin) / (vmax - vmin)
        nan_mask = ~np.isfinite(norm)
        norm = np.where(nan_mask, 0.0, np.clip(norm, 0.0, 1.0))
        indices = np.minimum((norm * (self.n_colors - 1)).astype(np.intp), self.n_colors - 1)
        rgb = self._table[indices]
        if nan_mask.any():
            rgb = rgb.copy()
            rgb[nan_mask] = np.asarray(nan_color, dtype=np.float32)
        return rgb

    def colorbar_strip(self, width: int = 20, height: int = 128) -> np.ndarray:
        """An RGB strip (height, width, 3) for legend rendering, low→high bottom→top."""
        column = self._table[
            np.linspace(self.n_colors - 1, 0, height).astype(np.intp)
        ]
        return np.repeat(column[:, None, :], width, axis=1)

    def state(self) -> Dict[str, object]:
        """Serializable configuration (used by provenance and hyperwall sync)."""
        return {"name": self.name, "n_colors": self.n_colors, "inverted": self.inverted}

    @staticmethod
    def from_state(state: Dict[str, object]) -> "Colormap":
        return Colormap(
            str(state.get("name", "default")),
            int(state.get("n_colors", 256)),  # type: ignore[arg-type]
            bool(state.get("inverted", False)),
        )


def get_colormap(name: str, n_colors: int = 256) -> Colormap:
    """Fetch a built-in colormap by name."""
    return Colormap(name, n_colors)
