"""Structured volumes — the ``vtkImageData`` analog.

An :class:`ImageData` is a regular 3-D grid defined by ``dimensions``
(nx, ny, nz), ``origin`` and ``spacing``, carrying named point-data
arrays (scalars shaped ``(nx, ny, nz)`` or vectors shaped
``(nx, ny, nz, 3)``).  The DV3D translation module converts CDMS
variables into these; every visualization algorithm in this package
consumes them.

Index convention: array index ``[i, j, k]`` ↔ world position
``origin + (i, j, k) * spacing`` — i.e. x varies along axis 0.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.util.errors import RenderingError

Vec3 = Tuple[float, float, float]


class ImageData:
    """A regular structured grid with named point-data arrays."""

    def __init__(
        self,
        dimensions: Tuple[int, int, int],
        origin: Vec3 = (0.0, 0.0, 0.0),
        spacing: Vec3 = (1.0, 1.0, 1.0),
    ) -> None:
        dims = tuple(int(d) for d in dimensions)
        if len(dims) != 3 or any(d < 1 for d in dims):
            raise RenderingError(f"bad dimensions {dimensions!r}")
        if any(s <= 0 for s in spacing):
            raise RenderingError(f"spacing must be positive, got {spacing!r}")
        self.dimensions = dims
        self.origin = tuple(float(v) for v in origin)
        self.spacing = tuple(float(v) for v in spacing)
        self._arrays: Dict[str, np.ndarray] = {}
        self._active_scalars: Optional[str] = None
        #: per-array derived products (gradients, min/max pyramids) —
        #: invalidated whenever the array is (re)attached
        self._derived: Dict[tuple, object] = {}

    # -- structure -------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"ImageData(dims={self.dimensions}, origin={self.origin}, "
            f"spacing={self.spacing}, arrays={sorted(self._arrays)})"
        )

    @property
    def n_points(self) -> int:
        nx, ny, nz = self.dimensions
        return nx * ny * nz

    def bounds(self) -> Tuple[float, float, float, float, float, float]:
        """(xmin, xmax, ymin, ymax, zmin, zmax) of the grid extent."""
        out = []
        for axis in range(3):
            lo = self.origin[axis]
            hi = lo + (self.dimensions[axis] - 1) * self.spacing[axis]
            out.extend((lo, hi))
        return tuple(out)  # type: ignore[return-value]

    def center(self) -> np.ndarray:
        b = self.bounds()
        return np.array([(b[0] + b[1]) / 2, (b[2] + b[3]) / 2, (b[4] + b[5]) / 2])

    def diagonal(self) -> float:
        b = self.bounds()
        return float(np.sqrt((b[1] - b[0]) ** 2 + (b[3] - b[2]) ** 2 + (b[5] - b[4]) ** 2))

    # -- point data ---------------------------------------------------------

    def add_array(self, name: str, values: np.ndarray, set_active: bool = True) -> None:
        """Attach a point-data array (scalar ``dims`` or vector ``dims+(3,)``)."""
        arr = np.ascontiguousarray(values, dtype=np.float32)
        if arr.shape != self.dimensions and arr.shape != self.dimensions + (3,):
            raise RenderingError(
                f"array {name!r} shape {arr.shape} incompatible with dims {self.dimensions}"
            )
        self._arrays[name] = arr
        for key in [k for k in self._derived if k[0] == name]:
            del self._derived[key]
        if set_active and arr.ndim == 3:
            self._active_scalars = name

    def get_array(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise RenderingError(
                f"no array {name!r}; available: {sorted(self._arrays)}"
            ) from None

    def has_array(self, name: str) -> bool:
        return name in self._arrays

    @property
    def array_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._arrays))

    @property
    def active_scalars_name(self) -> str:
        if self._active_scalars is None:
            raise RenderingError("no active scalar array")
        return self._active_scalars

    def set_active_scalars(self, name: str) -> None:
        arr = self.get_array(name)
        if arr.ndim != 3:
            raise RenderingError(f"array {name!r} is not a scalar array")
        self._active_scalars = name

    @property
    def scalars(self) -> np.ndarray:
        return self.get_array(self.active_scalars_name)

    def scalar_range(self, name: Optional[str] = None) -> Tuple[float, float]:
        arr = self.get_array(name or self.active_scalars_name)
        valid = arr[np.isfinite(arr)]
        if valid.size == 0:
            raise RenderingError("scalar array holds no finite values")
        return float(valid.min()), float(valid.max())

    # -- coordinates ------------------------------------------------------------

    def index_to_world(self, ijk: np.ndarray) -> np.ndarray:
        """Continuous index coordinates → world coordinates (vectorized)."""
        ijk = np.asarray(ijk, dtype=np.float64)
        return np.asarray(self.origin) + ijk * np.asarray(self.spacing)

    def world_to_index(self, xyz: np.ndarray) -> np.ndarray:
        """World coordinates → continuous index coordinates (vectorized)."""
        xyz = np.asarray(xyz, dtype=np.float64)
        return (xyz - np.asarray(self.origin)) / np.asarray(self.spacing)

    def axis_coordinates(self, axis: int) -> np.ndarray:
        """World coordinates of grid points along one axis (0=x, 1=y, 2=z)."""
        return self.origin[axis] + np.arange(self.dimensions[axis]) * self.spacing[axis]

    # -- sampling -----------------------------------------------------------------

    def sample(
        self,
        points_world: np.ndarray,
        name: Optional[str] = None,
        fill: float = np.nan,
    ) -> np.ndarray:
        """Trilinear sampling of a scalar array at world-space points.

        *points_world* is ``(n, 3)``; points outside the grid yield
        *fill*.  Uses :func:`scipy.ndimage.map_coordinates` (order 1).
        """
        arr = self.get_array(name or self.active_scalars_name)
        if arr.ndim != 3:
            raise RenderingError("sample() requires a scalar array")
        idx = self.world_to_index(np.atleast_2d(points_world)).T  # (3, n)
        # output dtype pinned to the array's own (float32) — relying on
        # the implicit default would let a library change silently
        # promote samples and shift goldens/cache digests
        values = ndimage.map_coordinates(
            arr, idx, order=1, mode="constant", cval=fill, prefilter=False,
            output=arr.dtype,
        )
        return values

    def sample_vector(self, points_world: np.ndarray, name: str, fill: float = 0.0) -> np.ndarray:
        """Trilinear sampling of a vector array → ``(n, 3)``."""
        arr = self.get_array(name)
        if arr.ndim != 4:
            raise RenderingError(f"array {name!r} is not a vector array")
        idx = self.world_to_index(np.atleast_2d(points_world)).T
        out = np.empty((idx.shape[1], 3), dtype=np.float64)
        for c in range(3):
            # interpolate at the array's own precision (float32), then
            # widen — pinned so numpy/scipy promotion-rule changes
            # cannot shift the interpolated values
            out[:, c] = ndimage.map_coordinates(
                arr[..., c], idx, order=1, mode="constant", cval=fill,
                prefilter=False, output=arr.dtype,
            )
        return out

    # -- slicing ----------------------------------------------------------------

    def extract_slice(
        self, axis: int, world_coord: float, name: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interpolated planar slice at ``world_coord`` along *axis*.

        Returns ``(values, u_coords, v_coords)`` where ``values`` is the
        2-D slice (shaped by the two remaining axes, in axis order) and
        ``u/v`` are world coordinates along those axes.
        """
        if axis not in (0, 1, 2):
            raise RenderingError(f"axis must be 0, 1 or 2, got {axis}")
        arr = self.get_array(name or self.active_scalars_name)
        if arr.ndim != 3:
            raise RenderingError("extract_slice() requires a scalar array")
        frac_index = (world_coord - self.origin[axis]) / self.spacing[axis]
        n = self.dimensions[axis]
        frac_index = float(np.clip(frac_index, 0.0, n - 1))
        i0 = int(np.floor(frac_index))
        i1 = min(i0 + 1, n - 1)
        t = frac_index - i0
        lo = np.take(arr, i0, axis=axis)
        hi = np.take(arr, i1, axis=axis)
        # blend at the array's own precision: the weights are cast to
        # float32 up front (exactly what scalar promotion does today)
        # so the result cannot drift if promotion rules change
        w1 = arr.dtype.type(1.0 - t)
        w0 = arr.dtype.type(t)
        values = w1 * lo + w0 * hi
        other = [a for a in range(3) if a != axis]
        return values, self.axis_coordinates(other[0]), self.axis_coordinates(other[1])

    def gradient(self, name: Optional[str] = None) -> np.ndarray:
        """Central-difference gradient of a scalar array, ``dims + (3,)``.

        Used for volume-render shading normals and isosurface normals.
        Cached per array (a volume invariant re-used by every render of
        the same data); treat the result as read-only.
        """
        name = name or self.active_scalars_name
        key = (name, "gradient")
        cached = self._derived.get(key)
        if cached is None:
            arr = self.get_array(name)
            gx, gy, gz = np.gradient(arr.astype(np.float64), *self.spacing)
            cached = np.stack([gx, gy, gz], axis=-1)
            self._derived[key] = cached
        return cached  # type: ignore[return-value]

    def min_max_pyramid(self, name: Optional[str] = None, tile: int = 4):
        """The cached :class:`repro.rendering.accel.MinMaxPyramid` of an array.

        Built lazily on first use and re-used by every subsequent
        render of the same volume (empty-space skipping, isosurface
        cell culling, adaptive tile scheduling).
        """
        from repro.rendering.accel import MinMaxPyramid

        name = name or self.active_scalars_name
        key = (name, "minmax", int(tile))
        cached = self._derived.get(key)
        if cached is None:
            arr = self.get_array(name)
            if arr.ndim != 3:
                raise RenderingError("min_max_pyramid() requires a scalar array")
            cached = MinMaxPyramid.build(arr, tile=tile)
            self._derived[key] = cached
        return cached
