"""Z-buffered software rasterization of PolyData.

Triangles are filled with barycentric interpolation of per-vertex
colors and depths (Gouraud shading); polylines are drawn with a DDA
walk.  Per the session performance guides the inner work is vectorized:
each triangle fills all of its bounding-box pixels in one numpy
operation, and lines generate all their samples at once.  The remaining
per-triangle Python loop is acceptable at the mesh sizes climate
isosurfaces produce (10⁴–10⁵ triangles) and is measured by the
ablation benchmarks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.geometry import PolyData


def shade_colors(
    base_colors: np.ndarray,
    normals: np.ndarray,
    light_direction: np.ndarray,
    ambient: float = 0.35,
    diffuse: float = 0.65,
) -> np.ndarray:
    """Lambertian shading of per-point colors (double-sided)."""
    light = np.asarray(light_direction, dtype=np.float64)
    light = light / max(np.linalg.norm(light), 1e-30)
    lambert = np.abs(normals @ light)  # double-sided surfaces
    factor = ambient + diffuse * lambert
    return np.clip(base_colors * factor[:, None], 0.0, 1.0).astype(np.float32)


def rasterize(
    poly: PolyData,
    camera: Camera,
    framebuffer: Framebuffer,
    light_direction: Optional[np.ndarray] = None,
    flat_color: tuple = (0.8, 0.8, 0.8),
    line_color: Optional[tuple] = None,
    point_size: int = 1,
    row_range: Optional[Tuple[int, int]] = None,
) -> int:
    """Draw *poly* into *framebuffer* through *camera*; returns pixels written.

    Per-point colors are taken from ``poly.colors`` (falling back to
    *flat_color*), shaded by *light_direction* when given.  Lines use
    ``line_color`` or the unshaded point colors.

    *row_range* restricts writes to framebuffer rows ``[r0, r1)`` for
    tiled execution (:mod:`repro.parallel`): projection, shading and
    per-pixel interpolation are computed exactly as in a full-frame
    pass, so the band's pixels are bitwise identical to the same rows
    of an unrestricted call.
    """
    if poly.n_points == 0:
        return 0
    if row_range is not None:
        r0, r1 = int(row_range[0]), int(row_range[1])
        if not 0 <= r0 < r1 <= framebuffer.height:
            raise ValueError(f"bad row_range {row_range} for height {framebuffer.height}")
        row_range = (r0, r1)
    with obs.span(
        "rasterizer.rasterize",
        points=int(poly.n_points),
        triangles=int(poly.n_triangles),
        lines=len(poly.lines),
    ) as _span:
        width, height = framebuffer.width, framebuffer.height
        projected = camera.project(poly.points, width, height)  # (n, 3): px, py, depth

        if poly.colors is not None:
            base = poly.colors.astype(np.float64)
        else:
            base = np.tile(np.asarray(flat_color, dtype=np.float64), (poly.n_points, 1))
        if light_direction is not None and poly.n_triangles:
            shaded = shade_colors(base, poly.point_normals(), light_direction)
        else:
            shaded = np.clip(base, 0.0, 1.0).astype(np.float32)

        written = 0
        if poly.n_triangles:
            written += _rasterize_triangles(
                poly.triangles, projected, shaded, framebuffer, row_range
            )
        for line in poly.lines:
            if line.size >= 2:
                color = (
                    np.asarray(line_color, dtype=np.float32)
                    if line_color is not None
                    else None
                )
                written += _rasterize_polyline(
                    line, projected, shaded, color, framebuffer, point_size, row_range
                )
        if obs.enabled():
            obs.counter("rasterizer.triangles", int(poly.n_triangles))
            obs.counter("rasterizer.pixels_written", int(written))
            _span.set(pixels=int(written))
    return written


def _rasterize_triangles(
    triangles: np.ndarray,
    projected: np.ndarray,
    colors: np.ndarray,
    fb: Framebuffer,
    row_range: Optional[Tuple[int, int]] = None,
) -> int:
    """Barycentric bounding-box fill of each triangle."""
    width, height = fb.width, fb.height
    r0, r1 = row_range if row_range is not None else (0, height)
    pts2 = projected[:, :2]
    depth = projected[:, 2]
    written = 0

    tri_pts = pts2[triangles]  # (n_tri, 3, 2)
    tri_depth = depth[triangles]  # (n_tri, 3)
    finite = np.isfinite(tri_pts).all(axis=(1, 2)) & (tri_depth > 0).all(axis=1)
    # cull triangles fully outside the viewport (or the row band)
    xs, ys = tri_pts[..., 0], tri_pts[..., 1]
    onscreen = (
        (xs.max(axis=1) >= 0) & (xs.min(axis=1) <= width - 1)
        & (ys.max(axis=1) >= r0) & (ys.min(axis=1) <= r1 - 1)
    )
    keep = np.nonzero(finite & onscreen)[0]

    for ti in keep:
        ia, ib, ic = triangles[ti]
        pa, pb, pc = pts2[ia], pts2[ib], pts2[ic]
        # signed double area; degenerate triangles are skipped
        area = (pb[0] - pa[0]) * (pc[1] - pa[1]) - (pc[0] - pa[0]) * (pb[1] - pa[1])
        if abs(area) < 1e-12:
            continue
        x0 = max(int(np.floor(min(pa[0], pb[0], pc[0]))), 0)
        x1 = min(int(np.ceil(max(pa[0], pb[0], pc[0]))), width - 1)
        y0 = max(int(np.floor(min(pa[1], pb[1], pc[1]))), r0)
        y1 = min(int(np.ceil(max(pa[1], pb[1], pc[1]))), r1 - 1)
        if x1 < x0 or y1 < y0:
            continue
        gx, gy = np.meshgrid(np.arange(x0, x1 + 1), np.arange(y0, y1 + 1))
        gx = gx.reshape(-1).astype(np.float64)
        gy = gy.reshape(-1).astype(np.float64)
        # barycentric coordinates of every bbox pixel at once
        w0 = ((pb[0] - gx) * (pc[1] - gy) - (pc[0] - gx) * (pb[1] - gy)) / area
        w1 = ((pc[0] - gx) * (pa[1] - gy) - (pa[0] - gx) * (pc[1] - gy)) / area
        w2 = 1.0 - w0 - w1
        inside = (w0 >= -1e-9) & (w1 >= -1e-9) & (w2 >= -1e-9)
        if not inside.any():
            continue
        w0, w1, w2 = w0[inside], w1[inside], w2[inside]
        px = gx[inside].astype(np.intp)
        py = gy[inside].astype(np.intp)
        z = w0 * depth[ia] + w1 * depth[ib] + w2 * depth[ic]
        rgb = (
            w0[:, None] * colors[ia]
            + w1[:, None] * colors[ib]
            + w2[:, None] * colors[ic]
        )
        written += fb.write_pixels(py, px, z, rgb)
    return written


def _rasterize_polyline(
    line: np.ndarray,
    projected: np.ndarray,
    colors: np.ndarray,
    flat: Optional[np.ndarray],
    fb: Framebuffer,
    point_size: int,
    row_range: Optional[Tuple[int, int]] = None,
) -> int:
    """DDA sampling of each segment; thickness via a square brush."""
    r0, r1 = row_range if row_range is not None else (0, fb.height)
    written = 0
    for a, b in zip(line[:-1], line[1:]):
        pa, pb = projected[a], projected[b]
        if not (np.isfinite(pa).all() and np.isfinite(pb).all()):
            continue
        if pa[2] <= 0 or pb[2] <= 0:
            continue
        length = float(max(abs(pb[0] - pa[0]), abs(pb[1] - pa[1])))
        n = max(int(np.ceil(length)) + 1, 2)
        t = np.linspace(0.0, 1.0, n)
        xs = pa[0] + (pb[0] - pa[0]) * t
        ys = pa[1] + (pb[1] - pa[1]) * t
        zs = pa[2] + (pb[2] - pa[2]) * t - 1e-4  # nudge lines in front of faces
        if flat is not None:
            rgb = np.tile(flat, (n, 1))
        else:
            rgb = colors[a][None, :] * (1 - t)[:, None] + colors[b][None, :] * t[:, None]
        if point_size > 1:
            offsets = np.arange(point_size) - point_size // 2
            ox, oy = np.meshgrid(offsets, offsets)
            xs = (xs[:, None] + ox.reshape(1, -1)).reshape(-1)
            ys = (ys[:, None] + oy.reshape(1, -1)).reshape(-1)
            zs = np.repeat(zs, ox.size)
            rgb = np.repeat(rgb, ox.size, axis=0)
        rows = np.round(ys).astype(np.intp)
        cols = np.round(xs).astype(np.intp)
        if row_range is not None:
            # band filter only — sample values are computed full-frame
            # above, so in-band pixels match the serial pass bitwise
            in_band = (rows >= r0) & (rows < r1)
            rows, cols, zs, rgb = rows[in_band], cols[in_band], zs[in_band], rgb[in_band]
        written += fb.write_pixels(rows, cols, zs, rgb)
    return written
