"""Stereo frame composition.

"The underlying VTK architecture provides active and passive 3D stereo
visualization support."  The camera layer already produces left/right
eye pairs (:meth:`~repro.rendering.camera.Camera.stereo_pair`); this
module turns a pair of rendered frames into the deliverable stereo
artifacts:

* **anaglyph** — red/cyan composite viewable with paper glasses (the
  passive-stereo artifact that survives as a single image file);
* **side-by-side** — the format projected on passive polarized walls
  and HMDs;
* **interlaced** — row-interleaved for line-polarized displays
  (the "active" class of hardware, emulated as an image).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.rendering.framebuffer import Framebuffer
from repro.util.errors import RenderingError

FrameLike = Union[Framebuffer, np.ndarray]


def _as_float_rgb(frame: FrameLike) -> np.ndarray:
    if isinstance(frame, Framebuffer):
        return np.clip(frame.color, 0.0, 1.0)
    arr = np.asarray(frame)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise RenderingError(f"expected (h, w, 3) frame, got {arr.shape}")
    if arr.dtype == np.uint8:
        return arr.astype(np.float32) / 255.0
    return np.clip(arr.astype(np.float32), 0.0, 1.0)


def _check_pair(left: np.ndarray, right: np.ndarray) -> None:
    if left.shape != right.shape:
        raise RenderingError(
            f"stereo pair shape mismatch: {left.shape} vs {right.shape}"
        )


def _to_uint8(img: np.ndarray) -> np.ndarray:
    return (np.clip(img, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def anaglyph(left: FrameLike, right: FrameLike) -> np.ndarray:
    """Red/cyan anaglyph: left eye → red channel, right eye → green+blue.

    Uses luminance for the red channel (the 'gray' anaglyph recipe,
    which avoids retinal rivalry on saturated colors).
    """
    l = _as_float_rgb(left)
    r = _as_float_rgb(right)
    _check_pair(l, r)
    luminance = l @ np.array([0.299, 0.587, 0.114], dtype=np.float32)
    out = np.empty_like(l)
    out[..., 0] = luminance
    out[..., 1] = r[..., 1]
    out[..., 2] = r[..., 2]
    return _to_uint8(out)


def side_by_side(left: FrameLike, right: FrameLike, gap: int = 0) -> np.ndarray:
    """Left and right frames concatenated horizontally (passive stereo)."""
    l = _as_float_rgb(left)
    r = _as_float_rgb(right)
    _check_pair(l, r)
    if gap < 0:
        raise RenderingError("gap must be >= 0")
    if gap:
        spacer = np.zeros((l.shape[0], gap, 3), dtype=l.dtype)
        return _to_uint8(np.concatenate([l, spacer, r], axis=1))
    return _to_uint8(np.concatenate([l, r], axis=1))


def interlaced(left: FrameLike, right: FrameLike) -> np.ndarray:
    """Row-interleaved composite: even rows left eye, odd rows right."""
    l = _as_float_rgb(left)
    r = _as_float_rgb(right)
    _check_pair(l, r)
    out = l.copy()
    out[1::2] = r[1::2]
    return _to_uint8(out)


def disparity_estimate(left: FrameLike, right: FrameLike, max_shift: int = 16) -> float:
    """Mean horizontal disparity (pixels) between the two eyes.

    A cheap global estimate by phase of the best whole-image shift —
    used by tests to verify the stereo rig actually produced parallax
    of the expected sign and magnitude.
    """
    l = _as_float_rgb(left).mean(axis=2)
    r = _as_float_rgb(right).mean(axis=2)
    _check_pair(l[..., None], r[..., None])
    best_shift, best_score = 0, np.inf
    for shift in range(-max_shift, max_shift + 1):
        if shift >= 0:
            diff = l[:, shift:] - r[:, : l.shape[1] - shift]
        else:
            diff = l[:, :shift] - r[:, -shift:]
        score = float(np.mean(diff * diff))
        if score < best_score:
            best_score, best_shift = score, shift
    return float(best_shift)
