"""Requests, responses and the canonical coalescing key.

A :class:`Request` is what a session submits: a *kind* (``render`` or
``workflow``), the tenant-visible parameters that determine the output
(scene, camera, size, timestep, ...), and routing metadata (tenant,
session, deadline).  :func:`request_key` maps it to a deterministic
:mod:`repro.cache` digest with one crucial property split:

* **everything that can change the produced bytes is in the key** —
  the kind and every entry of ``params`` (hashed canonically, so dict
  insertion order is irrelevant and numpy payloads hash by content);
* **nothing else is** — tenant, session and deadline are deliberately
  excluded, so two different tenants asking for the same frame collapse
  to one in-flight computation whose result fans out to both (the
  yProv4DV insight: identical provenance digests are the natural
  coalescing key).

The key also inherits the cache layer's ``CODE_SALT`` version binding:
a code upgrade changes every key, so stale frames from older kernels
can never be fanned out to new requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

from repro.cache.keys import cache_key

#: request kinds the server understands; backends may support a subset
KINDS = ("render", "workflow")

#: responses: full-fidelity / refused / reduced-fidelity / failed
STATUS_OK = "ok"
STATUS_SHED = "shed"
STATUS_DEGRADED = "degraded"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class Request:
    """One unit of session traffic.

    ``params`` is the tenant-visible specification of the desired
    product; any value the canonical hasher accepts (scalars, strings,
    lists, dicts, numpy arrays, cameras, ...) is allowed.
    """

    kind: str = "render"
    params: Mapping[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    session: str = ""
    deadline_s: Optional[float] = None

    def with_params(self, **updates: Any) -> "Request":
        """A copy with some ``params`` entries replaced (test helper)."""
        merged = dict(self.params)
        merged.update(updates)
        return replace(self, params=merged)


def request_key(request: Request, salt: Optional[str] = None) -> str:
    """Canonical digest of *request*'s output-determining fields.

    Equal keys mean byte-identical products, so the server coalesces on
    this and the serving cache stores under it.  Tenant, session and
    deadline never enter the key (see module docstring).
    """
    return cache_key("serving.request", request.kind, dict(request.params), salt=salt)


@dataclass
class Response:
    """What every submission gets back — overload included.

    ``status`` is one of ``ok`` (full-fidelity product), ``shed``
    (refused: ``reason`` says why — ``queue_full``, ``deadline``,
    ``expired``, ``saturated``, ``closed``), ``degraded``
    (reduced-fidelity product served under overload; ``source`` says
    whether it came from ``cache`` or a degraded ``render``) or
    ``error`` (the backend raised; ``reason`` carries the repr).
    """

    status: str
    payload: Optional[bytes] = None
    digest: str = ""
    source: str = "render"  # "render" | "cache"
    reason: str = ""
    tenant: str = ""
    latency_s: float = 0.0
    coalesced: bool = False

    @property
    def completed(self) -> bool:
        """Whether the caller received a product (possibly degraded)."""
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    def fan_out(self, tenant: str, latency_s: float, coalesced: bool) -> "Response":
        """A per-waiter copy of a shared result (payload bytes shared)."""
        return replace(
            self, tenant=tenant, latency_s=latency_s, coalesced=coalesced
        )
