"""The asyncio session server: batching, coalescing, shedding, degrading.

:class:`ServingServer` is the traffic-facing front door over the render
substrate.  Many concurrent sessions ``await submit(request)``; the
server:

1. **coalesces** — requests whose canonical digests
   (:func:`~repro.serving.request.request_key`) match an in-flight
   computation attach to it instead of executing again; the single
   result fans out to every waiter byte-identically;
2. **serves from cache** — a digest already in the serving cache
   (:mod:`repro.cache`) returns immediately, charged to the tenant's
   quota recency;
3. **admits or sheds** — a bounded queue plus deadline-aware rejection
   (:mod:`repro.serving.admission`); overload produces
   ``Response(status="shed")``, never unbounded queueing;
4. **executes** — worker tasks drain the queue onto a thread pool that
   calls the backend (which may fan out to process-parallel kernels);
   consecutive backend failures open a circuit breaker
   (:mod:`repro.resilience`), under which requests are served stale
   from cache or re-rendered at reduced resolution instead of
   hammering the failing kernel pool;
5. **accounts** — per-tenant quota eviction through
   :class:`~repro.serving.quota.QuotaLedger` and full :mod:`repro.obs`
   instrumentation.

Observability (all zero-cost when recording is off):

* counters — ``serving.requests`` (tenant, kind), ``serving.coalesced``
  (tenant), ``serving.cache.served`` (tenant), ``serving.shed``
  (reason, tenant), ``serving.executions`` (kind),
  ``serving.degraded`` (source), ``serving.errors`` (tenant);
* gauges — ``serving.queue.depth``, ``serving.inflight`` (distinct
  coalescing keys currently executing or queued);
* histograms — ``serving.latency.seconds`` (status) per request.

Determinism for tests: the clock is injectable (deadlines and the
breaker share it), the ``serving.execute`` fault site fires inside the
dispatch path, and ``start()`` may be deferred — submissions enqueue
and coalesce without any worker running, so "N identical requests,
exactly one execution" is assertable without racing the event loop.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.cache.store import ResultCache, get_cache
from repro.resilience import faults
from repro.resilience.breaker import CircuitBreaker
from repro.serving.admission import (
    REASON_CLOSED,
    REASON_EXPIRED,
    REASON_SATURATED,
    AdmissionController,
)
from repro.serving.config import ServingConfig
from repro.serving.quota import QuotaLedger
from repro.serving.request import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    Request,
    Response,
    request_key,
)
from repro.util.errors import ServingError

#: the backend contract: ``(request, degraded) -> bytes``
Backend = Callable[[Request, bool], bytes]


@dataclass
class _Inflight:
    """One coalescing key's in-flight computation."""

    future: "asyncio.Future[Response]"
    waiters: int = 1


@dataclass
class _WorkItem:
    """One admitted queue entry (the first request of its key)."""

    key: str
    request: Request
    deadline_at: Optional[float] = None
    labels: Dict[str, Any] = field(default_factory=dict)


class ServingServer:
    """The multi-tenant async front door (see module docstring).

    Parameters
    ----------
    backend:
        ``(request, degraded) -> bytes``; runs on the executor thread
        pool, so it may block (and may itself use process-parallel
        kernels).  ``degraded=True`` asks for a cheaper reduced-fidelity
        product (the breaker-open fallback).
    config:
        :class:`~repro.serving.config.ServingConfig` bounds.
    cache:
        Explicit :class:`~repro.cache.store.ResultCache` for the
        serving tier.  Default: the ambient cache when the ambient
        :class:`~repro.cache.config.CacheConfig` is enabled, else none.
    clock:
        Injectable monotonic clock shared by deadlines and the breaker.
    salt:
        Extra request-key salt (deployment generation).
    """

    def __init__(
        self,
        backend: Backend,
        config: Optional[ServingConfig] = None,
        cache: Optional[ResultCache] = None,
        clock: Callable[[], float] = time.monotonic,
        salt: Optional[str] = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else ServingConfig()
        self.clock = clock
        self.salt = salt
        self.admission = AdmissionController(self.config, clock=clock)
        self.quota = QuotaLedger(
            self.config.tenant_max_entries, self.config.tenant_max_bytes
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_timeout=self.config.breaker_reset_s,
            clock=clock,
            name="serving.kernels",
        )
        self._explicit_cache = cache
        self._queue: "asyncio.Queue[Optional[_WorkItem]]" = asyncio.Queue()
        self._inflight: Dict[str, _Inflight] = {}
        self._workers: List["asyncio.Task[None]"] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ServingServer":
        """Spawn the worker tasks and executor pool (idempotent)."""
        if self._closed:
            raise ServingError("cannot start a closed ServingServer")
        if self._workers:
            return self
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-serving",
            )
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker_loop(), name=f"repro-serving-worker-{i}")
            for i in range(self.config.workers)
        ]
        return self

    async def aclose(self) -> None:
        """Drain queued work, stop workers, resolve stragglers, free the pool.

        Safe to call repeatedly and from ``finally`` blocks: a failed
        test that closes the server leaves no worker task, no executor
        thread and no unresolved submission behind (in-flight kernel
        pools finish and tear down their own processes/segments first —
        the pool shutdown waits for them).
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            self._queue.put_nowait(None)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for key, entry in list(self._inflight.items()):
            if not entry.future.done():
                entry.future.set_result(
                    Response(STATUS_SHED, digest=key, reason=REASON_CLOSED)
                )
            self._inflight.pop(key, None)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    async def __aenter__(self) -> "ServingServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- the front door ------------------------------------------------------

    async def submit(self, request: Request) -> Response:
        """Submit one request; always returns a :class:`Response`.

        Overload comes back as ``status="shed"`` (with a reason),
        backend failures as ``status="error"`` — only lifecycle misuse
        raises.
        """
        if self._closed:
            raise ServingError("ServingServer is closed")
        t0 = self.clock()
        key = request_key(request, salt=self.salt)
        obs.counter("serving.requests", tenant=request.tenant, kind=request.kind)

        entry = self._inflight.get(key)
        if entry is not None:  # coalesce onto the in-flight computation
            entry.waiters += 1
            obs.counter("serving.coalesced", tenant=request.tenant)
            base = await entry.future
            return self._finish(
                base.fan_out(request.tenant, self.clock() - t0, coalesced=True)
            )

        cache = self._cache()
        if cache is not None:
            found, payload = cache.get(key, site="serving")
            if found:
                self.quota.touch(request.tenant, key)
                obs.counter("serving.cache.served", tenant=request.tenant)
                return self._finish(
                    Response(
                        STATUS_OK, payload=payload, digest=key, source="cache",
                        tenant=request.tenant, latency_s=self.clock() - t0,
                    )
                )

        admitted, reason = self.admission.admit(request, self._queue.qsize())
        if not admitted:
            obs.counter("serving.shed", reason=reason, tenant=request.tenant)
            return self._finish(
                Response(
                    STATUS_SHED, digest=key, reason=reason,
                    tenant=request.tenant, latency_s=self.clock() - t0,
                )
            )

        loop = asyncio.get_running_loop()
        entry = _Inflight(future=loop.create_future())
        self._inflight[key] = entry
        self._queue.put_nowait(
            _WorkItem(
                key=key,
                request=request,
                deadline_at=self.admission.deadline_of(request),
            )
        )
        if obs.enabled():
            obs.gauge("serving.queue.depth", self._queue.qsize())
            obs.gauge("serving.inflight", len(self._inflight))
        base = await entry.future
        return self._finish(
            base.fan_out(request.tenant, self.clock() - t0, coalesced=False)
        )

    def _finish(self, response: Response) -> Response:
        if obs.enabled():
            obs.histogram(
                "serving.latency.seconds", response.latency_s, status=response.status
            )
        return response

    # -- workers -------------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            item = await self._queue.get()
            try:
                if item is None:
                    return
                await self._dispatch(item)
            finally:
                self._queue.task_done()
                if obs.enabled():
                    obs.gauge("serving.queue.depth", self._queue.qsize())

    async def _dispatch(self, item: _WorkItem) -> None:
        entry = self._inflight.get(item.key)
        try:
            response = await self._produce(item)
        except Exception as exc:  # noqa: BLE001 - a worker loop must survive anything
            response = Response(STATUS_ERROR, digest=item.key, reason=repr(exc))
            obs.counter("serving.errors", tenant=item.request.tenant)
        if entry is not None and not entry.future.done():
            # resolve, then retire the key with no await in between, so
            # no submission can attach to an already-resolved entry
            entry.future.set_result(response)
            self._inflight.pop(item.key, None)
            if obs.enabled():
                obs.gauge("serving.inflight", len(self._inflight))

    async def _produce(self, item: _WorkItem) -> Response:
        request = item.request
        if item.deadline_at is not None and self.clock() > item.deadline_at:
            obs.counter("serving.shed", reason=REASON_EXPIRED, tenant=request.tenant)
            return Response(STATUS_SHED, digest=item.key, reason=REASON_EXPIRED)

        if self.breaker.allow():
            started = time.perf_counter()
            try:
                faults.check(
                    "serving.execute", tenant=request.tenant, kind=request.kind
                )
                payload = await self._run_backend(request, degraded=False)
            except Exception as exc:  # noqa: BLE001 - feeds the breaker
                self.breaker.record_failure()
                obs.counter("serving.errors", tenant=request.tenant)
                return Response(STATUS_ERROR, digest=item.key, reason=repr(exc))
            self.breaker.record_success()
            self.admission.observe_service(time.perf_counter() - started)
            obs.counter("serving.executions", kind=request.kind)
            self._store(request.tenant, item.key, payload)
            return Response(
                STATUS_OK, payload=payload, digest=item.key, source="render"
            )

        # breaker open: the kernel pool is sick or saturated — degrade
        cache = self._cache()
        if cache is not None:
            found, payload = cache.get(item.key, site="serving.degraded")
            if found:
                obs.counter("serving.degraded", source="cache")
                return Response(
                    STATUS_DEGRADED, payload=payload, digest=item.key, source="cache"
                )
        if self.config.allow_degraded:
            try:
                payload = await self._run_backend(request, degraded=True)
            except Exception as exc:  # noqa: BLE001
                obs.counter("serving.errors", tenant=request.tenant)
                return Response(STATUS_ERROR, digest=item.key, reason=repr(exc))
            obs.counter("serving.degraded", source="render")
            return Response(
                STATUS_DEGRADED, payload=payload, digest=item.key, source="render"
            )
        obs.counter("serving.shed", reason=REASON_SATURATED, tenant=request.tenant)
        return Response(STATUS_SHED, digest=item.key, reason=REASON_SATURATED)

    async def _run_backend(self, request: Request, degraded: bool) -> bytes:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self.backend, request, degraded)

    # -- cache / quota -------------------------------------------------------

    def _cache(self) -> Optional[ResultCache]:
        if self._explicit_cache is not None:
            return self._explicit_cache
        from repro.cache.config import get_config

        if get_config().enabled:
            return get_cache()
        return None

    def _store(self, tenant: str, key: str, payload: bytes) -> None:
        cache = self._cache()
        if cache is None:
            return
        cache.put(key, payload, site="serving")
        for evicted_key in self.quota.charge(
            tenant, key, len(payload) if payload else 0
        ):
            cache.delete(evicted_key, site="serving.quota")

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Live snapshot for dashboards and tests."""
        return {
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "breaker": self.breaker.state,
            "ewma_service_s": self.admission.ewma_service_s,
            "quota": self.quota.stats(),
            "closed": self._closed,
        }
