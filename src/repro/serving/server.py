"""The asyncio session server: batching, coalescing, shedding, degrading.

:class:`ServingServer` is the traffic-facing front door over the render
substrate.  Many concurrent sessions ``await submit(request)``; the
server:

1. **coalesces** — requests whose canonical digests
   (:func:`~repro.serving.request.request_key`) match an in-flight
   computation attach to it instead of executing again; the single
   result fans out to every waiter byte-identically;
2. **serves from cache** — a digest already in the serving cache
   (:mod:`repro.cache`) returns immediately, charged to the tenant's
   quota recency;
3. **admits or sheds** — a bounded queue plus deadline-aware rejection
   (:mod:`repro.serving.admission`); overload produces
   ``Response(status="shed")``, never unbounded queueing;
4. **executes** — worker tasks drain the queue onto a thread pool that
   calls the backend (which may fan out to process-parallel kernels);
   consecutive backend failures open a circuit breaker
   (:mod:`repro.resilience`), under which requests are served stale
   from cache or re-rendered at reduced resolution instead of
   hammering the failing kernel pool;
5. **accounts** — per-tenant quota eviction through
   :class:`~repro.serving.quota.QuotaLedger` and full :mod:`repro.obs`
   instrumentation.

Observability (all zero-cost when recording is off):

* counters — ``serving.requests`` (tenant, kind), ``serving.coalesced``
  (tenant), ``serving.cache.served`` (tenant), ``serving.shed``
  (reason, tenant), ``serving.executions`` (kind),
  ``serving.degraded`` (source), ``serving.errors`` (tenant);
* gauges — ``serving.queue.depth``, ``serving.inflight`` (distinct
  coalescing keys currently executing or queued);
* histograms — ``serving.latency.seconds`` (status) per request.

Determinism for tests: the clock is injectable (deadlines and the
breaker share it), the ``serving.execute`` fault site fires inside the
dispatch path, and ``start()`` may be deferred — submissions enqueue
and coalesce without any worker running, so "N identical requests,
exactly one execution" is assertable without racing the event loop.

Session-aware serving (``config.slots`` / ``config.speculation_budget``):

* **sticky affinity** — with ``slots > 0`` every execution routes
  through a :class:`~repro.serving.sessions.SlotPool`; a session's
  requests serialize through the slot the rendezvous router pins it
  to, so camera orbits keep hitting that slot's renderer frame cache.
  A slot that dies mid-request (crash, or the armed ``serving.slot``
  fault site) is retired, its sessions re-pin to survivors, and the
  request retries there — the caller still gets its frame;
* **speculative rendering** — with ``speculation_budget > 0`` the
  server predicts an animating/orbiting session's next frame from its
  request history and pre-renders it on idle capacity through the same
  backend path (byte-identical by construction); the speculative
  result registers as an in-flight key (demand requests coalesce onto
  it) and lands in the serving cache.  A misprediction cancels the
  speculation, audits any stored cache entry back out, and counts
  ``serving.speculative.waste``; a correct prediction counts
  ``serving.speculative.hit``.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import obs
from repro.cache.store import ResultCache, get_cache
from repro.resilience import faults
from repro.resilience.breaker import CircuitBreaker
from repro.serving.admission import (
    REASON_CLOSED,
    REASON_EXPIRED,
    REASON_SATURATED,
    AdmissionController,
)
from repro.serving.config import ServingConfig
from repro.serving.quota import QuotaLedger
from repro.serving.request import (
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    Request,
    Response,
    request_key,
)
from repro.serving.sessions import (
    BackendSlot,
    SessionFrame,
    SessionRegistry,
    SessionState,
    SlotPool,
    Speculation,
)
from repro.serving.speculative import NextFramePredictor
from repro.util.errors import InjectedFault, ServingError, SlotDeadError

#: the backend contract: ``(request, degraded) -> bytes``
Backend = Callable[[Request, bool], bytes]


@dataclass
class _Inflight:
    """One coalescing key's in-flight computation."""

    future: "asyncio.Future[Response]"
    waiters: int = 1


@dataclass
class _WorkItem:
    """One admitted queue entry (the first request of its key)."""

    key: str
    request: Request
    deadline_at: Optional[float] = None
    labels: Dict[str, Any] = field(default_factory=dict)


class ServingServer:
    """The multi-tenant async front door (see module docstring).

    Parameters
    ----------
    backend:
        ``(request, degraded) -> bytes``; runs on the executor thread
        pool, so it may block (and may itself use process-parallel
        kernels).  ``degraded=True`` asks for a cheaper reduced-fidelity
        product (the breaker-open fallback).
    config:
        :class:`~repro.serving.config.ServingConfig` bounds.
    cache:
        Explicit :class:`~repro.cache.store.ResultCache` for the
        serving tier.  Default: the ambient cache when the ambient
        :class:`~repro.cache.config.CacheConfig` is enabled, else none.
    clock:
        Injectable monotonic clock shared by deadlines and the breaker.
    salt:
        Extra request-key salt (deployment generation).
    """

    def __init__(
        self,
        backend: Backend,
        config: Optional[ServingConfig] = None,
        cache: Optional[ResultCache] = None,
        clock: Callable[[], float] = time.monotonic,
        salt: Optional[str] = None,
        slot_backends: Optional[Sequence[Backend]] = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else ServingConfig()
        self.clock = clock
        self.salt = salt
        self.admission = AdmissionController(self.config, clock=clock)
        self.quota = QuotaLedger(
            self.config.tenant_max_entries, self.config.tenant_max_bytes
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_timeout=self.config.breaker_reset_s,
            clock=clock,
            name="serving.kernels",
        )
        self._explicit_cache = cache
        self._queue: "asyncio.Queue[Optional[_WorkItem]]" = asyncio.Queue()
        self._inflight: Dict[str, _Inflight] = {}
        self._workers: List["asyncio.Task[None]"] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False
        # -- session-aware state (inert when slots/speculation are off) --
        self.slot_pool: Optional[SlotPool] = None
        if self.config.slots > 0:
            backends = (
                list(slot_backends)
                if slot_backends is not None
                else [backend] * self.config.slots
            )
            if len(backends) != self.config.slots:
                raise ServingError(
                    f"slot_backends has {len(backends)} entries for "
                    f"{self.config.slots} slots"
                )
            self.slot_pool = SlotPool(backends)
        elif slot_backends is not None:
            raise ServingError("slot_backends given but config.slots is 0")
        self.sessions: Optional[SessionRegistry] = None
        if self.config.slots > 0 or self.config.speculation_budget > 0:
            self.sessions = SessionRegistry(history=self.config.session_history)
        self._predictor = NextFramePredictor()
        self._speculations: Dict[str, "asyncio.Task[None]"] = {}

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> "ServingServer":
        """Spawn the worker tasks and executor pool (idempotent)."""
        if self._closed:
            raise ServingError("cannot start a closed ServingServer")
        if self._workers:
            return self
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="repro-serving",
            )
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._worker_loop(), name=f"repro-serving-worker-{i}")
            for i in range(self.config.workers)
        ]
        return self

    async def aclose(self) -> None:
        """Drain queued work, stop workers, resolve stragglers, free the pool.

        Safe to call repeatedly and from ``finally`` blocks: a failed
        test that closes the server leaves no worker task, no executor
        thread and no unresolved submission behind (in-flight kernel
        pools finish and tear down their own processes/segments first —
        the pool shutdown waits for them).
        """
        if self._closed:
            return
        self._closed = True
        for task in list(self._speculations.values()):
            task.cancel()
        if self._speculations:
            await asyncio.gather(
                *self._speculations.values(), return_exceptions=True
            )
        self._speculations.clear()
        for _ in self._workers:
            self._queue.put_nowait(None)
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for key, entry in list(self._inflight.items()):
            if not entry.future.done():
                entry.future.set_result(
                    Response(STATUS_SHED, digest=key, reason=REASON_CLOSED)
                )
            self._inflight.pop(key, None)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self.slot_pool is not None:
            self.slot_pool.shutdown()

    async def __aenter__(self) -> "ServingServer":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # -- the front door ------------------------------------------------------

    async def submit(self, request: Request) -> Response:
        """Submit one request; always returns a :class:`Response`.

        Overload comes back as ``status="shed"`` (with a reason),
        backend failures as ``status="error"`` — only lifecycle misuse
        raises.  For session-carrying requests the submission also
        feeds the session's history/frame log and reconciles any
        outstanding speculation (hit, or cancelled-and-audited waste).
        """
        if self._closed:
            raise ServingError("ServingServer is closed")
        t0 = self.clock()
        key = request_key(request, salt=self.salt)
        obs.counter("serving.requests", tenant=request.tenant, kind=request.kind)

        state: Optional[SessionState] = None
        if self.sessions is not None and request.session:
            state = self.sessions.observe(request.session, request.tenant)
            obs.counter("serving.sessions.requests", tenant=request.tenant)
            self._reconcile_speculation(state, key)
            state.observe(request.params)

        response = await self._serve(request, key, t0)

        if state is not None:
            self._log_frame(state, key, response)
            if response.completed and not self._closed:
                self._maybe_speculate(state, request)
        return self._finish(response)

    async def _serve(self, request: Request, key: str, t0: float) -> Response:
        """The pre-session serving pipeline: coalesce / cache / admit / queue."""
        entry = self._inflight.get(key)
        if entry is not None:  # coalesce onto the in-flight computation
            entry.waiters += 1
            obs.counter("serving.coalesced", tenant=request.tenant)
            base = await entry.future
            return base.fan_out(request.tenant, self.clock() - t0, coalesced=True)

        cache = self._cache()
        if cache is not None:
            found, payload = cache.get(key, site="serving")
            if found:
                self.quota.touch(request.tenant, key)
                obs.counter("serving.cache.served", tenant=request.tenant)
                return Response(
                    STATUS_OK, payload=payload, digest=key, source="cache",
                    tenant=request.tenant, latency_s=self.clock() - t0,
                )

        admitted, reason = self.admission.admit(request, self._queue.qsize())
        if not admitted:
            obs.counter("serving.shed", reason=reason, tenant=request.tenant)
            return Response(
                STATUS_SHED, digest=key, reason=reason,
                tenant=request.tenant, latency_s=self.clock() - t0,
            )

        loop = asyncio.get_running_loop()
        entry = _Inflight(future=loop.create_future())
        self._inflight[key] = entry
        self._queue.put_nowait(
            _WorkItem(
                key=key,
                request=request,
                deadline_at=self.admission.deadline_of(request),
            )
        )
        if obs.enabled():
            obs.gauge("serving.queue.depth", self._queue.qsize())
            obs.gauge("serving.inflight", len(self._inflight))
        base = await entry.future
        return base.fan_out(request.tenant, self.clock() - t0, coalesced=False)

    def _finish(self, response: Response) -> Response:
        if obs.enabled():
            obs.histogram(
                "serving.latency.seconds", response.latency_s, status=response.status
            )
        return response

    # -- workers -------------------------------------------------------------

    async def _worker_loop(self) -> None:
        while True:
            item = await self._queue.get()
            try:
                if item is None:
                    return
                await self._dispatch(item)
            finally:
                self._queue.task_done()
                if obs.enabled():
                    obs.gauge("serving.queue.depth", self._queue.qsize())

    async def _dispatch(self, item: _WorkItem) -> None:
        entry = self._inflight.get(item.key)
        try:
            response = await self._produce(item)
        except Exception as exc:  # noqa: BLE001 - a worker loop must survive anything
            response = Response(STATUS_ERROR, digest=item.key, reason=repr(exc))
            obs.counter("serving.errors", tenant=item.request.tenant)
        if entry is not None and not entry.future.done():
            # resolve, then retire the key with no await in between, so
            # no submission can attach to an already-resolved entry
            entry.future.set_result(response)
            self._inflight.pop(item.key, None)
            if obs.enabled():
                obs.gauge("serving.inflight", len(self._inflight))

    async def _produce(self, item: _WorkItem) -> Response:
        request = item.request
        if item.deadline_at is not None and self.clock() > item.deadline_at:
            obs.counter("serving.shed", reason=REASON_EXPIRED, tenant=request.tenant)
            return Response(STATUS_SHED, digest=item.key, reason=REASON_EXPIRED)

        if self.breaker.allow():
            started = time.perf_counter()
            try:
                faults.check(
                    "serving.execute", tenant=request.tenant, kind=request.kind
                )
                payload = await self._run_backend(request, degraded=False, key=item.key)
            except Exception as exc:  # noqa: BLE001 - feeds the breaker
                self.breaker.record_failure()
                obs.counter("serving.errors", tenant=request.tenant)
                return Response(STATUS_ERROR, digest=item.key, reason=repr(exc))
            self.breaker.record_success()
            self.admission.observe_service(time.perf_counter() - started)
            obs.counter("serving.executions", kind=request.kind)
            self._store(request.tenant, item.key, payload)
            return Response(
                STATUS_OK, payload=payload, digest=item.key, source="render"
            )

        # breaker open: the kernel pool is sick or saturated — degrade
        cache = self._cache()
        if cache is not None:
            found, payload = cache.get(item.key, site="serving.degraded")
            if found:
                obs.counter("serving.degraded", source="cache")
                return Response(
                    STATUS_DEGRADED, payload=payload, digest=item.key, source="cache"
                )
        if self.config.allow_degraded:
            try:
                payload = await self._run_backend(request, degraded=True, key=item.key)
            except Exception as exc:  # noqa: BLE001
                obs.counter("serving.errors", tenant=request.tenant)
                return Response(STATUS_ERROR, digest=item.key, reason=repr(exc))
            obs.counter("serving.degraded", source="render")
            return Response(
                STATUS_DEGRADED, payload=payload, digest=item.key, source="render"
            )
        obs.counter("serving.shed", reason=REASON_SATURATED, tenant=request.tenant)
        return Response(STATUS_SHED, digest=item.key, reason=REASON_SATURATED)

    async def _run_backend(
        self, request: Request, degraded: bool, key: str = ""
    ) -> bytes:
        """Run the backend — on the shared pool, or the session's slot.

        With a slot pool, a dead slot (killed, or felled by the armed
        ``serving.slot`` fault) is retired mid-request: its sessions
        re-pin to survivors via the rendezvous router and the request
        retries on its new slot, so the caller still gets bytes — the
        chaos suite pins that the retried bytes are identical.
        """
        loop = asyncio.get_running_loop()
        if self.slot_pool is None:
            return await loop.run_in_executor(
                self._pool, self.backend, request, degraded
            )
        last_death: Optional[SlotDeadError] = None
        for _ in range(len(self.slot_pool.live_slots) + 1):
            slot = self.slot_pool.slot_for(request.session, fallback_key=key)
            state = (
                self.sessions.get(request.session)
                if self.sessions is not None and request.session
                else None
            )
            if state is not None:
                state.pin(slot.id)
            try:
                return await loop.run_in_executor(
                    slot.executor, self._call_slot, slot, request, degraded
                )
            except SlotDeadError as exc:
                last_death = exc
                self.slot_pool.retire(
                    slot.id,
                    self.sessions.states() if self.sessions is not None else (),
                )
        raise last_death if last_death is not None else ServingError(
            "no live slots"
        )

    def _call_slot(self, slot: BackendSlot, request: Request, degraded: bool) -> bytes:
        """One backend call on a slot's thread (the ``serving.slot`` site)."""
        if not slot.alive:
            raise SlotDeadError(f"slot {slot.id} is dead")
        try:
            faults.check(
                "serving.slot",
                slot=slot.id,
                session=request.session,
                tenant=request.tenant,
            )
        except InjectedFault as exc:
            slot.alive = False
            raise SlotDeadError(f"slot {slot.id} died: {exc}") from exc
        payload = slot.backend(request, degraded)
        slot.frames += 1
        if request.session:
            slot.sessions_seen.add(request.session)
        return payload

    # -- sessions and speculation --------------------------------------------

    def _log_frame(self, state: SessionState, key: str, response: Response) -> None:
        """Account one served frame in the session's FrameRecord-style log."""
        digest = (
            hashlib.sha256(response.payload).hexdigest()
            if response.payload is not None
            else ""
        )
        state.frames.append(
            SessionFrame(
                seq=state.next_seq(),
                key=key,
                status=response.status,
                source=(response.source if response.completed else response.reason)
                or "",
                digest=digest,
                slot=state.slot,
            )
        )
        bound = self.config.session_log_frames
        if bound and len(state.frames) > bound:
            del state.frames[: len(state.frames) - bound]

    def _reconcile_speculation(self, state: SessionState, key: str) -> None:
        """Judge the session's outstanding speculation against reality.

        A hit leaves the pre-rendered frame where the demand path will
        find it (in-flight key or cache entry); a misprediction cancels
        the render (result discarded, never stored) or audits an
        already-stored entry back out of the cache, so cancelled
        speculation leaves no cache pollution.
        """
        spec = state.speculation
        if spec is None:
            return
        state.speculation = None
        if spec.key == key:
            spec.hit = True
            obs.counter("serving.speculative.hit", tenant=state.tenant)
            return
        obs.counter("serving.speculative.waste", tenant=state.tenant)
        entry = self._inflight.get(spec.key)
        if (
            spec.task is not None
            and not spec.task.done()
            and (entry is None or entry.waiters == 0)
        ):
            spec.task.cancel()
        elif spec.stored:
            cache = self._cache()
            if cache is not None:
                cache.delete(spec.key, site="serving.speculative.waste")

    def _maybe_speculate(self, state: SessionState, request: Request) -> None:
        """Launch a speculative render of the session's predicted next frame.

        Only on idle capacity (queue at most ``speculation_idle_depth``
        deep), within the speculation budget, with running workers, and
        only when the predictor sees a constant-stride gesture.
        """
        config = self.config
        if config.speculation_budget <= 0 or not self._workers:
            return
        if len(self._speculations) >= config.speculation_budget:
            return
        if self._queue.qsize() > config.speculation_idle_depth:
            return
        predicted = self._predictor.predict(state.history)
        if predicted is None:
            return
        spec_request = replace(request, params=predicted)
        spec_key = request_key(spec_request, salt=self.salt)
        if spec_key in self._inflight:
            return
        cache = self._cache()
        if cache is not None:
            found, _ = cache.get(spec_key, site="serving.speculative.probe")
            if found:
                return  # the predicted frame is already a guaranteed hit
        loop = asyncio.get_running_loop()
        self._inflight[spec_key] = _Inflight(future=loop.create_future(), waiters=0)
        spec = Speculation(key=spec_key, params=predicted)
        task = loop.create_task(
            self._speculate(spec_request, spec_key, spec),
            name=f"repro-serving-speculate-{spec_key[:8]}",
        )
        spec.task = task
        state.speculation = spec
        self._speculations[spec_key] = task
        obs.counter("serving.speculative.started", tenant=request.tenant)
        if obs.enabled():
            obs.gauge("serving.speculative.inflight", len(self._speculations))

    async def _speculate(
        self, request: Request, key: str, spec: Speculation
    ) -> None:
        """Render one predicted frame; store it where demand will look."""
        try:
            payload = await self._run_backend(request, degraded=False, key=key)
        except asyncio.CancelledError:
            obs.counter("serving.speculative.cancelled", tenant=request.tenant)
            self._resolve_speculation(
                key,
                Response(STATUS_SHED, digest=key, reason="speculation_cancelled"),
            )
            raise
        except Exception as exc:  # noqa: BLE001 - speculation must never crash the loop
            obs.counter("serving.speculative.errors", tenant=request.tenant)
            self._resolve_speculation(
                key, Response(STATUS_ERROR, digest=key, reason=repr(exc))
            )
        else:
            self._store(request.tenant, key, payload)
            spec.stored = True
            obs.counter(
                "serving.speculative.rendered",
                tenant=request.tenant,
                kind=request.kind,
            )
            self._resolve_speculation(
                key,
                Response(STATUS_OK, payload=payload, digest=key, source="speculative"),
            )
        finally:
            self._speculations.pop(key, None)
            if obs.enabled():
                obs.gauge("serving.speculative.inflight", len(self._speculations))

    def _resolve_speculation(self, key: str, response: Response) -> None:
        entry = self._inflight.pop(key, None)
        if entry is not None and not entry.future.done():
            entry.future.set_result(response)

    async def drain_speculation(self) -> None:
        """Wait for every in-flight speculative render (test/bench hook)."""
        tasks = [task for task in self._speculations.values() if not task.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- cache / quota -------------------------------------------------------

    def _cache(self) -> Optional[ResultCache]:
        if self._explicit_cache is not None:
            return self._explicit_cache
        from repro.cache.config import get_config

        if get_config().enabled:
            return get_cache()
        return None

    def _store(self, tenant: str, key: str, payload: bytes) -> None:
        cache = self._cache()
        if cache is None:
            return
        cache.put(key, payload, site="serving")
        for evicted_key in self.quota.charge(
            tenant, key, len(payload) if payload else 0
        ):
            cache.delete(evicted_key, site="serving.quota")

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Live snapshot for dashboards and tests."""
        snapshot: Dict[str, Any] = {
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "breaker": self.breaker.state,
            "ewma_service_s": self.admission.ewma_service_s,
            "quota": self.quota.stats(),
            "closed": self._closed,
        }
        if self.sessions is not None:
            snapshot["sessions"] = len(self.sessions)
            snapshot["speculations_inflight"] = len(self._speculations)
        if self.slot_pool is not None:
            snapshot["slots"] = self.slot_pool.stats()
        return snapshot
