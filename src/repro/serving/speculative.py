"""Speculative next-frame prediction from session request history.

The petascale-animation observation: consecutive requests of an
exploratory session are *predictable* — an animating session steps
``timestep`` by a constant stride, an orbiting session steps a camera
angle by a constant increment.  :class:`NextFramePredictor` detects
exactly that shape in a session's recent request params and proposes
the next frame's params; the server pre-renders the prediction into
the serving cache on idle backend capacity (bounded by the speculation
budget) so the session's next demand request is a cache hit.

The predictor is deliberately conservative: it predicts only when

* the last :attr:`window` requests agree on every param except
  **exactly one**, and
* that one param is numeric and advanced by the **same non-zero
  stride** at every step of the window.

Anything else — a teleporting camera, a scene switch, mixed-axis
motion — predicts nothing, because a wrong speculation is paid twice
(wasted render + cache-entry cleanup, counted by
``serving.speculative.waste``).

Correctness contract: a speculative render goes through the *same*
backend path with the same canonical request key as a demand render,
so a speculative hit is byte-identical to what demand rendering would
have produced (the differential suite pins this for all five DV3D
plot types).
"""

from __future__ import annotations

from numbers import Number
from typing import Any, Dict, Mapping, Optional, Sequence


class NextFramePredictor:
    """Constant-stride detection over one session's param history."""

    def __init__(self, window: int = 3) -> None:
        if window < 3:
            raise ValueError("predictor window must be >= 3 (two strides)")
        self.window = int(window)

    def predict(
        self, history: Sequence[Mapping[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        """Params of the predicted next request, or None.

        *history* is oldest-first; only the trailing ``window`` entries
        are consulted.
        """
        if len(history) < self.window:
            return None
        recent = [dict(h) for h in history[-self.window :]]
        keys = set(recent[0])
        if any(set(h) != keys for h in recent[1:]):
            return None  # param sets differ: not one coherent gesture
        varying = [
            k for k in keys if any(h[k] != recent[0][k] for h in recent[1:])
        ]
        if len(varying) != 1:
            return None
        axis = varying[0]
        values = [h[axis] for h in recent]
        if not all(isinstance(v, Number) and not isinstance(v, bool) for v in values):
            return None
        strides = [values[i + 1] - values[i] for i in range(len(values) - 1)]
        stride = strides[0]
        if stride == 0 or any(s != stride for s in strides[1:]):
            return None
        predicted = dict(recent[-1])
        predicted[axis] = values[-1] + stride
        return predicted
