"""The app backend: request params → spreadsheet cell → frame bytes.

:class:`AppBackend` adapts a headless UV-CDAT session
(:class:`~repro.app.application.Application`) to the server's backend
contract ``(request, degraded) -> bytes``.  Each distinct *scene* — the
(template, source, variables, size, selector, cell_params) tuple — gets
one spreadsheet slot, built lazily with ``create_plot`` on first use
and re-rendered thereafter through ``render_slot`` (which rides the
renderer's frame cache).  Frames are encoded as deterministic binary
PPM, so byte-identical responses are a meaningful equality.

The Application and its workflow machinery are not thread-safe; the
backend serializes every call under one lock.  Parallelism at the
serving tier comes from coalescing and caching, not from concurrent
workflow mutation — and the kernels below may still fan out to their
own process pool.

Request ``params`` contract (all optional but ``template``)::

    template   palette plot name          (default "Slicer")
    source     dataset source string      (default "synthetic_reanalysis")
    variables  dict of port -> var name   (default {"variable": "ta"})
    size       workflow grid size dict    (e.g. {"lat": 16, "lon": 16})
    selector   subset selector dict
    cell_params  extra DV3D cell params
    width / height  frame pixels          (defaults 64 x 48)
    timestep   time index into the plot   (animation axis)
    azimuth    camera orbit degrees from the default view (orbit axis)

``timestep`` and ``azimuth`` are deliberately *excluded* from the scene
digest: an animating or orbiting session mutates one long-lived scene
slot instead of materializing a workflow per frame, which is exactly
what sticky session affinity keeps warm.  When the plotted variable is
a streamed :class:`~repro.cdms.lazy.LazyVariable`, each timestep render
also hints the variable's prefetch pipeline toward ``timestep + 1`` so
the chunk for the session's likely next frame is in flight before the
demand (or speculative) render asks for it.

``degraded=True`` renders at ``1/degraded_scale`` resolution (floored
at 8 px) — the breaker-open fallback the server uses when the full
pipeline is failing or saturated.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Tuple

from repro.app.application import Application
from repro.cache.keys import cache_key
from repro.rendering.ppm import ppm_bytes
from repro.serving.config import ServingConfig
from repro.serving.request import Request
from repro.util.errors import ServingError

#: floor for degraded renders; below this frames stop being pictures
MIN_DEGRADED_PX = 8


class AppBackend:
    """Serve ``render`` requests out of one headless application session."""

    def __init__(
        self,
        app: Optional[Application] = None,
        config: Optional[ServingConfig] = None,
        project: str = "serving",
        default_source: str = "synthetic_reanalysis",
        default_template: str = "Slicer",
    ) -> None:
        self.app = app if app is not None else Application()
        self.config = config if config is not None else ServingConfig()
        self.default_source = default_source
        self.default_template = default_template
        self._lock = threading.Lock()
        #: scene digest -> (sheet_name, slot)
        self._scenes: Dict[str, Tuple[str, Tuple[int, int]]] = {}
        if project not in self.app.projects:
            self.app.new_project(project)
        self.app.current_project = project

    def __call__(self, request: Request, degraded: bool) -> bytes:
        if request.kind != "render":
            raise ServingError(
                f"AppBackend only serves kind='render', got {request.kind!r}"
            )
        params = dict(request.params)
        width = int(params.get("width", 64))
        height = int(params.get("height", 48))
        if degraded:
            scale = self.config.degraded_scale
            width = max(width // scale, MIN_DEGRADED_PX)
            height = max(height // scale, MIN_DEGRADED_PX)
        with self._lock:
            sheet_name, slot = self._ensure_scene(params)
            cell = self._cell(sheet_name, slot)
            camera = None
            if "timestep" in params:
                timestep = int(params["timestep"])
                cell.plot.set_time_index(timestep)
                self._hint_prefetch(cell, timestep + 1)
            if "azimuth" in params:
                base = cell.plot.camera or cell.plot.default_camera()
                camera = base.orbit(float(params["azimuth"]), 0.0)
            framebuffer = cell.render(width, height, camera=camera)
        return ppm_bytes(framebuffer.to_uint8())

    # -- scene management ---------------------------------------------------

    def _ensure_scene(
        self, params: Dict[str, Any]
    ) -> Tuple[str, Tuple[int, int]]:
        """One slot per distinct scene; build the workflow on first use."""
        template = str(params.get("template", self.default_template))
        source = str(params.get("source", self.default_source))
        variables = dict(params.get("variables") or {"variable": "ta"})
        size = params.get("size")
        selector = params.get("selector")
        cell_params = params.get("cell_params")
        # timestep / azimuth are per-frame animation state, not scene
        # identity — one scene slot serves the whole gesture
        digest = cache_key(
            "serving.backend.scene",
            template, source, variables,
            size or {}, selector or {}, cell_params or {},
        )
        known = self._scenes.get(digest)
        if known is not None:
            return known
        sheet_name = f"scene_{len(self._scenes):04d}_{digest[:8]}"
        slot = (0, 0)
        self.app.create_plot(
            template, sheet_name, slot, source, variables,
            size=size, selector=selector, cell_params=cell_params,
        )
        self._scenes[digest] = (sheet_name, slot)
        return self._scenes[digest]

    def _cell(self, sheet_name: str, slot: Tuple[int, int]):
        """The live cell bound to *slot*, executing the workflow if needed."""
        sheet = self.app.project.sheets[sheet_name]
        cell_slot = sheet.get(slot[0], slot[1])
        if cell_slot is None or cell_slot.cell is None:
            self.app.project.execute_cell(sheet_name, slot[0], slot[1])
            cell_slot = sheet.get(slot[0], slot[1])
        return cell_slot.cell

    @staticmethod
    def _hint_prefetch(cell: Any, next_timestep: int) -> None:
        """Steer a streamed variable's prefetcher at the likely next frame."""
        hint = getattr(cell.plot.variable, "prefetch_hint", None)
        if hint is not None:
            hint(next_timestep)

    @property
    def scene_count(self) -> int:
        """How many distinct scenes this session has materialized."""
        with self._lock:
            return len(self._scenes)
