"""Per-tenant cache quotas and fairness accounting.

The serving cache is shared — coalesced requests from different tenants
store one entry — but *residency* is accounted per tenant: every store
is charged to the tenant whose request triggered it, and a tenant over
its entry/byte quota evicts its **own** least-recently-used keys.  One
noisy tenant rendering thousands of distinct scenes can therefore never
flush another tenant's working set out of the serving cache.

The ledger is bookkeeping only: the server performs the actual
:meth:`repro.cache.store.ResultCache.delete` calls with the keys the
ledger hands back, so the ledger stays trivially testable (no I/O, no
clock).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Tuple


class QuotaLedger:
    """Tracks per-tenant serving-cache residency and computes evictions.

    ``max_entries`` / ``max_bytes`` of 0 disable that bound.  All
    methods are thread-safe (workers charge from executor threads).
    """

    def __init__(self, max_entries: int = 0, max_bytes: int = 0) -> None:
        self.max_entries = int(max_entries)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        #: tenant -> OrderedDict[key, nbytes] in LRU order (oldest first)
        self._tenants: Dict[str, "OrderedDict[str, int]"] = {}
        self._bytes: Dict[str, int] = {}
        self._charged: Dict[str, int] = {}
        self._evicted: Dict[str, int] = {}

    @property
    def enforcing(self) -> bool:
        return self.max_entries > 0 or self.max_bytes > 0

    def charge(self, tenant: str, key: str, nbytes: int) -> List[str]:
        """Account a stored entry to *tenant*; returns keys to evict.

        The returned keys are this tenant's LRU overflow — the caller
        deletes them from the shared cache.  Re-charging a key the
        tenant already holds refreshes its recency and size without
        double-counting.
        """
        nbytes = max(int(nbytes), 0)
        with self._lock:
            held = self._tenants.setdefault(tenant, OrderedDict())
            previous = held.pop(key, None)
            held[key] = nbytes
            total = self._bytes.get(tenant, 0) + nbytes - (previous or 0)
            self._charged[tenant] = self._charged.get(tenant, 0) + 1
            evicted: List[str] = []
            while self.max_entries and len(held) > self.max_entries:
                old_key, old_bytes = held.popitem(last=False)
                total -= old_bytes
                evicted.append(old_key)
            while self.max_bytes and total > self.max_bytes and held:
                old_key, old_bytes = held.popitem(last=False)
                total -= old_bytes
                evicted.append(old_key)
            self._bytes[tenant] = total
            if evicted:
                self._evicted[tenant] = self._evicted.get(tenant, 0) + len(evicted)
            return evicted

    def touch(self, tenant: str, key: str) -> None:
        """Refresh *key*'s recency for *tenant* (a serving-cache hit)."""
        with self._lock:
            held = self._tenants.get(tenant)
            if held is not None and key in held:
                held.move_to_end(key)

    def holdings(self, tenant: str) -> List[str]:
        """The keys currently charged to *tenant*, LRU-first."""
        with self._lock:
            return list(self._tenants.get(tenant, ()))

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Fairness accounting: per-tenant residency and churn."""
        with self._lock:
            tenants: Dict[str, Dict[str, int]] = {}
            for tenant, held in self._tenants.items():
                tenants[tenant] = {
                    "entries": len(held),
                    "bytes": self._bytes.get(tenant, 0),
                    "charged": self._charged.get(tenant, 0),
                    "evicted": self._evicted.get(tenant, 0),
                }
            return tenants

    def totals(self) -> Tuple[int, int]:
        """(total entries, total bytes) across all tenants."""
        with self._lock:
            return (
                sum(len(held) for held in self._tenants.values()),
                sum(self._bytes.values()),
            )
