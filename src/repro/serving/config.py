"""Configuration for the multi-tenant serving layer.

A :class:`ServingConfig` bounds every resource the server manages: the
executor thread pool, the admission queue, the overload breaker, the
degraded-render fallback and the per-tenant cache quotas.  All limits
are explicit and validated up front so a misconfigured deployment fails
at construction, not under load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ServingError


@dataclass(frozen=True)
class ServingConfig:
    """Bounds and policies of one :class:`~repro.serving.server.ServingServer`.

    Parameters
    ----------
    workers:
        Executor threads draining the admission queue.  Each runs one
        request at a time through the backend (which may itself fan out
        to a process-parallel kernel pool).
    queue_limit:
        Maximum queued-but-not-executing requests.  A full queue sheds
        new non-coalescing requests with reason ``queue_full``.
    default_deadline_s:
        Deadline applied to requests that do not carry their own
        (0 disables).  Deadlines are relative to submission.
    shed_on_predicted_miss:
        When a request has a deadline, reject it at admission if the
        EWMA-estimated queue wait already exceeds the deadline —
        shedding early is cheaper than executing work nobody will wait
        for.
    ewma_alpha:
        Smoothing factor of the service-time estimate feeding the
        predicted-wait check.
    breaker_failures / breaker_reset_s:
        Consecutive backend failures that open the kernel circuit
        breaker, and how long it stays open before half-open probing.
        While open, requests are served from cache or degraded instead
        of hammering the failing kernel pool.
    allow_degraded:
        Whether an open breaker may fall back to a reduced-resolution
        render (``degraded_scale`` divides each frame dimension).  With
        this off, uncached requests under an open breaker are shed with
        reason ``saturated``.
    tenant_max_entries / tenant_max_bytes:
        Per-tenant quota on serving-cache residency (0 = unlimited).
        A tenant exceeding its quota evicts its *own* least-recent
        entries; other tenants' entries are never touched.
    slots:
        Backend slots for sticky session affinity (0 = disabled, the
        stateless pre-session behavior).  With ``slots > 0`` the server
        routes every request through a :class:`~repro.serving.sessions.SlotPool`
        — a session's frames serialize through one pinned slot and keep
        hitting that slot's renderer/``_derived`` caches; a dead slot's
        sessions re-pin to survivors.
    speculation_budget:
        Maximum concurrent speculative next-frame renders (0 disables
        speculation).  Speculative work only launches when the demand
        queue is at most ``speculation_idle_depth`` deep — idle backend
        capacity, never capacity demand traffic is waiting for.
    speculation_idle_depth:
        Queue-depth ceiling below which speculation may launch.
    session_history:
        Request-history window kept per session (the speculative
        predictor's input; must cover its 3-request stride window).
    session_log_frames:
        Per-session frame-log ring bound (0 = unbounded; the chaos
        suite audits every frame, the wire endpoint replays from it).
    """

    workers: int = 2
    queue_limit: int = 64
    default_deadline_s: float = 0.0
    shed_on_predicted_miss: bool = True
    ewma_alpha: float = 0.2
    breaker_failures: int = 3
    breaker_reset_s: float = 5.0
    allow_degraded: bool = True
    degraded_scale: int = 4
    tenant_max_entries: int = 0
    tenant_max_bytes: int = 0
    slots: int = 0
    speculation_budget: int = 0
    speculation_idle_depth: int = 0
    session_history: int = 8
    session_log_frames: int = 64

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServingError(f"workers must be >= 1, got {self.workers}")
        if self.queue_limit < 1:
            raise ServingError(f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.default_deadline_s < 0:
            raise ServingError(
                f"default_deadline_s must be >= 0, got {self.default_deadline_s}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ServingError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.breaker_failures < 1:
            raise ServingError(
                f"breaker_failures must be >= 1, got {self.breaker_failures}"
            )
        if self.breaker_reset_s <= 0:
            raise ServingError(
                f"breaker_reset_s must be positive, got {self.breaker_reset_s}"
            )
        if self.degraded_scale < 1:
            raise ServingError(
                f"degraded_scale must be >= 1, got {self.degraded_scale}"
            )
        if self.tenant_max_entries < 0:
            raise ServingError(
                f"tenant_max_entries must be >= 0, got {self.tenant_max_entries}"
            )
        if self.tenant_max_bytes < 0:
            raise ServingError(
                f"tenant_max_bytes must be >= 0, got {self.tenant_max_bytes}"
            )
        if self.slots < 0:
            raise ServingError(f"slots must be >= 0, got {self.slots}")
        if self.speculation_budget < 0:
            raise ServingError(
                f"speculation_budget must be >= 0, got {self.speculation_budget}"
            )
        if self.speculation_idle_depth < 0:
            raise ServingError(
                "speculation_idle_depth must be >= 0, got "
                f"{self.speculation_idle_depth}"
            )
        if self.session_history < 3:
            raise ServingError(
                "session_history must be >= 3 (the predictor's stride "
                f"window), got {self.session_history}"
            )
        if self.session_log_frames < 0:
            raise ServingError(
                f"session_log_frames must be >= 0, got {self.session_log_frames}"
            )
