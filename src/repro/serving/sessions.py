"""Sticky session affinity: routers, backend slots, session state.

The paper's interaction loop is exploratory — a user orbits a camera or
animates timesteps — so consecutive requests from one session are
highly correlated.  A stateless front door re-pays scene lookup and
cache admission per frame; this module makes the correlation pay
instead:

* :class:`AffinityRouter` — deterministic rendezvous (highest-random-
  weight) hashing from ``SessionId`` to a backend slot.  The mapping
  depends only on the *current* live-slot membership, never on the
  order joins and leaves happened in, and removing a slot moves only
  that slot's sessions (the minimal-disruption property the hypothesis
  suite pins);
* :class:`SlotPool` — one single-threaded executor per backend slot, so
  a pinned session's frames serialize through one slot and keep hitting
  that slot's renderer frame cache and ``ImageData._derived`` caches.
  Slots can die (a crash, or the armed ``serving.slot`` fault site);
  the pool retires them and the router re-pins;
* :class:`SessionRegistry` / :class:`SessionState` — per-session
  request history (the speculative predictor's input) and a
  :class:`SessionFrame` log in the style of the streaming animator's
  ``FrameRecord``: every frame a session was served is accounted with
  its sequence number, digest and provenance.

Observability: ``serving.sessions.opened`` / ``serving.sessions.repinned``
counters and the ``serving.sessions.active`` gauge.
"""

from __future__ import annotations

import hashlib
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.util.errors import ServingError

#: sessions are plain opaque strings (Request.session)
SessionId = str


def _score(slot_id: str, session_id: str) -> int:
    """Deterministic rendezvous weight of (slot, session).

    sha256 over an unambiguous encoding — stable across processes and
    Python hash seeds, which is what makes re-pinning reproducible in
    a multi-process deployment.
    """
    payload = b"repro.serving.affinity\x00" + slot_id.encode() + b"\x00" + session_id.encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


class AffinityRouter:
    """Rendezvous-hash router: session id -> live backend slot.

    The mapping is a pure function of (session, live slot set): any
    interleaving of joins and leaves that reaches the same membership
    yields the same routing table, and retiring a slot re-routes only
    the sessions that were pinned to it.
    """

    def __init__(self, slots: Sequence[str] = ()) -> None:
        self._lock = threading.Lock()
        self._slots: List[str] = []
        for slot in slots:
            self.join(slot)

    @property
    def slots(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._slots))

    def join(self, slot_id: str) -> None:
        slot_id = str(slot_id)
        if not slot_id:
            raise ServingError("slot id must be a non-empty string")
        with self._lock:
            if slot_id not in self._slots:
                self._slots.append(slot_id)

    def leave(self, slot_id: str) -> None:
        with self._lock:
            if slot_id in self._slots:
                self._slots.remove(slot_id)

    def slot_for(self, session_id: SessionId) -> str:
        """The live slot *session_id* is pinned to (raises when empty)."""
        with self._lock:
            if not self._slots:
                raise ServingError("affinity router has no live slots")
            return max(
                self._slots, key=lambda slot: (_score(slot, session_id), slot)
            )


@dataclass(frozen=True)
class SessionFrame:
    """One served frame in a session's log (``FrameRecord`` style).

    ``source`` says who produced the pixels: ``render`` (demand),
    ``cache`` (serving-cache hit), ``speculative`` (a pre-rendered
    next-frame the session then asked for), or the degradation sources
    the server already reports.
    """

    seq: int
    key: str
    status: str
    source: str
    digest: str
    slot: str = ""


class SessionState:
    """Everything the server remembers about one session.

    Not thread-safe on its own; the owning :class:`SessionRegistry`
    hands out states under the caller's single-submission discipline
    (the asyncio event loop serializes ``submit`` bookkeeping).
    """

    def __init__(self, session_id: SessionId, tenant: str, history: int = 8) -> None:
        self.id = session_id
        self.tenant = tenant
        self.history_limit = max(int(history), 2)
        #: most-recent request params, oldest first
        self.history: List[Mapping[str, Any]] = []
        #: FrameRecord-style accounting of every served frame
        self.frames: List[SessionFrame] = []
        #: the slot this session's last request ran on (router decision)
        self.slot: str = ""
        #: slots this session has been pinned to, in order (re-pin audit)
        self.slot_history: List[str] = []
        #: the one outstanding speculation for this session, if any
        self.speculation: Optional["Speculation"] = None
        self._seq = 0

    def observe(self, params: Mapping[str, Any]) -> None:
        self.history.append(dict(params))
        if len(self.history) > self.history_limit:
            del self.history[: len(self.history) - self.history_limit]

    def pin(self, slot_id: str) -> None:
        if slot_id != self.slot:
            self.slot = slot_id
            self.slot_history.append(slot_id)

    def next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq


@dataclass
class Speculation:
    """One in-flight (or completed) speculative next-frame render."""

    key: str
    params: Mapping[str, Any]
    task: Optional[Any] = None  # asyncio.Task while rendering
    stored: bool = False  # payload reached the serving cache
    hit: bool = False  # the session demanded the predicted frame


class SessionRegistry:
    """Session id -> :class:`SessionState`, with open/active accounting."""

    def __init__(self, history: int = 8) -> None:
        self.history = history
        self._states: Dict[SessionId, SessionState] = {}

    def observe(self, session_id: SessionId, tenant: str) -> SessionState:
        state = self._states.get(session_id)
        if state is None:
            state = SessionState(session_id, tenant, history=self.history)
            self._states[session_id] = state
            obs.counter("serving.sessions.opened", tenant=tenant)
            if obs.enabled():
                obs.gauge("serving.sessions.active", len(self._states))
        return state

    def get(self, session_id: SessionId) -> Optional[SessionState]:
        return self._states.get(session_id)

    def states(self) -> List[SessionState]:
        return list(self._states.values())

    def __len__(self) -> int:
        return len(self._states)


@dataclass
class BackendSlot:
    """One pinned execution lane: a backend plus its single thread."""

    id: str
    backend: Any  # the (request, degraded) -> bytes callable
    executor: ThreadPoolExecutor
    alive: bool = True
    frames: int = 0
    sessions_seen: set = field(default_factory=set)


class SlotPool:
    """The fixed set of backend slots the affinity router routes over.

    Every slot runs one request at a time on its own thread, so a
    session pinned to a slot gets strict per-session ordering and warm
    per-slot caches.  ``kill`` (tests) or an armed ``serving.slot``
    fault marks a slot dead; :meth:`retire` removes it from the router
    and reports which sessions were re-pinned where.
    """

    def __init__(self, backends: Sequence[Any], router: Optional[AffinityRouter] = None) -> None:
        if not backends:
            raise ServingError("SlotPool needs at least one backend slot")
        self.router = router if router is not None else AffinityRouter()
        self._slots: Dict[str, BackendSlot] = {}
        for index, backend in enumerate(backends):
            slot_id = f"slot-{index}"
            self._slots[slot_id] = BackendSlot(
                id=slot_id,
                backend=backend,
                executor=ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-serving-{slot_id}"
                ),
            )
            self.router.join(slot_id)

    # -- routing -------------------------------------------------------------

    def slot_for(self, session_id: SessionId, fallback_key: str = "") -> BackendSlot:
        """The live slot for *session_id* (or *fallback_key* when sessionless)."""
        route = session_id or fallback_key
        slot_id = self.router.slot_for(route)
        return self._slots[slot_id]

    def slot(self, slot_id: str) -> BackendSlot:
        try:
            return self._slots[slot_id]
        except KeyError:
            raise ServingError(f"unknown slot {slot_id!r}") from None

    @property
    def live_slots(self) -> List[str]:
        return [s.id for s in self._slots.values() if s.alive]

    # -- death and re-pinning ------------------------------------------------

    def kill(self, slot_id: str) -> None:
        """Mark a slot dead (test hook; the executor thread is left to
        drain — a dead slot refuses new work, it does not strand it)."""
        self.slot(slot_id).alive = False

    def retire(
        self, slot_id: str, sessions: Sequence[SessionState] = ()
    ) -> Dict[str, str]:
        """Remove a dead slot from routing; re-pin its sessions.

        Returns ``{session_id: new_slot_id}`` for every session that was
        pinned to the retired slot — by the rendezvous property, no
        other session's routing changes.
        """
        slot = self._slots.get(slot_id)
        if slot is None:
            return {}
        slot.alive = False
        self.router.leave(slot_id)
        if not self.router.slots:
            raise ServingError(f"slot {slot_id!r} died and no slots survive")
        moved: Dict[str, str] = {}
        for state in sessions:
            if state.slot == slot_id:
                new_slot = self.router.slot_for(state.id)
                state.pin(new_slot)
                moved[state.id] = new_slot
        if moved:
            obs.counter("serving.sessions.repinned", len(moved), slot=slot_id)
        return moved

    def shutdown(self) -> None:
        for slot in self._slots.values():
            slot.executor.shutdown(wait=True)

    def stats(self) -> Dict[str, Dict[str, Any]]:
        return {
            slot.id: {
                "alive": slot.alive,
                "frames": slot.frames,
                "sessions": len(slot.sessions_seen),
            }
            for slot in self._slots.values()
        }
