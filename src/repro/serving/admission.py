"""Admission control: bounded queues and deadline-aware rejection.

The server asks the :class:`AdmissionController` before enqueueing any
non-coalescing request.  Two checks, both O(1):

* **bounded queue** — at most ``queue_limit`` requests may wait;
  beyond that the system is saturated and queueing more work only
  grows latency for everyone (open-loop load does not slow down when
  the server does);
* **predicted deadline miss** — an EWMA of observed service times
  estimates how long the current queue will take to drain; a request
  whose deadline is shorter than that estimate is shed immediately
  rather than executed for nobody.

The clock is injectable (mirroring :mod:`repro.resilience`): tests
drive deadline expiry with a fake clock instead of sleeping on the
event loop.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

from repro.serving.config import ServingConfig
from repro.serving.request import Request

#: shed reasons reported in Response.reason and the serving.shed counter
REASON_QUEUE_FULL = "queue_full"
REASON_DEADLINE = "deadline"
REASON_EXPIRED = "expired"
REASON_SATURATED = "saturated"
REASON_CLOSED = "closed"


class AdmissionController:
    """Decides, per request, whether the queue may grow by one."""

    def __init__(
        self,
        config: ServingConfig,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self.clock = clock
        self._ewma_service_s = 0.0

    # -- service-time estimation -------------------------------------------

    @property
    def ewma_service_s(self) -> float:
        """Smoothed per-request service time (0 until first observation)."""
        return self._ewma_service_s

    def observe_service(self, seconds: float) -> None:
        """Feed one completed execution's duration into the estimate."""
        seconds = max(float(seconds), 0.0)
        if self._ewma_service_s == 0.0:
            self._ewma_service_s = seconds
        else:
            alpha = self.config.ewma_alpha
            self._ewma_service_s = (
                alpha * seconds + (1.0 - alpha) * self._ewma_service_s
            )

    def estimated_wait_s(self, queue_depth: int) -> float:
        """Predicted queue wait for a request arriving now.

        ``(depth + 1)`` requests must be served across ``workers``
        parallel drains before the newcomer completes; with no service
        observations yet the estimate is 0 (admit optimistically).
        """
        if self._ewma_service_s == 0.0:
            return 0.0
        return (queue_depth + 1) * self._ewma_service_s / self.config.workers

    # -- the admission decision ---------------------------------------------

    def deadline_of(self, request: Request) -> Optional[float]:
        """Absolute deadline for *request* admitted now (None = none)."""
        relative = request.deadline_s
        if relative is None and self.config.default_deadline_s > 0:
            relative = self.config.default_deadline_s
        if relative is None or relative <= 0:
            return None
        return self.clock() + float(relative)

    def admit(self, request: Request, queue_depth: int) -> Tuple[bool, str]:
        """``(admitted, shed_reason)``; reason is ``""`` when admitted."""
        if queue_depth >= self.config.queue_limit:
            return False, REASON_QUEUE_FULL
        relative = request.deadline_s
        if relative is None and self.config.default_deadline_s > 0:
            relative = self.config.default_deadline_s
        if (
            relative is not None
            and relative > 0
            and self.config.shed_on_predicted_miss
            and self.estimated_wait_s(queue_depth) > relative
        ):
            return False, REASON_DEADLINE
        return True, ""
