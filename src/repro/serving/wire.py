"""The session wire protocol: versioned, digest-stamped framed messages.

The hyperwall protocol (:mod:`repro.hyperwall.protocol`) generalized
for remote serving clients.  The hyperwall never ships pixels — every
node renders its own display — but a serving client *only* wants
pixels, so frames here carry an arbitrary binary payload next to a
JSON header, and every frame is stamped with a sha256 content digest
so a client can prove the bytes it received are the bytes the server
rendered (the same digest discipline the ``.cdz`` container applies to
chunks on disk).

Frame layout (all integers big-endian)::

    magic    4 bytes   b"RSWP"
    version  1 byte    WIRE_VERSION
    hlen     4 bytes   header length
    plen     8 bytes   payload length
    header   hlen bytes   JSON: {"kind": ..., "meta": {...}}
    payload  plen bytes   opaque binary (frame pixels, or empty)
    digest   32 bytes  sha256(header + payload)

Every way a peer can present a broken frame maps to a **typed**
:class:`~repro.util.errors.ServingError` subclass — the corruption
matrix the wire test suite walks:

* bad magic / absurd lengths / malformed header → :class:`WireFormatError`
* unknown version → :class:`WireVersionError` (refuse the peer)
* stream or buffer ends mid-frame → :class:`WireTruncatedError`
* digest mismatch (bit flip in flight) → :class:`WireCorruptionError`

Framing I/O reuses the hyperwall's :func:`~repro.hyperwall.protocol.recv_exact`
loop; a clean EOF *between* frames returns ``None`` (orderly close),
anywhere else is truncation.
"""

from __future__ import annotations

import hashlib
import json
import socket
import struct
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import obs
from repro.hyperwall.protocol import recv_exact
from repro.resilience import faults
from repro.util.errors import (
    WireCorruptionError,
    WireFormatError,
    WireTruncatedError,
    WireVersionError,
)

MAGIC = b"RSWP"
WIRE_VERSION = 1

_PREFIX = struct.Struct(">4sBIQ")  # magic, version, header len, payload len
_DIGEST_BYTES = 32

MAX_HEADER_BYTES = 1 * 1024 * 1024
MAX_PAYLOAD_BYTES = 256 * 1024 * 1024

#: frame kinds of the session protocol
KIND_HELLO = "hello"
KIND_WELCOME = "welcome"
KIND_OPEN = "open"
KIND_OPENED = "opened"
KIND_RENDER = "render"
KIND_FRAME = "frame"
KIND_ERROR = "error"
KIND_CLOSE = "close"
KIND_BYE = "bye"


@dataclass(frozen=True)
class WireFrame:
    """One framed message: a kind, JSON metadata, and binary payload."""

    kind: str
    meta: Dict[str, Any] = field(default_factory=dict)
    payload: bytes = b""

    def payload_digest(self) -> str:
        """Hex sha256 of the payload alone (what FRAME meta advertises)."""
        return hashlib.sha256(self.payload).hexdigest()


def encode_frame(frame: WireFrame, version: int = WIRE_VERSION) -> bytes:
    """Serialize *frame* to wire bytes (header + payload digest-stamped)."""
    header = json.dumps(
        {"kind": frame.kind, "meta": frame.meta}, sort_keys=True
    ).encode("utf-8")
    if len(header) > MAX_HEADER_BYTES:
        raise WireFormatError(f"header of {len(header)} bytes exceeds limit")
    if len(frame.payload) > MAX_PAYLOAD_BYTES:
        raise WireFormatError(
            f"payload of {len(frame.payload)} bytes exceeds limit"
        )
    digest = hashlib.sha256(header + frame.payload).digest()
    return (
        _PREFIX.pack(MAGIC, version, len(header), len(frame.payload))
        + header
        + frame.payload
        + digest
    )


def _parse(header: bytes, payload: bytes, digest: bytes) -> WireFrame:
    if hashlib.sha256(header + payload).digest() != digest:
        raise WireCorruptionError(
            "frame content digest mismatch (bytes corrupted in flight)"
        )
    try:
        data = json.loads(header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"malformed frame header: {exc}") from exc
    if not isinstance(data, dict) or "kind" not in data:
        raise WireFormatError(f"malformed frame header structure: {data!r}")
    meta = data.get("meta", {})
    if not isinstance(meta, dict):
        raise WireFormatError(f"frame meta is not an object: {meta!r}")
    return WireFrame(str(data["kind"]), meta, payload)


def _check_prefix(prefix: bytes) -> Tuple[int, int]:
    """Validate a 17-byte frame prefix; returns (header len, payload len)."""
    magic, version, hlen, plen = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireVersionError(
            f"unsupported wire version {version} (this endpoint speaks "
            f"{WIRE_VERSION})"
        )
    if hlen > MAX_HEADER_BYTES:
        raise WireFormatError(f"frame header of {hlen} bytes exceeds limit")
    if plen > MAX_PAYLOAD_BYTES:
        raise WireFormatError(f"frame payload of {plen} bytes exceeds limit")
    return hlen, plen


def decode_frame(data: bytes) -> Tuple[WireFrame, int]:
    """Decode one frame from a byte buffer; returns (frame, bytes consumed).

    Raises :class:`WireTruncatedError` when the buffer holds less than
    one whole frame — the streaming-socket analog is EOF mid-frame.
    """
    if len(data) < _PREFIX.size:
        raise WireTruncatedError(
            f"buffer of {len(data)} bytes is shorter than a frame prefix"
        )
    hlen, plen = _check_prefix(data[: _PREFIX.size])
    total = _PREFIX.size + hlen + plen + _DIGEST_BYTES
    if len(data) < total:
        raise WireTruncatedError(
            f"buffer ends mid-frame ({len(data)} of {total} bytes)"
        )
    start = _PREFIX.size
    header = data[start : start + hlen]
    payload = data[start + hlen : start + hlen + plen]
    digest = data[start + hlen + plen : total]
    return _parse(header, payload, digest), total


def write_frame(sock: socket.socket, frame: WireFrame) -> None:
    """Encode and send one frame (the ``serving.wire.send`` fault site).

    A ``drop`` fault closes the connection instead of sending — the
    deterministic stand-in for a server falling over mid-stream, which
    is what the reconnect-with-resume path recovers from.
    """
    data = encode_frame(frame)
    fault = faults.check("serving.wire.send", kind=frame.kind)
    if fault is not None and fault.action == "drop":
        sock.close()
        return
    if obs.enabled():
        obs.counter("serving.wire.frames.sent", kind=frame.kind)
        obs.counter("serving.wire.bytes.sent", len(data), kind=frame.kind)
    sock.sendall(data)


def read_frame(sock: socket.socket) -> Optional[WireFrame]:
    """Read one frame; None on orderly EOF at a frame boundary."""
    prefix = recv_exact(sock, _PREFIX.size, on_truncation=WireTruncatedError)
    if prefix is None:
        return None
    hlen, plen = _check_prefix(prefix)
    rest = recv_exact(
        sock, hlen + plen + _DIGEST_BYTES, on_truncation=WireTruncatedError
    )
    if rest is None:
        raise WireTruncatedError("connection closed after frame prefix")
    frame = _parse(rest[:hlen], rest[hlen : hlen + plen], rest[hlen + plen :])
    if obs.enabled():
        obs.counter("serving.wire.frames.received", kind=frame.kind)
        obs.counter(
            "serving.wire.bytes.received",
            _PREFIX.size + len(rest),
            kind=frame.kind,
        )
    return frame
