"""Multi-tenant async serving over the exploration substrate.

The paper's workflow is one scientist at one workstation (or one
hyperwall); this package is the step toward *many* concurrent sessions
sharing one render substrate.  An asyncio :class:`ServingServer` fronts
:mod:`repro.app` / :mod:`repro.spreadsheet` with:

* **request coalescing** — identical :mod:`repro.cache` digests
  collapse to one in-flight computation, fanned out byte-identically
  (:mod:`repro.serving.request`);
* **admission control + load shedding** — bounded queues and
  deadline-aware rejection (:mod:`repro.serving.admission`), and
  graceful degradation through a :mod:`repro.resilience` circuit
  breaker (cached/low-res frames when the kernel path is saturated);
* **per-tenant fairness** — cache-residency quotas so one noisy tenant
  cannot evict another's working set (:mod:`repro.serving.quota`);
* **observability** — queue depth, coalesced fan-out, shed counters
  and latency histograms via :mod:`repro.obs`;
* **session-aware serving** — sticky session→slot affinity by
  rendezvous hashing with re-pinning on slot death
  (:mod:`repro.serving.sessions`), speculative next-frame rendering
  from per-session request history (:mod:`repro.serving.speculative`),
  and a versioned digest-stamped wire protocol with
  reconnect-and-resume (:mod:`repro.serving.wire`,
  :mod:`repro.serving.endpoint`).

``tools/loadgen.py`` drives this layer open-loop with deterministic
seeded zipf traffic and emits the ``BENCH_serving.json`` artifact;
``--session-locality`` adds session-correlated animation traces and
``BENCH_serving_sessions.json``.
"""

from repro.serving.admission import (
    REASON_CLOSED,
    REASON_DEADLINE,
    REASON_EXPIRED,
    REASON_QUEUE_FULL,
    REASON_SATURATED,
    AdmissionController,
)
from repro.serving.backend import AppBackend
from repro.serving.config import ServingConfig
from repro.serving.quota import QuotaLedger
from repro.serving.request import (
    KINDS,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SHED,
    Request,
    Response,
    request_key,
)
from repro.serving.endpoint import WireSessionClient, WireSessionServer
from repro.serving.server import ServingServer
from repro.serving.sessions import (
    AffinityRouter,
    BackendSlot,
    SessionFrame,
    SessionRegistry,
    SessionState,
    SlotPool,
)
from repro.serving.speculative import NextFramePredictor
from repro.serving.wire import WIRE_VERSION, WireFrame, decode_frame, encode_frame

__all__ = [
    "AdmissionController",
    "AffinityRouter",
    "AppBackend",
    "BackendSlot",
    "KINDS",
    "NextFramePredictor",
    "QuotaLedger",
    "REASON_CLOSED",
    "REASON_DEADLINE",
    "REASON_EXPIRED",
    "REASON_QUEUE_FULL",
    "REASON_SATURATED",
    "Request",
    "Response",
    "STATUS_DEGRADED",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_SHED",
    "ServingConfig",
    "ServingServer",
    "SessionFrame",
    "SessionRegistry",
    "SessionState",
    "SlotPool",
    "WIRE_VERSION",
    "WireFrame",
    "WireSessionClient",
    "WireSessionServer",
    "decode_frame",
    "encode_frame",
    "request_key",
]
