"""The session wire endpoint: a socket front door over the ServingServer.

:class:`WireSessionServer` exposes one :class:`~repro.serving.server.ServingServer`
to remote clients over the versioned framed protocol of
:mod:`repro.serving.wire`.  Each connection speaks a short dialogue::

    client                          server
    ------                          ------
    HELLO                     ->
                              <-    WELCOME {wire_version}
    OPEN {session, tenant,    ->
          resume_from}
                              <-    OPENED {session, replay, next_seq}
                              <-    FRAME * replay      (missed frames)
    RENDER {params}           ->
                              <-    FRAME {seq, status, source, digest}
    ...
    CLOSE                     ->
                              <-    BYE

Reconnect-with-resume: every frame served to a session is also logged
in a per-session replay ring (seq, metadata, payload) before it goes on
the wire.  A client whose connection dies mid-stream — the armed
``serving.wire.send`` fault closes the socket, the deterministic stand-
in for a network partition — reconnects and OPENs the same session with
``resume_from`` set to the first sequence number it never received; the
server replays the missed frames from the ring byte-identically, then
the stream continues.  The ring is bounded by
``ServingConfig.session_log_frames`` (oldest entries trimmed first).

Protocol violations never hang a peer: a malformed, truncated, corrupt
or wrong-version frame raises a typed
:class:`~repro.util.errors.WireError` on the reading side, and the
server answers what it can with a ``KIND_ERROR`` frame before closing.

The asyncio serving loop runs on a dedicated thread; connection threads
bridge into it with ``run_coroutine_threadsafe``, so blocking socket
I/O never stalls admission, coalescing or speculation.
"""

from __future__ import annotations

import asyncio
import hashlib
import socket
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.cache.store import ResultCache
from repro.serving import wire
from repro.serving.config import ServingConfig
from repro.serving.request import Request
from repro.serving.server import Backend, ServingServer
from repro.serving.wire import WireFrame
from repro.util.errors import (
    ServingError,
    WireCorruptionError,
    WireError,
    WireTruncatedError,
    WireVersionError,
)


class _SessionLog:
    """One session's replay ring: frames already served, by sequence."""

    def __init__(self, bound: int) -> None:
        self.bound = int(bound)
        self.next_seq = 0
        self.frames: List[Tuple[int, Dict[str, Any], bytes]] = []

    def append(self, meta: Dict[str, Any], payload: bytes) -> int:
        seq = self.next_seq
        self.next_seq += 1
        self.frames.append((seq, dict(meta, seq=seq), payload))
        if self.bound and len(self.frames) > self.bound:
            del self.frames[: len(self.frames) - self.bound]
        return seq

    def since(self, resume_from: int) -> List[Tuple[int, Dict[str, Any], bytes]]:
        return [entry for entry in self.frames if entry[0] >= resume_from]


class WireSessionServer:
    """Serve session render streams over a listening socket.

    Parameters mirror :class:`~repro.serving.server.ServingServer`; the
    endpoint owns the serving server and its event loop thread.
    """

    def __init__(
        self,
        backend: Backend,
        config: Optional[ServingConfig] = None,
        cache: Optional[ResultCache] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        io_timeout: float = 30.0,
    ) -> None:
        self.config = config if config is not None else ServingConfig()
        self.server = ServingServer(backend, config=self.config, cache=cache)
        self.io_timeout = float(io_timeout)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._loop_thread: Optional[threading.Thread] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conns: List[socket.socket] = []
        self._lock = threading.Lock()
        self._logs: Dict[str, _SessionLog] = {}
        self._stopped = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "WireSessionServer":
        if self._loop is not None:
            return self
        self._loop = asyncio.new_event_loop()
        self._loop_thread = threading.Thread(
            target=self._loop.run_forever, name="repro-wire-loop", daemon=True
        )
        self._loop_thread.start()
        self._submit_coro(self.server.start())
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-wire-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in list(self._conn_threads):
            thread.join(timeout=5.0)
        if self._loop is not None:
            self._submit_coro(self.server.aclose())
            self._loop.call_soon_threadsafe(self._loop.stop)
            if self._loop_thread is not None:
                self._loop_thread.join(timeout=5.0)
            self._loop.close()
            self._loop = None

    def __enter__(self) -> "WireSessionServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _submit_coro(self, coro: Any) -> Any:
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout=max(self.io_timeout, 60.0)
        )

    # -- the accept / connection loops ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopped:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: orderly shutdown
            conn.settimeout(self.io_timeout)
            with self._lock:
                self._conns.append(conn)
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-wire-conn",
                daemon=True,
            )
            self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        obs.counter("serving.wire.connections")
        try:
            self._dialogue(conn)
        except (WireError, ServingError) as exc:
            obs.counter("serving.wire.protocol_errors", error=type(exc).__name__)
            try:
                wire.write_frame(
                    conn,
                    WireFrame(
                        wire.KIND_ERROR,
                        {"error": type(exc).__name__, "detail": str(exc)},
                    ),
                )
            except OSError:
                pass
        except OSError:
            pass  # peer vanished; its session log survives for resume
        finally:
            try:
                conn.close()
            except OSError:
                pass
            with self._lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _dialogue(self, conn: socket.socket) -> None:
        hello = wire.read_frame(conn)
        if hello is None:
            return
        if hello.kind != wire.KIND_HELLO:
            raise WireError(f"expected hello, got {hello.kind!r}")
        wire.write_frame(
            conn,
            WireFrame(wire.KIND_WELCOME, {"wire_version": wire.WIRE_VERSION}),
        )
        session = ""
        tenant = "default"
        while True:
            frame = wire.read_frame(conn)
            if frame is None:
                return  # orderly EOF between frames
            if frame.kind == wire.KIND_OPEN:
                session = str(frame.meta.get("session", ""))
                tenant = str(frame.meta.get("tenant", "default"))
                if not session:
                    raise WireError("open frame carries no session id")
                resume_from = int(frame.meta.get("resume_from", 0))
                log = self._log_for(session)
                replay = log.since(resume_from)
                wire.write_frame(
                    conn,
                    WireFrame(
                        wire.KIND_OPENED,
                        {
                            "session": session,
                            "replay": len(replay),
                            "next_seq": log.next_seq,
                        },
                    ),
                )
                for _seq, meta, payload in replay:
                    wire.write_frame(
                        conn,
                        WireFrame(wire.KIND_FRAME, dict(meta, replayed=True), payload),
                    )
            elif frame.kind == wire.KIND_RENDER:
                if not session:
                    raise WireError("render before open")
                params = frame.meta.get("params", {})
                response = self._submit_coro(
                    self.server.submit(
                        Request(
                            kind=str(frame.meta.get("kind", "render")),
                            params=params,
                            tenant=tenant,
                            session=session,
                        )
                    )
                )
                payload = response.payload or b""
                meta = {
                    "status": response.status,
                    "source": response.source if response.completed else "",
                    "reason": response.reason,
                    "key": response.digest,
                    "digest": hashlib.sha256(payload).hexdigest(),
                }
                with self._lock:
                    seq = self._log_for(session).append(meta, payload)
                wire.write_frame(
                    conn, WireFrame(wire.KIND_FRAME, dict(meta, seq=seq), payload)
                )
            elif frame.kind == wire.KIND_CLOSE:
                wire.write_frame(conn, WireFrame(wire.KIND_BYE))
                return
            else:
                raise WireError(f"unexpected frame kind {frame.kind!r}")

    def _log_for(self, session: str) -> _SessionLog:
        log = self._logs.get(session)
        if log is None:
            log = self._logs[session] = _SessionLog(self.config.session_log_frames)
        return log


class WireSessionClient:
    """A blocking client of one :class:`WireSessionServer` session.

    Tracks the next sequence number it expects, so
    :meth:`reconnect` can resume exactly where the stream broke and
    receive every missed frame from the server's replay ring.
    """

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.session = ""
        self.tenant = "default"
        self.next_seq = 0
        self._sock: Optional[socket.socket] = None

    # -- connection ----------------------------------------------------------

    def connect(self) -> "WireSessionClient":
        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        self._sock = sock
        wire.write_frame(sock, WireFrame(wire.KIND_HELLO))
        welcome = self._expect(wire.KIND_WELCOME)
        version = int(welcome.meta.get("wire_version", -1))
        if version != wire.WIRE_VERSION:
            raise WireVersionError(
                f"server speaks wire version {version}, client {wire.WIRE_VERSION}"
            )
        return self

    def open(
        self, session: str, tenant: str = "default", resume_from: Optional[int] = None
    ) -> List[WireFrame]:
        """Open (or resume) *session*; returns the replayed frames."""
        self.session = session
        self.tenant = tenant
        resume = self.next_seq if resume_from is None else int(resume_from)
        wire.write_frame(
            self._require_sock(),
            WireFrame(
                wire.KIND_OPEN,
                {"session": session, "tenant": tenant, "resume_from": resume},
            ),
        )
        opened = self._expect(wire.KIND_OPENED)
        replayed = []
        for _ in range(int(opened.meta.get("replay", 0))):
            frame = self._expect(wire.KIND_FRAME)
            self._account(frame)
            replayed.append(frame)
        return replayed

    def reconnect(self) -> List[WireFrame]:
        """Dial a fresh connection and resume the session mid-stream."""
        self.close_socket()
        self.connect()
        return self.open(self.session, self.tenant, resume_from=self.next_seq)

    def close(self) -> None:
        sock = self._sock
        if sock is not None:
            try:
                wire.write_frame(sock, WireFrame(wire.KIND_CLOSE))
                self._expect(wire.KIND_BYE)
            except (OSError, WireError):
                pass
        self.close_socket()

    def close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "WireSessionClient":
        return self.connect()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- rendering -----------------------------------------------------------

    def render(self, params: Dict[str, Any], kind: str = "render") -> WireFrame:
        """Render one frame; raises a typed WireError on a broken stream."""
        wire.write_frame(
            self._require_sock(),
            WireFrame(wire.KIND_RENDER, {"params": params, "kind": kind}),
        )
        frame = self._expect(wire.KIND_FRAME)
        self._account(frame)
        return frame

    # -- internals -----------------------------------------------------------

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise ServingError("client is not connected")
        return self._sock

    def _expect(self, kind: str) -> WireFrame:
        try:
            frame = wire.read_frame(self._require_sock())
        except OSError as exc:
            raise WireTruncatedError(f"connection lost mid-stream: {exc}") from exc
        if frame is None:
            raise WireTruncatedError(
                f"connection closed while awaiting a {kind!r} frame"
            )
        if frame.kind == wire.KIND_ERROR:
            raise WireError(
                f"server error: {frame.meta.get('error')}: {frame.meta.get('detail')}"
            )
        if frame.kind != kind:
            raise WireError(f"expected {kind!r} frame, got {frame.kind!r}")
        if frame.kind == wire.KIND_FRAME:
            advertised = frame.meta.get("digest", "")
            if advertised and advertised != frame.payload_digest():
                raise WireCorruptionError(
                    "frame payload does not match its advertised digest"
                )
        return frame

    def _account(self, frame: WireFrame) -> None:
        seq = frame.meta.get("seq")
        if seq is not None:
            self.next_seq = max(self.next_seq, int(seq) + 1)
