"""The spreadsheet grid.

A :class:`Spreadsheet` is a rows × columns grid of optional
:class:`SheetCell` slots.  Each occupied slot binds a **workflow
version** (vistrail name + version + the sink DV3DCell module id) and,
after execution, holds the live :class:`~repro.dv3d.cell.DV3DCell`.
The binding — not the live object — is what persists; re-executing the
bound version regenerates the cell, which is exactly the provenance
promise ("visualizations ... fully customizable and reproducible").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.dv3d.cell import DV3DCell
from repro.util.errors import SpreadsheetError


@dataclass
class CellBinding:
    """What a spreadsheet slot points at: one workflow version's cell sink."""

    vistrail_name: str
    version: int
    sink_module_id: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vistrail_name": self.vistrail_name,
            "version": self.version,
            "sink_module_id": self.sink_module_id,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "CellBinding":
        return CellBinding(
            str(data["vistrail_name"]), int(data["version"]), int(data["sink_module_id"])
        )


@dataclass
class SheetCell:
    """One occupied grid slot."""

    binding: CellBinding
    cell: Optional[DV3DCell] = None  # populated by execution

    @property
    def active(self) -> bool:
        return self.cell is not None and self.cell.active

    def to_dict(self) -> Dict[str, Any]:
        return {"binding": self.binding.to_dict()}


class Spreadsheet:
    """A named grid of visualization cells."""

    def __init__(self, name: str = "sheet", rows: int = 2, columns: int = 2) -> None:
        if rows < 1 or columns < 1:
            raise SpreadsheetError(f"bad spreadsheet size {rows}x{columns}")
        self.name = name
        self.rows = int(rows)
        self.columns = int(columns)
        self._slots: Dict[Tuple[int, int], SheetCell] = {}

    def __repr__(self) -> str:
        return (
            f"Spreadsheet(name={self.name!r}, size={self.rows}x{self.columns}, "
            f"occupied={len(self._slots)})"
        )

    # -- geometry ----------------------------------------------------------

    def _check(self, row: int, column: int) -> Tuple[int, int]:
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise SpreadsheetError(
                f"({row}, {column}) outside {self.rows}x{self.columns} sheet"
            )
        return (row, column)

    def resize(self, rows: int, columns: int) -> None:
        """Grow/shrink the grid ("resizable grid"); occupied slots must fit."""
        for (r, c) in self._slots:
            if r >= rows or c >= columns:
                raise SpreadsheetError(
                    f"cannot shrink to {rows}x{columns}: slot ({r}, {c}) occupied"
                )
        self.rows, self.columns = int(rows), int(columns)

    # -- occupancy -----------------------------------------------------------

    def place(self, row: int, column: int, binding: CellBinding,
              cell: Optional[DV3DCell] = None) -> SheetCell:
        key = self._check(row, column)
        if key in self._slots:
            raise SpreadsheetError(f"slot {key} already occupied")
        slot = SheetCell(binding, cell)
        self._slots[key] = slot
        return slot

    def remove(self, row: int, column: int) -> SheetCell:
        key = self._check(row, column)
        try:
            return self._slots.pop(key)
        except KeyError:
            raise SpreadsheetError(f"slot {key} is empty") from None

    def get(self, row: int, column: int) -> Optional[SheetCell]:
        return self._slots.get(self._check(row, column))

    def move(self, src: Tuple[int, int], dst: Tuple[int, int]) -> None:
        """Rearrange: drag a cell to an empty slot."""
        self._check(*src)
        self._check(*dst)
        if src == dst:
            return
        if dst in self._slots:
            raise SpreadsheetError(f"destination {dst} occupied")
        if src not in self._slots:
            raise SpreadsheetError(f"source {src} empty")
        self._slots[dst] = self._slots.pop(src)

    def swap(self, a: Tuple[int, int], b: Tuple[int, int]) -> None:
        """Rearrange: exchange two slots (either may be empty)."""
        self._check(*a)
        self._check(*b)
        sa, sb = self._slots.pop(a, None), self._slots.pop(b, None)
        if sb is not None:
            self._slots[a] = sb
        if sa is not None:
            self._slots[b] = sa

    def copy_cell(self, src: Tuple[int, int], dst: Tuple[int, int]) -> SheetCell:
        """Drag-copy: duplicate a cell's *binding* into an empty slot.

        The copy shares the workflow version (it is the same
        visualization); executing the sheet regenerates both
        independently, after which they diverge via their own edits.
        """
        self._check(*src)
        if src not in self._slots:
            raise SpreadsheetError(f"source {src} empty")
        source = self._slots[src]
        return self.place(dst[0], dst[1],
                          CellBinding(**source.binding.to_dict()))

    # -- iteration / queries -----------------------------------------------------

    def occupied(self) -> List[Tuple[int, int]]:
        return sorted(self._slots)

    def cells(self) -> Iterator[Tuple[Tuple[int, int], SheetCell]]:
        for key in sorted(self._slots):
            yield key, self._slots[key]

    def live_cells(self) -> List[DV3DCell]:
        return [slot.cell for _, slot in self.cells() if slot.cell is not None]

    def active_cells(self) -> List[DV3DCell]:
        return [c for c in self.live_cells() if c.active]

    def set_active(self, row: int, column: int, active: bool) -> None:
        slot = self.get(row, column)
        if slot is None or slot.cell is None:
            raise SpreadsheetError(f"slot ({row}, {column}) has no live cell")
        if active:
            slot.cell.activate()
        else:
            slot.cell.deactivate()

    def compare(self, a: Tuple[int, int], b: Tuple[int, int]) -> Dict[str, Any]:
        """Compare two cells' configurations (the spreadsheet 'compare' op).

        Returns the keys whose values differ between the two cells'
        plot states, plus both bindings.
        """
        slot_a, slot_b = self.get(*a), self.get(*b)
        if slot_a is None or slot_b is None:
            raise SpreadsheetError("both slots must be occupied to compare")
        diff: Dict[str, Any] = {}
        if slot_a.cell is not None and slot_b.cell is not None:
            state_a = slot_a.cell.state()["plot"]
            state_b = slot_b.cell.state()["plot"]
            for key in sorted(set(state_a) | set(state_b)):
                if state_a.get(key) != state_b.get(key):
                    diff[key] = {"a": state_a.get(key), "b": state_b.get(key)}
        return {
            "binding_a": slot_a.binding.to_dict(),
            "binding_b": slot_b.binding.to_dict(),
            "state_differences": diff,
        }

    # -- persistence -------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "rows": self.rows,
            "columns": self.columns,
            "slots": [
                {"row": r, "column": c, **slot.to_dict()}
                for (r, c), slot in self.cells()
            ],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Spreadsheet":
        sheet = Spreadsheet(
            str(data.get("name", "sheet")), int(data["rows"]), int(data["columns"])
        )
        for raw in data.get("slots", []):
            sheet.place(
                int(raw["row"]), int(raw["column"]),
                CellBinding.from_dict(raw["binding"]),
            )
        return sheet
