"""Synchronized multi-cell interaction.

"Integration with the Vistrails spreadsheet provides multiple
synchronized plots for desktop or hyperwall ... Configuration and
navigation operations are propagated to all active cells."

A :class:`SyncGroup` watches a spreadsheet and fans interaction events
out to every *active* live cell.  Events are also published on an
:class:`~repro.util.events.EventBus` so external listeners — notably
the hyperwall server, which forwards them to client nodes — observe the
same stream.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.spreadsheet.sheet import Spreadsheet
from repro.util.errors import DV3DError
from repro.util.events import Event, EventBus


class SyncGroup:
    """Propagates interaction events to all active cells of a sheet."""

    def __init__(self, sheet: Spreadsheet, bus: Optional[EventBus] = None) -> None:
        self.sheet = sheet
        self.bus = bus or EventBus()
        self.history: List[Tuple[str, Dict[str, Any]]] = []

    def _fan_out(self, kind: str, payload: Dict[str, Any]) -> List[Dict[str, Any]]:
        deltas = []
        for cell in self.sheet.active_cells():
            try:
                deltas.append(cell.handle_event(kind, **payload))
            except DV3DError:
                # a plot-specific gesture (leveling, slice drag, plane
                # toggle) propagated to a plot type without that control:
                # the cell simply ignores it, as heterogeneous sheets must
                deltas.append({})
        self.history.append((kind, dict(payload)))
        self.bus.publish(Event.make(f"cell.{kind}", source=self.sheet.name, **payload))
        return deltas

    # -- the propagated operations -----------------------------------------

    def key(self, key: str) -> List[Dict[str, Any]]:
        """Propagate a key command (colormap cycling, animation step, ...)."""
        return self._fan_out("key", {"key": key})

    def drag(self, dx: float, dy: float, mode: str = "camera") -> List[Dict[str, Any]]:
        """Propagate a drag gesture (camera orbit, leveling, slicing, ...)."""
        return self._fan_out("drag", {"dx": dx, "dy": dy, "mode": mode})

    def configure(self, state: Dict[str, Any]) -> List[Dict[str, Any]]:
        """Propagate an explicit configuration state."""
        return self._fan_out("configure", {"state": state})

    def animate_step(self, delta: int = 1) -> List[Dict[str, Any]]:
        """Advance all active cells' animation dimension together."""
        return self.key("t" if delta >= 0 else "T")

    def synchronize_cameras(self, reference: Tuple[int, int]) -> int:
        """Copy one cell's camera to every other active cell.

        Returns the number of cells updated.  (The spreadsheet's
        coordinated-views behavior: compare variables from the same
        viewpoint.)
        """
        slot = self.sheet.get(*reference)
        if slot is None or slot.cell is None:
            return 0
        camera_state = slot.cell.plot.state().get("camera")
        if camera_state is None:
            camera = slot.cell.plot.default_camera()
            slot.cell.plot.camera = camera
            camera_state = camera.state()
        updated = 0
        for cell in self.sheet.active_cells():
            if cell is slot.cell:
                continue
            cell.apply_state({"plot": {"camera": camera_state}})
            updated += 1
        self.history.append(("sync_cameras", {"reference": list(reference)}))
        return updated
