"""Projects: the organizational unit of the UV-CDAT GUI.

"The project view (top left) facilitates the organization of
spreadsheets into projects."  A :class:`Project` owns spreadsheets,
the vistrails their cells bind to, and the execution log; it persists
as a directory of JSON files and can re-execute every bound cell after
reload ("spreadsheets maintain their provenance and can be saved and
reloaded").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.dv3d.cell import DV3DCell
from repro.provenance.log import ExecutionLog
from repro.provenance.vistrail import Vistrail
from repro.spreadsheet.sheet import Spreadsheet
from repro.util.errors import SpreadsheetError
from repro.workflow.executor import Executor
from repro.workflow.registry import ModuleRegistry

PathLike = Union[str, Path]


class Project:
    """Spreadsheets + vistrails + execution log, saved/loaded together."""

    def __init__(self, name: str = "project", registry: Optional[ModuleRegistry] = None) -> None:
        from repro.workflow.registry import global_registry

        self.name = name
        self.registry = registry or global_registry()
        self.sheets: Dict[str, Spreadsheet] = {}
        self.vistrails: Dict[str, Vistrail] = {}
        self.log = ExecutionLog()
        self.executor = Executor(caching=True)

    def __repr__(self) -> str:
        return (
            f"Project(name={self.name!r}, sheets={sorted(self.sheets)}, "
            f"vistrails={sorted(self.vistrails)})"
        )

    # -- content management --------------------------------------------------

    def new_sheet(self, name: str, rows: int = 2, columns: int = 2) -> Spreadsheet:
        if name in self.sheets:
            raise SpreadsheetError(f"sheet {name!r} already exists")
        sheet = Spreadsheet(name, rows, columns)
        self.sheets[name] = sheet
        return sheet

    def new_vistrail(self, name: str) -> Vistrail:
        if name in self.vistrails:
            raise SpreadsheetError(f"vistrail {name!r} already exists")
        vistrail = Vistrail(name, self.registry)
        self.vistrails[name] = vistrail
        return vistrail

    def get_vistrail(self, name: str) -> Vistrail:
        try:
            return self.vistrails[name]
        except KeyError:
            raise SpreadsheetError(
                f"no vistrail {name!r} (have {sorted(self.vistrails)})"
            ) from None

    # -- execution -----------------------------------------------------------------

    def execute_cell(self, sheet_name: str, row: int, column: int) -> DV3DCell:
        """(Re)execute the workflow version bound to one slot.

        Populates the slot's live cell and records the run in the
        execution log.
        """
        sheet = self.sheets[sheet_name]
        slot = sheet.get(row, column)
        if slot is None:
            raise SpreadsheetError(f"slot ({row}, {column}) of {sheet_name!r} is empty")
        binding = slot.binding
        vistrail = self.get_vistrail(binding.vistrail_name)
        pipeline = vistrail.tree.materialize(binding.version, self.registry)
        result = self.executor.execute(pipeline, targets=[binding.sink_module_id])
        cell = result.output(binding.sink_module_id, "cell")
        slot.cell = cell
        self.log.record(
            binding.vistrail_name, binding.version, result,
            sheet=sheet_name, slot=[row, column],
        )
        return cell

    def execute_sheet(self, sheet_name: str) -> List[DV3DCell]:
        """Execute every occupied slot of a sheet (in grid order)."""
        sheet = self.sheets[sheet_name]
        return [
            self.execute_cell(sheet_name, r, c) for (r, c) in sheet.occupied()
        ]

    # -- persistence ------------------------------------------------------------------

    def save(self, directory: PathLike) -> None:
        """Persist the project as a directory of JSON files."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "name": self.name,
            "sheets": sorted(self.sheets),
            "vistrails": sorted(self.vistrails),
        }
        (directory / "project.json").write_text(json.dumps(manifest, indent=1))
        for name, sheet in self.sheets.items():
            (directory / f"sheet_{name}.json").write_text(
                json.dumps(sheet.to_dict(), indent=1)
            )
        for name, vistrail in self.vistrails.items():
            vistrail.save(directory / f"vistrail_{name}.json")
        self.log.save(directory / "execution_log.json")

    @staticmethod
    def load(directory: PathLike, registry: Optional[ModuleRegistry] = None) -> "Project":
        directory = Path(directory)
        manifest_path = directory / "project.json"
        if not manifest_path.exists():
            raise SpreadsheetError(f"no project at {directory}")
        manifest = json.loads(manifest_path.read_text())
        project = Project(str(manifest["name"]), registry)
        for name in manifest.get("vistrails", []):
            project.vistrails[name] = Vistrail.load(
                directory / f"vistrail_{name}.json", project.registry
            )
        for name in manifest.get("sheets", []):
            project.sheets[name] = Spreadsheet.from_dict(
                json.loads((directory / f"sheet_{name}.json").read_text())
            )
        log_path = directory / "execution_log.json"
        if log_path.exists():
            project.log = ExecutionLog.load(log_path)
        return project
