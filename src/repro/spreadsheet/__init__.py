"""The visualization spreadsheet (the VisTrails spreadsheet analog).

§III.E: "the UV-CDAT GUI ... extends the Vistrails spreadsheet, a
resizable grid of visualization cells.  Visualizations can be created,
modified, copied, rearranged, and compared using drag-and-drop
operations.  Spreadsheets maintain their provenance and can be saved
and reloaded."

* :mod:`repro.spreadsheet.sheet` — the cell grid with place / move /
  copy / compare operations and activation state;
* :mod:`repro.spreadsheet.sync` — propagation of configuration and
  navigation operations to all active cells;
* :mod:`repro.spreadsheet.project` — projects organizing spreadsheets,
  vistrails and the execution log, with save/reload.
"""

from repro.spreadsheet.sheet import CellBinding, SheetCell, Spreadsheet
from repro.spreadsheet.sync import SyncGroup
from repro.spreadsheet.project import Project

__all__ = ["CellBinding", "SheetCell", "Spreadsheet", "SyncGroup", "Project"]
