"""Physically-structured synthetic field generators.

Every generator returns a :class:`~repro.cdms.variable.Variable` on
CF-style axes in canonical ``tzyx`` (or a subset) order.  Fields are
smooth (band-limited random Fourier modes plus analytic structure) so
isosurfaces, slices and volume renders of them look like climate data
rather than white noise.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cdms.axis import Axis, level_axis, time_axis, uniform_latitude, uniform_longitude
from repro.cdms.variable import Variable
from repro.util.rng import deterministic_rng

DEFAULT_LEVELS = (1000.0, 925.0, 850.0, 700.0, 500.0, 400.0, 300.0, 250.0,
                  200.0, 150.0, 100.0, 70.0, 50.0, 30.0, 20.0, 10.0)

_EARTH_OMEGA = 7.2921e-5  # rad/s
_EARTH_RADIUS = 6.371e6  # m


def standard_axes(
    nlat: int = 46,
    nlon: int = 72,
    nlev: int = 17,
    ntime: int = 12,
    time_step_days: float = 30.0,
) -> Tuple[Axis, Axis, Axis, Axis]:
    """``(time, level, latitude, longitude)`` axes of the requested sizes."""
    lat = uniform_latitude(nlat)
    lon = uniform_longitude(nlon)
    if nlev <= len(DEFAULT_LEVELS):
        levels = DEFAULT_LEVELS[:nlev]
    else:
        levels = tuple(np.geomspace(1000.0, 10.0, nlev))
    lev = level_axis(list(levels))
    t = time_axis(np.arange(ntime) * time_step_days)
    return t, lev, lat, lon


def _smooth_noise(
    rng: np.random.Generator,
    lat_rad: np.ndarray,
    lon_rad: np.ndarray,
    n_modes: int = 8,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Band-limited random field on the sphere surface, shape (nlat, nlon).

    A sum of low-wavenumber sinusoidal modes — cheap, smooth, periodic
    in longitude, and fully vectorized.
    """
    field = np.zeros((lat_rad.size, lon_rad.size))
    klon = rng.integers(1, 5, size=n_modes)
    klat = rng.integers(1, 4, size=n_modes)
    phase = rng.uniform(0, 2 * np.pi, size=(n_modes, 2))
    amp = rng.normal(0, 1, size=n_modes) / np.sqrt(n_modes)
    for m in range(n_modes):
        field += amp[m] * np.outer(
            np.cos(klat[m] * lat_rad + phase[m, 0]),
            np.cos(klon[m] * lon_rad + phase[m, 1]),
        )
    return amplitude * field


def global_temperature(
    nlat: int = 46,
    nlon: int = 72,
    nlev: int = 17,
    ntime: int = 12,
    seed: int | str = "temperature",
    with_mask: bool = False,
) -> Variable:
    """Air temperature (K) shaped (time, level, lat, lon).

    Structure: surface pole-to-equator gradient, a moist-adiabatic-ish
    decrease with pressure topped by a stratospheric inversion, a
    seasonal cycle anti-phased between hemispheres, and smooth synoptic
    noise.  With ``with_mask`` a polar cap of missing data is added to
    exercise masked-data code paths.
    """
    rng = deterministic_rng(seed)
    t, lev, lat, lon = standard_axes(nlat, nlon, nlev, ntime)
    lat_rad = np.radians(lat.values)
    lon_rad = np.radians(lon.values)
    p = lev.values  # hPa

    surface = 288.0 - 45.0 * np.sin(lat_rad) ** 2  # (nlat,)
    # vertical: linear cooling to the tropopause (~200 hPa), warming above
    lapse = np.where(p >= 200.0, (1000.0 - p) * 0.065, (1000.0 - 200.0) * 0.065 - (200.0 - p) * 0.02)
    seasonal_phase = 2 * np.pi * np.arange(ntime) / max(ntime, 1)
    seasonal = 12.0 * np.sin(lat_rad)[None, :] * np.cos(seasonal_phase)[:, None]  # (ntime, nlat)

    data = (
        surface[None, None, :, None]
        - lapse[None, :, None, None]
        + seasonal[:, None, :, None]
    )
    noise = np.stack(
        [_smooth_noise(rng, lat_rad, lon_rad, amplitude=3.0) for _ in range(ntime)]
    )  # (ntime, nlat, nlon)
    decay = np.exp(-(1000.0 - p) / 600.0)  # noise strongest near the surface
    data = data + noise[:, None, :, :] * decay[None, :, None, None]

    arr: np.ndarray | np.ma.MaskedArray = data
    if with_mask:
        mask = np.zeros(data.shape, dtype=bool)
        mask[..., np.abs(lat.values) > 85.0, :] = True
        arr = np.ma.MaskedArray(data, mask=mask)
    return Variable(
        arr, (t, lev, lat, lon), id="ta", units="K",
        long_name="air temperature",
    )


def geopotential_height(
    nlat: int = 46,
    nlon: int = 72,
    nlev: int = 17,
    ntime: int = 12,
    seed: int | str = "geopotential",
) -> Variable:
    """Geopotential height (m) with a wavy mid-latitude jet structure."""
    rng = deterministic_rng(seed)
    t, lev, lat, lon = standard_axes(nlat, nlon, nlev, ntime)
    lat_rad = np.radians(lat.values)
    lon_rad = np.radians(lon.values)
    p = lev.values

    # hypsometric-ish base height per level, plus meridional slope
    base = 8000.0 * np.log(1000.0 / np.maximum(p, 1.0))  # (nlev,)
    slope = -400.0 * np.sin(lat_rad) ** 2  # lower heights toward poles
    data = base[None, :, None, None] + slope[None, None, :, None] * (base[None, :, None, None] / 5000.0 + 0.3)

    # planetary waves drifting eastward with time
    for wavenumber, amp, speed in ((3, 120.0, 0.15), (5, 60.0, 0.35)):
        phase = speed * np.arange(ntime)
        wave = amp * np.cos(
            wavenumber * lon_rad[None, None, :] - phase[:, None, None]
        ) * np.cos(lat_rad)[None, :, None] ** 2
        data = data + wave[:, None, :, :] * (base[None, :, None, None] / 8000.0 + 0.2)
    data += np.stack(
        [_smooth_noise(rng, lat_rad, lon_rad, amplitude=25.0) for _ in range(ntime)]
    )[:, None, :, :]
    return Variable(
        data, (t, lev, lat, lon), id="zg", units="m",
        long_name="geopotential height",
    )


def geostrophic_wind(
    height: Optional[Variable] = None,
    seed: int | str = "wind",
    f_floor: float = 2.0e-5,
) -> Tuple[Variable, Variable]:
    """(u, v) geostrophic wind (m/s) derived from a geopotential field.

    ``u = -(g/f) ∂Z/∂y``, ``v = (g/f) ∂Z/∂x`` with the Coriolis
    parameter clamped away from zero near the equator.  Gradients use
    centred differences, periodic in longitude.
    """
    if height is None:
        height = geopotential_height(seed=seed)
    g = 9.81
    lat = height.get_latitude()
    lon = height.get_longitude()
    if lat is None or lon is None:
        raise ValueError("geostrophic_wind requires a gridded height field")
    zg = height.filled(np.nan)
    lat_dim = height.axis_index("latitude")
    lon_dim = height.axis_index("longitude")
    lat_rad = np.radians(lat.values)
    lon_rad = np.radians(lon.values)

    f = 2 * _EARTH_OMEGA * np.sin(lat_rad)
    f = np.where(np.abs(f) < f_floor, np.sign(f + 1e-30) * f_floor, f)

    dy = np.gradient(zg, lat_rad * _EARTH_RADIUS, axis=lat_dim)
    # periodic longitude: pad one column each side before differencing
    padded = np.concatenate(
        [zg.take([-1], axis=lon_dim), zg, zg.take([0], axis=lon_dim)], axis=lon_dim
    )
    dlon = float(lon_rad[1] - lon_rad[0]) if lon_rad.size > 1 else 1.0
    dx_raw = np.gradient(padded, axis=lon_dim) / dlon
    slicer = [slice(None)] * zg.ndim
    slicer[lon_dim] = slice(1, -1)
    coslat = np.cos(lat_rad)
    shape = [1] * zg.ndim
    shape[lat_dim] = lat_rad.size
    dx = dx_raw[tuple(slicer)] / (_EARTH_RADIUS * np.maximum(coslat, 0.05).reshape(shape))

    fshape = np.reshape(f, shape)
    u = -g / fshape * dy
    v = g / fshape * dx
    mk = lambda arr, vid, name: Variable(  # noqa: E731
        np.ma.masked_invalid(arr), height.axes, id=vid, units="m s-1", long_name=name,
    )
    return mk(u, "ua", "eastward wind"), mk(v, "va", "northward wind")


def equatorial_wave(
    nlon: int = 144,
    nlat: int = 32,
    ntime: int = 120,
    wavenumber: int = 4,
    period_steps: float = 30.0,
    eastward: bool = True,
    amplitude: float = 2.0,
    seed: int | str = "wave",
    time_step_days: float = 0.25,
) -> Variable:
    """An equatorially-trapped propagating wave, shaped (time, lat, lon).

    The canonical Hovmöller test signal: amplitude peaks at the equator
    (Gaussian in latitude), propagates east (or west) with integer
    zonal *wavenumber* and the given *period* in time steps.  Phase
    speed is ``360 * wavenumber⁻¹ / period`` degrees per step.
    """
    rng = deterministic_rng(seed)
    lat = uniform_latitude(nlat)
    lon = uniform_longitude(nlon)
    t = time_axis(np.arange(ntime) * time_step_days)
    lat_rad = np.radians(lat.values)
    lon_rad = np.radians(lon.values)
    omega = 2 * np.pi / period_steps
    sign = -1.0 if eastward else 1.0
    steps = np.arange(ntime)
    phase = wavenumber * lon_rad[None, None, :] + sign * omega * steps[:, None, None]
    envelope = np.exp(-((lat_rad / np.radians(15.0)) ** 2))[None, :, None]
    data = amplitude * envelope * np.cos(phase)
    data += 0.1 * amplitude * rng.standard_normal(data.shape)
    return Variable(
        data, (t, lat, lon), id="olr_anom", units="W m-2",
        long_name="synthetic equatorial wave anomaly",
        attributes={"wavenumber": wavenumber, "period_steps": period_steps,
                    "eastward": bool(eastward)},
    )


def storm_vortex(
    nlat: int = 64,
    nlon: int = 64,
    nlev: int = 20,
    ntime: int = 16,
    seed: int | str = "storm",
) -> Variable:
    """Wind-speed magnitude (m/s) of a translating, tilted 3-D vortex.

    A compact object with genuinely 3-D structure (eyewall maximum that
    weakens and widens with height, westward-then-poleward track) — the
    workload for isosurface and volume-render demonstrations (Fig. 3).
    Shaped (time, level, lat, lon) over a regional domain.
    """
    rng = deterministic_rng(seed)
    lat = Axis("latitude", np.linspace(5.0, 45.0, nlat), units="degrees_north")
    lon = Axis("longitude", np.linspace(120.0, 180.0, nlon), units="degrees_east")
    lev = level_axis(list(np.linspace(1000.0, 100.0, nlev)))
    t = time_axis(np.arange(ntime) * 0.25)  # 6-hourly

    # storm track: westward drift then recurvature poleward
    frac = np.linspace(0.0, 1.0, ntime)
    track_lon = 165.0 - 25.0 * frac
    track_lat = 12.0 + 22.0 * frac**1.7

    lat_v = lat.values[None, None, :, None]
    lon_v = lon.values[None, None, None, :]
    p = lev.values[None, :, None, None]
    # vertical tilt: center shifts slightly west with height
    tilt = (1000.0 - p) / 900.0 * 1.5
    cy = track_lat[:, None, None, None]
    cx = track_lon[:, None, None, None] - tilt
    r = np.sqrt((lat_v - cy) ** 2 + ((lon_v - cx) * np.cos(np.radians(lat_v))) ** 2)

    # Rankine-like eyewall: maximum at r = rmax, calm eye, decay outside;
    # intensity peaks mid-track, core weakens with height
    rmax = 1.2 + (1000.0 - p) / 900.0 * 1.0
    intensity = 25.0 + 30.0 * np.sin(np.pi * frac)[:, None, None, None]
    strength_z = np.exp(-((1000.0 - p) / 650.0) ** 2)
    with np.errstate(divide="ignore", invalid="ignore"):
        profile = np.where(r <= rmax, r / rmax, (rmax / np.maximum(r, 1e-9)) ** 0.7)
    speed = intensity * strength_z * profile
    background = 4.0 + 2.0 * rng.standard_normal((ntime, 1, nlat, nlon)) * 0.5
    data = np.maximum(speed + background, 0.0)
    return Variable(
        data, (t, lev, lat, lon), id="wspd", units="m s-1",
        long_name="wind speed", attributes={"track_lat": list(track_lat), "track_lon": list(track_lon)},
    )


def specific_humidity(
    nlat: int = 46,
    nlon: int = 72,
    nlev: int = 17,
    ntime: int = 12,
    seed: int | str = "humidity",
) -> Variable:
    """Specific humidity (kg/kg): moist tropics, exponential decay aloft."""
    rng = deterministic_rng(seed)
    t, lev, lat, lon = standard_axes(nlat, nlon, nlev, ntime)
    lat_rad = np.radians(lat.values)
    lon_rad = np.radians(lon.values)
    p = lev.values
    surface_q = 0.016 * np.exp(-((lat_rad / np.radians(35.0)) ** 2))  # (nlat,)
    vertical = np.exp(-(1000.0 - p) / 250.0)  # (nlev,)
    data = surface_q[None, None, :, None] * vertical[None, :, None, None]
    data = data * (
        1.0
        + 0.25
        * np.stack([_smooth_noise(rng, lat_rad, lon_rad) for _ in range(ntime)])[:, None, :, :]
    )
    return Variable(
        np.clip(data, 0.0, None), (t, lev, lat, lon), id="hus", units="kg kg-1",
        long_name="specific humidity",
    )
