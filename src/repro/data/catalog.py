"""Pre-assembled synthetic datasets.

These are the "case studies" the examples and benchmarks open: a
multi-variable global reanalysis-like dataset, a regional storm case
(the Fig. 3 isosurface/volume workload) and an equatorial wave case
(the Fig. 4 Hovmöller workload).  Each returns a
:class:`~repro.cdms.dataset.Dataset` and can be persisted with
``dataset.save(path)`` for the file-access code path.
"""

from __future__ import annotations

from repro.cdms.dataset import Dataset
from repro.data import fields


def synthetic_reanalysis(
    nlat: int = 46,
    nlon: int = 72,
    nlev: int = 17,
    ntime: int = 12,
    seed: int | str = "reanalysis",
) -> Dataset:
    """A global multi-variable dataset: ta, zg, ua, va, hus.

    The shape mirrors a coarse monthly reanalysis (the scale of data the
    UV-CDAT GUI's variable view lists in Fig. 2).
    """
    ta = fields.global_temperature(nlat, nlon, nlev, ntime, seed=f"{seed}/ta")
    zg = fields.geopotential_height(nlat, nlon, nlev, ntime, seed=f"{seed}/zg")
    ua, va = fields.geostrophic_wind(zg)
    hus = fields.specific_humidity(nlat, nlon, nlev, ntime, seed=f"{seed}/hus")
    return Dataset(
        id="nccs_synthetic_reanalysis",
        variables=[ta, zg, ua, va, hus],
        attributes={
            "title": "Synthetic reanalysis (repro substitute for NASA model output)",
            "institution": "repro.data",
            "source": "analytic structure + band-limited noise",
            "seed": str(seed),
        },
    )


def storm_case_study(
    nlat: int = 64,
    nlon: int = 64,
    nlev: int = 20,
    ntime: int = 16,
    seed: int | str = "storm-case",
) -> Dataset:
    """Regional storm dataset: wind speed plus temperature on the same grid."""
    wspd = fields.storm_vortex(nlat, nlon, nlev, ntime, seed=f"{seed}/wspd")
    # a co-located temperature-like field (warm core) for two-variable plots
    warm_core = wspd * 0.35 + 250.0
    warm_core.id = "tcore"
    warm_core.attributes["units"] = "K"
    warm_core.attributes["long_name"] = "core temperature proxy"
    return Dataset(
        id="storm_case_study",
        variables=[wspd, warm_core],
        attributes={"title": "Translating vortex case study (Fig. 3 workload)"},
    )


def wave_case_study(
    nlon: int = 144,
    nlat: int = 32,
    ntime: int = 120,
    seed: int | str = "wave-case",
) -> Dataset:
    """Equatorial wave dataset: one eastward and one westward mode."""
    east = fields.equatorial_wave(nlon, nlat, ntime, wavenumber=4, period_steps=30.0,
                                  eastward=True, seed=f"{seed}/east")
    west = fields.equatorial_wave(nlon, nlat, ntime, wavenumber=6, period_steps=20.0,
                                  eastward=False, seed=f"{seed}/west")
    west.id = "olr_west"
    return Dataset(
        id="wave_case_study",
        variables=[east, west],
        attributes={"title": "Propagating equatorial waves (Fig. 4 workload)"},
    )
