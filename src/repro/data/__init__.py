"""Synthetic climate datasets.

The paper's demonstrations run on NASA model output and reanalyses that
are not redistributable (and not fetchable offline).  This package
generates physically-structured substitutes — zonally banded
temperature with lapse rate and seasonal cycle, geostrophically
balanced winds, propagating equatorial waves, translating storm
vortices and moisture fields — shaped exactly like model output
(CF axes, units, masks), so every DV3D pipeline stage sees realistic
structure.  All generators take explicit seeds and are deterministic.
"""

from repro.data.fields import (
    global_temperature,
    geopotential_height,
    geostrophic_wind,
    equatorial_wave,
    storm_vortex,
    specific_humidity,
)
from repro.data.catalog import synthetic_reanalysis, storm_case_study, wave_case_study

__all__ = [
    "global_temperature",
    "geopotential_height",
    "geostrophic_wind",
    "equatorial_wave",
    "storm_vortex",
    "specific_humidity",
    "synthetic_reanalysis",
    "storm_case_study",
    "wave_case_study",
]
