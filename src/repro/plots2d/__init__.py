"""The traditional 2-D plotting toolkit (the paper's baseline).

§II.A: "Exploratory climate data analysis relies heavily on such
mapping techniques but has traditionally been confined to two dimension
views such as contour plots, line and scatter graphs, and histograms."
DV3D's pitch is measured against that baseline, so the baseline is
implemented here: a small headless charting library rendering into the
same :class:`~repro.rendering.framebuffer.Framebuffer` the 3-D plots
use.

* :mod:`repro.plots2d.chart` — the chart canvas: margins, data→pixel
  transforms, ticked and labeled axes;
* :mod:`repro.plots2d.plots` — line graphs, scatter plots, histograms,
  contour plots and pseudocolor maps over CDMS variables.
"""

from repro.plots2d.chart import Chart2D
from repro.plots2d.plots import (
    contour_plot,
    histogram_plot,
    line_plot,
    pseudocolor_plot,
    scatter_plot,
)

__all__ = [
    "Chart2D",
    "line_plot",
    "scatter_plot",
    "histogram_plot",
    "contour_plot",
    "pseudocolor_plot",
]
