"""The baseline plot functions over CDMS variables.

Each function accepts :class:`~repro.cdms.variable.Variable` inputs (or
plain arrays where noted), builds a :class:`~repro.plots2d.chart.Chart2D`,
draws, decorates, and returns the chart — caller renders with
``chart.to_uint8()`` or ``chart.save(path)``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.cdms.variable import Variable
from repro.plots2d.chart import Chart2D
from repro.rendering.colormap import Colormap
from repro.rendering.contour2d import contour_levels, marching_squares
from repro.util.errors import RenderingError

_SERIES_COLORS = [
    (1.0, 0.75, 0.2),
    (0.4, 0.8, 1.0),
    (0.95, 0.45, 0.5),
    (0.55, 0.9, 0.55),
    (0.8, 0.6, 1.0),
]


def _pad_range(lo: float, hi: float) -> Tuple[float, float]:
    if hi <= lo:
        hi = lo + max(abs(lo) * 1e-6, 1e-6)
    pad = 0.05 * (hi - lo)
    return lo - pad, hi + pad


def _series_1d(variable: Union[Variable, np.ndarray]) -> Tuple[np.ndarray, np.ndarray, str]:
    """(x, y, x_label) for a 1-D variable (x = its axis coordinates)."""
    if isinstance(variable, Variable):
        squeezed = variable.squeeze()
        if squeezed.ndim != 1:
            raise RenderingError(
                f"need a 1-D series, got shape {variable.shape}"
            )
        return (
            squeezed.axes[0].values,
            np.asarray(squeezed.data.filled(np.nan)),
            squeezed.axes[0].id,
        )
    arr = np.asarray(variable, dtype=np.float64).reshape(-1)
    return np.arange(arr.size, dtype=np.float64), arr, "index"


def line_plot(
    *series: Union[Variable, np.ndarray],
    width: int = 400,
    height: int = 300,
    title: str = "",
) -> Chart2D:
    """Overlaid line graphs of 1-D series (the classic time-series view)."""
    if not series:
        raise RenderingError("line_plot: no series")
    parsed = [_series_1d(s) for s in series]
    all_x = np.concatenate([p[0] for p in parsed])
    all_y = np.concatenate([p[1] for p in parsed])
    finite = np.isfinite(all_y)
    if not finite.any():
        raise RenderingError("line_plot: no finite data")
    chart = Chart2D(
        width, height,
        x_range=_pad_range(float(all_x.min()), float(all_x.max())),
        y_range=_pad_range(float(all_y[finite].min()), float(all_y[finite].max())),
        title=title, x_label=parsed[0][2],
    )
    chart.draw_axes()
    for i, (x, y, _) in enumerate(parsed):
        chart.polyline(x, y, color=_SERIES_COLORS[i % len(_SERIES_COLORS)])
    return chart


def scatter_plot(
    a: Variable,
    b: Variable,
    width: int = 400,
    height: int = 300,
    title: str = "",
    max_points: int = 5000,
) -> Chart2D:
    """Scatter of two same-shape variables (joint-distribution view)."""
    if a.shape != b.shape:
        raise RenderingError(f"scatter_plot: shape mismatch {a.shape} vs {b.shape}")
    xs = np.asarray(a.data.filled(np.nan)).reshape(-1)
    ys = np.asarray(b.data.filled(np.nan)).reshape(-1)
    finite = np.isfinite(xs) & np.isfinite(ys)
    xs, ys = xs[finite], ys[finite]
    if xs.size == 0:
        raise RenderingError("scatter_plot: no jointly finite data")
    if xs.size > max_points:  # deterministic thinning
        stride = xs.size // max_points + 1
        xs, ys = xs[::stride], ys[::stride]
    chart = Chart2D(
        width, height,
        x_range=_pad_range(float(xs.min()), float(xs.max())),
        y_range=_pad_range(float(ys.min()), float(ys.max())),
        title=title or f"{b.id} vs {a.id}", x_label=a.id, y_label=b.id,
    )
    chart.draw_axes()
    chart.markers(xs, ys)
    return chart


def histogram_plot(
    variable: Variable,
    bins: int = 20,
    width: int = 400,
    height: int = 300,
    title: str = "",
) -> Chart2D:
    """Histogram of a variable's valid values."""
    values = variable.compressed()
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise RenderingError("histogram_plot: no valid data")
    if bins < 1:
        raise RenderingError("histogram_plot: bins must be >= 1")
    counts, edges = np.histogram(values, bins=bins)
    chart = Chart2D(
        width, height,
        x_range=_pad_range(float(edges[0]), float(edges[-1])),
        y_range=(0.0, float(counts.max()) * 1.08),
        title=title or f"histogram of {variable.id}", x_label=variable.units or variable.id,
    )
    chart.draw_axes()
    chart.filled_columns(edges, counts)
    return chart


def _lat_lon_field(variable: Variable) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(field[lat, lon], lats, lons) from a gridded variable (squeezed)."""
    squeezed = variable.squeeze()
    lat = squeezed.get_latitude()
    lon = squeezed.get_longitude()
    if lat is None or lon is None or squeezed.ndim != 2:
        raise RenderingError(
            f"need a 2-D lat/lon field, got {variable.shape} "
            "(select one time/level first)"
        )
    ordered = squeezed.reorder(["latitude", "longitude"])
    return ordered.filled(np.nan), lat.values, lon.values


def contour_plot(
    variable: Variable,
    n_levels: int = 8,
    width: int = 400,
    height: int = 300,
    title: str = "",
) -> Chart2D:
    """Contour lines of a 2-D lat/lon field — *the* traditional view."""
    field, lats, lons = _lat_lon_field(variable)
    chart = Chart2D(
        width, height,
        x_range=_pad_range(float(lons.min()), float(lons.max())),
        y_range=_pad_range(float(lats.min()), float(lats.max())),
        title=title or f"{variable.id} contours",
        x_label="longitude", y_label="latitude",
    )
    chart.draw_axes()
    # marching_squares wants [i, j] with i along x: transpose to (lon, lat)
    levels = contour_levels(field, n_levels)
    for k, level in enumerate(levels):
        segments = marching_squares(field.T, float(level), lons, lats)
        color = _SERIES_COLORS[k % len(_SERIES_COLORS)]
        for seg in segments:
            chart.polyline(seg[:, 0], seg[:, 1], color=color)
    return chart


def pseudocolor_plot(
    variable: Variable,
    colormap: str = "default",
    width: int = 400,
    height: int = 300,
    title: str = "",
    value_range: Optional[Tuple[float, float]] = None,
) -> Chart2D:
    """Filled (imshow-style) map of a 2-D lat/lon field."""
    field, lats, lons = _lat_lon_field(variable)
    cmap = Colormap(colormap)
    finite = field[np.isfinite(field)]
    if finite.size == 0:
        raise RenderingError("pseudocolor_plot: no finite data")
    vmin, vmax = value_range or (float(finite.min()), float(finite.max()))
    rgb = cmap.map_scalars(field, vmin, vmax)
    if lats[0] < lats[-1]:  # image rows go top→down = high→low latitude
        rgb = rgb[::-1]
    chart = Chart2D(
        width, height,
        x_range=(float(lons.min()), float(lons.max())),
        y_range=(float(lats.min()), float(lats.max())),
        title=title or f"{variable.id}", x_label="longitude", y_label="latitude",
    )
    chart.image(rgb)
    chart.draw_axes(grid=False)
    return chart
