"""The 2-D chart canvas.

A :class:`Chart2D` owns a framebuffer with margins, maps data
coordinates to pixels, and draws the axes frame with nice ticks and
bitmap-font labels.  The plot functions in :mod:`repro.plots2d.plots`
draw their marks through its primitive operations (polyline, markers,
filled columns, image patch).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.rendering.annotation import nice_ticks
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.text import render_text
from repro.util.errors import RenderingError

RGB = Tuple[float, float, float]

_AXIS_COLOR = (0.75, 0.75, 0.78)
_GRID_COLOR = (0.22, 0.22, 0.28)


class Chart2D:
    """A framed, ticked 2-D plotting surface."""

    def __init__(
        self,
        width: int = 400,
        height: int = 300,
        x_range: Tuple[float, float] = (0.0, 1.0),
        y_range: Tuple[float, float] = (0.0, 1.0),
        title: str = "",
        x_label: str = "",
        y_label: str = "",
        background: RGB = (0.08, 0.08, 0.12),
        margin: Tuple[int, int, int, int] = (22, 10, 28, 46),  # top right bottom left
    ) -> None:
        if x_range[1] <= x_range[0] or y_range[1] <= y_range[0]:
            raise RenderingError(
                f"degenerate chart ranges x={x_range!r} y={y_range!r}"
            )
        self.fb = Framebuffer(width, height, background=background)
        self.x_range = (float(x_range[0]), float(x_range[1]))
        self.y_range = (float(y_range[0]), float(y_range[1]))
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.margin = margin
        top, right, bottom, left = margin
        self._plot_box = (left, top, width - right, height - bottom)  # x0 y0 x1 y1
        if self._plot_box[2] - self._plot_box[0] < 10 or self._plot_box[3] - self._plot_box[1] < 10:
            raise RenderingError("chart too small for its margins")

    # -- transforms --------------------------------------------------------

    @property
    def plot_box(self) -> Tuple[int, int, int, int]:
        return self._plot_box

    def to_pixel(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Data coordinates → (col, row) pixel coordinates (float)."""
        x0, y0, x1, y1 = self._plot_box
        fx = (np.asarray(x, dtype=np.float64) - self.x_range[0]) / (
            self.x_range[1] - self.x_range[0]
        )
        fy = (np.asarray(y, dtype=np.float64) - self.y_range[0]) / (
            self.y_range[1] - self.y_range[0]
        )
        return x0 + fx * (x1 - x0), y1 - fy * (y1 - y0)

    # -- primitives -----------------------------------------------------------

    def _put_pixels(self, cols: np.ndarray, rows: np.ndarray, color: RGB) -> None:
        x0, y0, x1, y1 = self._plot_box
        cols = np.round(cols).astype(np.intp)
        rows = np.round(rows).astype(np.intp)
        inside = (cols >= x0) & (cols <= x1) & (rows >= y0) & (rows <= y1)
        self.fb.color[rows[inside], cols[inside]] = np.asarray(color, dtype=np.float32)

    def polyline(self, x: Sequence[float], y: Sequence[float], color: RGB = (1.0, 0.8, 0.2)) -> None:
        """A data-space polyline; NaNs break the line into segments."""
        px, py = self.to_pixel(np.asarray(x), np.asarray(y))
        for i in range(len(px) - 1):
            if not (np.isfinite(px[i]) and np.isfinite(px[i + 1])
                    and np.isfinite(py[i]) and np.isfinite(py[i + 1])):
                continue
            n = int(max(abs(px[i + 1] - px[i]), abs(py[i + 1] - py[i]))) + 2
            t = np.linspace(0.0, 1.0, n)
            self._put_pixels(px[i] + (px[i + 1] - px[i]) * t,
                             py[i] + (py[i + 1] - py[i]) * t, color)

    def markers(self, x: Sequence[float], y: Sequence[float],
                color: RGB = (0.4, 0.8, 1.0), size: int = 2) -> None:
        """Square markers at data points."""
        px, py = self.to_pixel(np.asarray(x), np.asarray(y))
        finite = np.isfinite(px) & np.isfinite(py)
        px, py = px[finite], py[finite]
        offsets = np.arange(size) - size // 2
        ox, oy = np.meshgrid(offsets, offsets)
        cols = (px[:, None] + ox.reshape(1, -1)).reshape(-1)
        rows = (py[:, None] + oy.reshape(1, -1)).reshape(-1)
        self._put_pixels(cols, rows, color)

    def filled_columns(self, edges: Sequence[float], heights: Sequence[float],
                       color: RGB = (0.35, 0.65, 0.95)) -> None:
        """Histogram bars: ``edges`` has len(heights)+1 entries."""
        edges = np.asarray(edges, dtype=np.float64)
        heights = np.asarray(heights, dtype=np.float64)
        if edges.size != heights.size + 1:
            raise RenderingError("filled_columns: need len(edges) == len(heights) + 1")
        baseline = max(self.y_range[0], 0.0)
        for i, h in enumerate(heights):
            lx, _ = self.to_pixel(np.array([edges[i]]), np.array([baseline]))
            rx, _ = self.to_pixel(np.array([edges[i + 1]]), np.array([baseline]))
            _, top = self.to_pixel(np.array([edges[i]]), np.array([h]))
            _, bottom = self.to_pixel(np.array([edges[i]]), np.array([baseline]))
            c0, c1 = int(np.ceil(min(lx[0], rx[0]))), int(np.floor(max(lx[0], rx[0]) - 1))
            r0, r1 = int(np.round(min(top[0], bottom[0]))), int(np.round(max(top[0], bottom[0])))
            if c1 < c0:
                continue
            gx, gy = np.meshgrid(np.arange(c0, c1 + 1), np.arange(r0, r1 + 1))
            self._put_pixels(gx.reshape(-1), gy.reshape(-1), color)

    def image(self, rgb: np.ndarray) -> None:
        """Stretch an ``(ny, nx, 3)`` float image over the plot box
        (nearest-neighbor), rows mapping top→high y."""
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise RenderingError("image: need (ny, nx, 3)")
        x0, y0, x1, y1 = self._plot_box
        w, h = x1 - x0 + 1, y1 - y0 + 1
        src_rows = np.clip(
            (np.arange(h) / max(h - 1, 1) * (rgb.shape[0] - 1)).astype(np.intp),
            0, rgb.shape[0] - 1,
        )
        src_cols = np.clip(
            (np.arange(w) / max(w - 1, 1) * (rgb.shape[1] - 1)).astype(np.intp),
            0, rgb.shape[1] - 1,
        )
        self.fb.color[y0 : y1 + 1, x0 : x1 + 1] = rgb[np.ix_(src_rows, src_cols)].astype(
            np.float32
        )

    # -- decoration --------------------------------------------------------------

    def draw_axes(self, n_ticks: int = 5, grid: bool = True) -> None:
        """Frame, ticks, tick labels, axis labels and title."""
        x0, y0, x1, y1 = self._plot_box
        frame_color = np.asarray(_AXIS_COLOR, dtype=np.float32)
        self.fb.color[y0, x0:x1 + 1] = frame_color
        self.fb.color[y1, x0:x1 + 1] = frame_color
        self.fb.color[y0:y1 + 1, x0] = frame_color
        self.fb.color[y0:y1 + 1, x1] = frame_color

        for tick in nice_ticks(*self.x_range, n_ticks):
            px, _ = self.to_pixel(np.array([tick]), np.array([self.y_range[0]]))
            col = int(round(px[0]))
            if not x0 <= col <= x1:
                continue
            if grid:
                self.fb.color[y0 + 1 : y1, col] = np.asarray(_GRID_COLOR, np.float32)
            self.fb.color[y1 : min(y1 + 3, self.fb.height), col] = frame_color
            label = render_text(f"{tick:g}")
            self.fb.blend_patch(y1 + 5, col - label.shape[1] // 2, label)
        for tick in nice_ticks(*self.y_range, n_ticks):
            _, py = self.to_pixel(np.array([self.x_range[0]]), np.array([tick]))
            row = int(round(py[0]))
            if not y0 <= row <= y1:
                continue
            if grid:
                self.fb.color[row, x0 + 1 : x1] = np.asarray(_GRID_COLOR, np.float32)
            self.fb.color[row, max(x0 - 3, 0) : x0] = frame_color
            label = render_text(f"{tick:g}")
            self.fb.blend_patch(row - 3, max(x0 - 5 - label.shape[1], 0), label)

        if self.title:
            patch = render_text(self.title, color=(1.0, 1.0, 1.0))
            self.fb.blend_patch(4, (self.fb.width - patch.shape[1]) // 2, patch)
        if self.x_label:
            patch = render_text(self.x_label, color=(0.85, 0.85, 0.85))
            self.fb.blend_patch(self.fb.height - patch.shape[0] - 1,
                                (self.fb.width - patch.shape[1]) // 2, patch)
        if self.y_label:
            patch = render_text(self.y_label, color=(0.85, 0.85, 0.85))
            self.fb.blend_patch(max(y0 - patch.shape[0] - 3, 0), 2, patch)

    # -- output ---------------------------------------------------------------------

    def to_uint8(self) -> np.ndarray:
        return self.fb.to_uint8()

    def save(self, path: str) -> None:
        self.fb.save(path)
