"""The ``.cdz`` self-contained dataset container.

The real CDMS reads NetCDF; with no NetCDF library available offline we
define an equivalent self-describing container: a ZIP archive holding

* ``manifest.json`` — dataset id, global attributes, axis and variable
  metadata (units, calendars, attributes, dimension lists);
* ``axes/<name>.npy`` and ``axes/<name>.bounds.npy`` — axis coordinate
  and bounds arrays;
* ``vars/<name>.npy`` — variable payloads with masked elements encoded
  as the variable's ``missing_value``.

That is **format version 1**: whole-array members, read all at once.
**Format version 2** (:mod:`repro.streaming.format`) keeps the same
axis/metadata model but splits payloads into per-timestep chunks with
manifest-pinned content digests, enabling out-of-core streaming reads.
:func:`read_cdz` auto-detects the version and materializes either one
byte-identically; :func:`write_cdz` writes v1 by default and v2 on
request.

Writes are crash-safe: the archive is assembled in a same-directory
temporary file, fsynced, and atomically renamed into place (the
``cache.store`` DiskTier publish idiom), so a writer killed mid-write
can never leave a torn ``.cdz`` visible at the target path.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import BinaryIO, Dict, Iterator, List, Optional, Union

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.variable import Variable
from repro.resilience import faults
from repro.util.errors import CDMSError

FORMAT_VERSION = 1
SUPPORTED_VERSIONS = (1, 2)

PathLike = Union[str, Path]

#: patchable fsync hook (tests simulate crashes between write and publish)
_fsync = os.fsync

_TMP_PREFIX = ".tmp-"


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def _npy_load(blob: bytes) -> np.ndarray:
    return np.load(io.BytesIO(blob), allow_pickle=False)


def _axis_manifest(axis: Axis) -> Dict[str, object]:
    return {
        "id": axis.id,
        "units": axis.units,
        "calendar": axis.calendar.name,
        "attributes": axis.attributes,
        "has_bounds": axis.get_bounds() is not None,
    }


def _shared_axes(variables: List[Variable]) -> Dict[str, Axis]:
    axes: Dict[str, Axis] = {}
    for var in variables:
        for axis in var.axes:
            existing = axes.get(axis.id)
            if existing is not None and existing != axis:
                raise CDMSError(
                    f"write_cdz: conflicting definitions of axis {axis.id!r} "
                    f"across variables"
                )
            axes[axis.id] = axis
    return axes


@contextlib.contextmanager
def _atomic_publish(path: Path) -> Iterator[BinaryIO]:
    """Write through a same-directory tmp file, fsync, atomically rename.

    Nothing is ever visible at *path* until the full archive hit disk:
    a writer killed at any point leaves only a ``.tmp-*`` file behind.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=_TMP_PREFIX, suffix=path.suffix or ".cdz"
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            yield handle
            handle.flush()
            _fsync(handle.fileno())
        faults.check("storage.write", path=str(path))
        os.replace(tmp_path, path)
    except BaseException:
        with contextlib.suppress(OSError):
            tmp_path.unlink()
        raise


def _write_archive_v1(
    archive: zipfile.ZipFile,
    variables: List[Variable],
    axes: Dict[str, Axis],
    dataset_id: str,
    attributes: Optional[Dict[str, object]],
) -> None:
    manifest = {
        "format_version": 1,
        "id": dataset_id,
        "attributes": attributes or {},
        "axes": [_axis_manifest(a) for a in axes.values()],
        "variables": [
            {
                "id": var.id,
                "dimensions": [a.id for a in var.axes],
                "attributes": var.attributes,
                "missing_value": var.missing_value,
                "dtype": str(var.dtype),
            }
            for var in variables
        ],
    }
    archive.writestr("manifest.json", json.dumps(manifest, indent=1))
    for axis in axes.values():
        archive.writestr(f"axes/{axis.id}.npy", _npy_bytes(axis.values))
        bounds = axis.get_bounds()
        if bounds is not None:
            archive.writestr(f"axes/{axis.id}.bounds.npy", _npy_bytes(bounds))
    for var in variables:
        archive.writestr(f"vars/{var.id}.npy", _npy_bytes(var.filled()))


def write_cdz(
    path: PathLike,
    variables: List[Variable],
    dataset_id: str = "dataset",
    attributes: Dict[str, object] | None = None,
    version: int = FORMAT_VERSION,
    chunk_timesteps: Optional[int] = None,
    lowres_factor: Optional[int] = None,
) -> None:
    """Write *variables* (sharing axes by id) to a ``.cdz`` file.

    ``version=1`` (the default) writes the whole-array format;
    ``version=2`` writes the chunked streaming format, honouring
    *chunk_timesteps* (coordinate points per chunk) and *lowres_factor*
    (decimation of the fallback companions; 1 disables them).
    """
    if not variables:
        raise CDMSError("write_cdz: no variables to write")
    if version not in SUPPORTED_VERSIONS:
        raise CDMSError(
            f"write_cdz: unsupported format version {version!r} "
            f"(supported: {SUPPORTED_VERSIONS})"
        )
    axes = _shared_axes(variables)
    path = Path(path)
    with _atomic_publish(path) as handle:
        with zipfile.ZipFile(handle, "w", compression=zipfile.ZIP_DEFLATED) as archive:
            if version == 1:
                _write_archive_v1(archive, variables, axes, dataset_id, attributes)
            else:
                from repro.streaming.format import (
                    DEFAULT_CHUNK_TIMESTEPS,
                    DEFAULT_LOWRES_FACTOR,
                    write_archive_v2,
                )

                write_archive_v2(
                    archive,
                    variables,
                    axes,
                    dataset_id,
                    attributes,
                    chunk_timesteps=(
                        DEFAULT_CHUNK_TIMESTEPS
                        if chunk_timesteps is None
                        else chunk_timesteps
                    ),
                    lowres_factor=(
                        DEFAULT_LOWRES_FACTOR if lowres_factor is None else lowres_factor
                    ),
                )


@contextlib.contextmanager
def _open_archive(path: Path) -> Iterator[zipfile.ZipFile]:
    if not path.exists():
        raise CDMSError(f"read_cdz: no such file {path}")
    try:
        archive = zipfile.ZipFile(path, "r")
    except (zipfile.BadZipFile, OSError) as exc:
        raise CDMSError(f"read_cdz: {path} is not a readable archive: {exc}") from exc
    with archive:
        yield archive


def _load_manifest(archive: zipfile.ZipFile, path: Path) -> Dict[str, object]:
    try:
        payload = archive.read("manifest.json")
    except KeyError:
        raise CDMSError(f"read_cdz: {path} has no manifest.json") from None
    except (zipfile.BadZipFile, zlib.error, OSError) as exc:
        raise CDMSError(f"read_cdz: {path} manifest unreadable: {exc}") from exc
    try:
        manifest = json.loads(payload)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CDMSError(f"read_cdz: {path} manifest is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CDMSError(f"read_cdz: {path} manifest is not an object")
    return manifest


def _member(archive: zipfile.ZipFile, name: str, path: Path) -> bytes:
    try:
        return archive.read(name)
    except KeyError:
        raise CDMSError(f"read_cdz: {path} is missing member {name!r}") from None
    except (zipfile.BadZipFile, zlib.error, OSError) as exc:
        raise CDMSError(f"read_cdz: {path} member {name!r} unreadable: {exc}") from exc


def _member_array(archive: zipfile.ZipFile, name: str, path: Path) -> np.ndarray:
    try:
        return _npy_load(_member(archive, name, path))
    except (ValueError, EOFError) as exc:
        raise CDMSError(f"read_cdz: {path} member {name!r} corrupt: {exc}") from exc


def detect_version(path: PathLike) -> int:
    """The format version of the ``.cdz`` container at *path*."""
    path = Path(path)
    with _open_archive(path) as archive:
        manifest = _load_manifest(archive, path)
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise CDMSError(f"read_cdz: unsupported format version {version!r}")
    return int(version)


def _read_all_v1(
    archive: zipfile.ZipFile, manifest: Dict[str, object], path: Path
) -> tuple[str, Dict[str, object], List[Variable]]:
    names = set(archive.namelist())
    axes: Dict[str, Axis] = {}
    for meta in manifest.get("axes", []):
        axis_id = meta["id"]
        values = _member_array(archive, f"axes/{axis_id}.npy", path)
        bounds = None
        if meta.get("has_bounds") and f"axes/{axis_id}.bounds.npy" in names:
            bounds = _member_array(archive, f"axes/{axis_id}.bounds.npy", path)
        axes[axis_id] = Axis(
            axis_id,
            values,
            units=meta.get("units", ""),
            bounds=bounds,
            calendar=meta.get("calendar", "standard"),
            attributes=meta.get("attributes", {}),
        )
    variables: List[Variable] = []
    for meta in manifest.get("variables", []):
        var_id = meta["id"]
        raw = _member_array(archive, f"vars/{var_id}.npy", path)
        missing = float(meta.get("missing_value", 1.0e20))
        data = np.ma.masked_values(raw, missing, rtol=1e-6, atol=0.0)
        try:
            var_axes = [axes[dim] for dim in meta["dimensions"]]
        except KeyError as exc:
            raise CDMSError(
                f"read_cdz: variable {var_id!r} references unknown axis "
                f"{exc.args[0]!r}"
            ) from None
        variables.append(
            Variable(
                data,
                var_axes,
                id=var_id,
                missing_value=missing,
                attributes=meta.get("attributes", {}),
            )
        )
    dataset_id = manifest.get("id")
    if not isinstance(dataset_id, str):
        raise CDMSError(f"read_cdz: {path} manifest has no dataset id")
    return dataset_id, manifest.get("attributes", {}), variables


def read_cdz(path: PathLike) -> tuple[str, Dict[str, object], List[Variable]]:
    """Read a ``.cdz`` file → ``(dataset_id, attributes, variables)``.

    Auto-detects the format version: v1 reads exactly as it always has;
    v2 materializes every chunk (digest-verified) into the identical
    in-memory representation.  All corruption — truncation, missing
    members, bad payloads — surfaces as :class:`CDMSError` (or its
    :class:`~repro.util.errors.StreamingError` subclass), never as a
    bare ``KeyError`` or ``zipfile`` traceback.
    """
    path = Path(path)
    with _open_archive(path) as archive:
        manifest = _load_manifest(archive, path)
        version = manifest.get("format_version")
        if version == 1:
            return _read_all_v1(archive, manifest, path)
        if version == 2:
            from repro.streaming.format import read_all_v2

            return read_all_v2(archive, manifest)
        raise CDMSError(f"read_cdz: unsupported format version {version!r}")
