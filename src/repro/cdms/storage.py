"""The ``.cdz`` self-contained dataset container.

The real CDMS reads NetCDF; with no NetCDF library available offline we
define an equivalent self-describing container: a ZIP archive holding

* ``manifest.json`` — dataset id, global attributes, axis and variable
  metadata (units, calendars, attributes, dimension lists);
* ``axes/<name>.npy`` and ``axes/<name>.bounds.npy`` — axis coordinate
  and bounds arrays;
* ``vars/<name>.npy`` — variable payloads with masked elements encoded
  as the variable's ``missing_value``.

The format is deliberately dumb and fully round-trips every piece of
metadata the :class:`~repro.cdms.variable.Variable` model carries, which
is what the provenance story requires ("enabling users to readily
regenerate any analysis product").
"""

from __future__ import annotations

import io
import json
import zipfile
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, np.ascontiguousarray(array), allow_pickle=False)
    return buffer.getvalue()


def _npy_load(blob: bytes) -> np.ndarray:
    return np.load(io.BytesIO(blob), allow_pickle=False)


def _axis_manifest(axis: Axis) -> Dict[str, object]:
    return {
        "id": axis.id,
        "units": axis.units,
        "calendar": axis.calendar.name,
        "attributes": axis.attributes,
        "has_bounds": axis.get_bounds() is not None,
    }


def write_cdz(
    path: PathLike,
    variables: List[Variable],
    dataset_id: str = "dataset",
    attributes: Dict[str, object] | None = None,
) -> None:
    """Write *variables* (sharing axes by id) to a ``.cdz`` file."""
    if not variables:
        raise CDMSError("write_cdz: no variables to write")
    axes: Dict[str, Axis] = {}
    for var in variables:
        for axis in var.axes:
            existing = axes.get(axis.id)
            if existing is not None and existing != axis:
                raise CDMSError(
                    f"write_cdz: conflicting definitions of axis {axis.id!r} "
                    f"across variables"
                )
            axes[axis.id] = axis
    manifest = {
        "format_version": FORMAT_VERSION,
        "id": dataset_id,
        "attributes": attributes or {},
        "axes": [_axis_manifest(a) for a in axes.values()],
        "variables": [
            {
                "id": var.id,
                "dimensions": [a.id for a in var.axes],
                "attributes": var.attributes,
                "missing_value": var.missing_value,
                "dtype": str(var.dtype),
            }
            for var in variables
        ],
    }
    path = Path(path)
    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("manifest.json", json.dumps(manifest, indent=1))
        for axis in axes.values():
            archive.writestr(f"axes/{axis.id}.npy", _npy_bytes(axis.values))
            bounds = axis.get_bounds()
            if bounds is not None:
                archive.writestr(f"axes/{axis.id}.bounds.npy", _npy_bytes(bounds))
        for var in variables:
            archive.writestr(f"vars/{var.id}.npy", _npy_bytes(var.filled()))


def read_cdz(path: PathLike) -> tuple[str, Dict[str, object], List[Variable]]:
    """Read a ``.cdz`` file → ``(dataset_id, attributes, variables)``."""
    path = Path(path)
    if not path.exists():
        raise CDMSError(f"read_cdz: no such file {path}")
    with zipfile.ZipFile(path, "r") as archive:
        try:
            manifest = json.loads(archive.read("manifest.json"))
        except KeyError as exc:
            raise CDMSError(f"read_cdz: {path} has no manifest.json") from exc
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise CDMSError(f"read_cdz: unsupported format version {version!r}")
        names = set(archive.namelist())
        axes: Dict[str, Axis] = {}
        for meta in manifest["axes"]:
            axis_id = meta["id"]
            values = _npy_load(archive.read(f"axes/{axis_id}.npy"))
            bounds = None
            if meta.get("has_bounds") and f"axes/{axis_id}.bounds.npy" in names:
                bounds = _npy_load(archive.read(f"axes/{axis_id}.bounds.npy"))
            axes[axis_id] = Axis(
                axis_id,
                values,
                units=meta.get("units", ""),
                bounds=bounds,
                calendar=meta.get("calendar", "standard"),
                attributes=meta.get("attributes", {}),
            )
        variables: List[Variable] = []
        for meta in manifest["variables"]:
            var_id = meta["id"]
            raw = _npy_load(archive.read(f"vars/{var_id}.npy"))
            missing = float(meta.get("missing_value", 1.0e20))
            data = np.ma.masked_values(raw, missing, rtol=1e-6, atol=0.0)
            var_axes = [axes[dim] for dim in meta["dimensions"]]
            variables.append(
                Variable(
                    data,
                    var_axes,
                    id=var_id,
                    missing_value=missing,
                    attributes=meta.get("attributes", {}),
                )
            )
    return manifest["id"], manifest.get("attributes", {}), variables
