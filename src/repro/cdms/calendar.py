"""Climate calendars and CF-style time coordinates.

Climate model output uses calendars that differ from the civil one:
CMIP-era models commonly run on a 365-day ("noleap") or 360-day
calendar.  Time axes carry values *relative* to an epoch, e.g.
``"days since 1979-01-01"``.  This module implements:

* :class:`Calendar` — day-count arithmetic for ``standard``
  (proleptic Gregorian), ``noleap`` and ``360_day`` calendars;
* :class:`ComponentTime` — a (year, month, day, hour, minute, second)
  tuple, the CDMS ``comptime`` analog;
* :class:`RelativeTime` — a numeric offset plus a units string, the
  CDMS ``reltime`` analog, convertible to/from component time.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple

from repro.util.errors import CDMSError

_GREGORIAN_MONTH_DAYS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)

#: seconds per unit for CF "X since <epoch>" strings
_UNIT_SECONDS = {
    "seconds": 1.0,
    "second": 1.0,
    "minutes": 60.0,
    "minute": 60.0,
    "hours": 3600.0,
    "hour": 3600.0,
    "days": 86400.0,
    "day": 86400.0,
}

_UNITS_RE = re.compile(
    r"^\s*(?P<unit>[a-zA-Z]+)\s+since\s+"
    r"(?P<year>-?\d{1,5})-(?P<month>\d{1,2})-(?P<day>\d{1,2})"
    r"(?:[ T](?P<hour>\d{1,2}):(?P<minute>\d{1,2})(?::(?P<second>\d{1,2}(?:\.\d+)?))?)?"
    r"\s*$"
)


def _is_gregorian_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


@dataclass(frozen=True, order=True)
class ComponentTime:
    """A calendar-independent broken-down time (CDMS ``comptime``)."""

    year: int
    month: int = 1
    day: int = 1
    hour: int = 0
    minute: int = 0
    second: float = 0.0

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise CDMSError(f"month out of range: {self.month}")
        if not 1 <= self.day <= 31:
            raise CDMSError(f"day out of range: {self.day}")
        if not 0 <= self.hour < 24 or not 0 <= self.minute < 60 or not 0 <= self.second < 60:
            raise CDMSError(f"time-of-day out of range: {self.hour}:{self.minute}:{self.second}")

    @staticmethod
    def parse(text: str) -> "ComponentTime":
        """Parse ``"YYYY-MM-DD"`` or ``"YYYY-MM-DD HH:MM[:SS]"``.

        Also accepts CDMS-style loose forms like ``"1979-1-1"``.
        """
        match = re.match(
            r"^\s*(-?\d{1,5})-(\d{1,2})-(\d{1,2})"
            r"(?:[ T](\d{1,2}):(\d{1,2})(?::(\d{1,2}(?:\.\d+)?))?)?\s*$",
            text,
        )
        if not match:
            raise CDMSError(f"unparseable time string: {text!r}")
        year, month, day = int(match[1]), int(match[2]), int(match[3])
        hour = int(match[4] or 0)
        minute = int(match[5] or 0)
        second = float(match[6] or 0.0)
        return ComponentTime(year, month, day, hour, minute, second)

    def isoformat(self) -> str:
        return (
            f"{self.year:04d}-{self.month:02d}-{self.day:02d} "
            f"{self.hour:02d}:{self.minute:02d}:{self.second:06.3f}"
        )

    def seconds_of_day(self) -> float:
        return self.hour * 3600.0 + self.minute * 60.0 + self.second


class Calendar:
    """Day-count arithmetic for one of the supported climate calendars."""

    SUPPORTED = ("standard", "gregorian", "proleptic_gregorian", "noleap", "365_day", "360_day")

    def __init__(self, name: str = "standard") -> None:
        canonical = name.lower()
        if canonical in ("gregorian", "proleptic_gregorian"):
            canonical = "standard"
        elif canonical == "365_day":
            canonical = "noleap"
        if canonical not in ("standard", "noleap", "360_day"):
            raise CDMSError(f"unsupported calendar {name!r}; supported: {self.SUPPORTED}")
        self.name = canonical

    def __repr__(self) -> str:
        return f"Calendar({self.name!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Calendar) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Calendar", self.name))

    # -- month/year structure ------------------------------------------------

    def days_in_month(self, year: int, month: int) -> int:
        if self.name == "360_day":
            return 30
        days = _GREGORIAN_MONTH_DAYS[month - 1]
        if month == 2 and self.name == "standard" and _is_gregorian_leap(year):
            days += 1
        return days

    def days_in_year(self, year: int) -> int:
        if self.name == "360_day":
            return 360
        if self.name == "noleap":
            return 365
        return 366 if _is_gregorian_leap(year) else 365

    # -- serial day numbers ----------------------------------------------

    def _days_before_year(self, year: int) -> int:
        """Days from the calendar origin (year 1, Jan 1) to Jan 1 of *year*."""
        if self.name == "360_day":
            return (year - 1) * 360
        if self.name == "noleap":
            return (year - 1) * 365
        y = year - 1
        return y * 365 + y // 4 - y // 100 + y // 400

    def _days_before_month(self, year: int, month: int) -> int:
        return sum(self.days_in_month(year, m) for m in range(1, month))

    def to_serial(self, ct: ComponentTime) -> float:
        """Serial day number (fractional) of *ct* from the calendar origin."""
        if ct.day > self.days_in_month(ct.year, ct.month):
            raise CDMSError(
                f"day {ct.day} invalid for {ct.year}-{ct.month:02d} in calendar {self.name}"
            )
        whole = self._days_before_year(ct.year) + self._days_before_month(ct.year, ct.month) + (ct.day - 1)
        return whole + ct.seconds_of_day() / 86400.0

    def from_serial(self, serial: float) -> ComponentTime:
        """Inverse of :meth:`to_serial`.

        Large serials carry ~microsecond float error; the fraction is
        snapped to a 0.1 ms grid so whole-second times decompose exactly.
        """
        whole = int(serial // 1)
        frac = serial - whole
        frac = round(frac * 864000000.0) / 864000000.0  # snap to 0.1 ms
        if frac >= 1.0:
            whole += 1
            frac = 0.0
        # locate year by stepping (years differ by at most 366 days, so a
        # divide-then-correct search terminates in a couple of iterations)
        if self.name == "360_day":
            year = whole // 360 + 1
        elif self.name == "noleap":
            year = whole // 365 + 1
        else:
            year = max(1, int(whole // 365.2425))
        while self._days_before_year(year + 1) <= whole:
            year += 1
        while self._days_before_year(year) > whole:
            year -= 1
        day_of_year = whole - self._days_before_year(year)
        month = 1
        while day_of_year >= self.days_in_month(year, month):
            day_of_year -= self.days_in_month(year, month)
            month += 1
        seconds = round(frac * 86400.0, 4)
        hour = int(seconds // 3600)
        seconds -= hour * 3600
        minute = int(seconds // 60)
        second = round(seconds - minute * 60, 6)
        if second >= 60.0:  # guard against float round-up
            second = 0.0
            minute += 1
            if minute == 60:
                minute = 0
                hour += 1
        return ComponentTime(year, month, day_of_year + 1, hour, minute, second)


@dataclass(frozen=True)
class RelativeTime:
    """A numeric time value relative to an epoch (CDMS ``reltime``).

    ``RelativeTime(17.5, "days since 1979-01-01")`` means 17.5 days
    after 1979-01-01 00:00 in whatever calendar the owning axis uses.
    """

    value: float
    units: str

    @staticmethod
    def parse_units(units: str) -> Tuple[float, ComponentTime]:
        """Return ``(seconds_per_unit, epoch)`` for a CF units string."""
        match = _UNITS_RE.match(units)
        if not match:
            raise CDMSError(f"unparseable time units: {units!r}")
        unit = match["unit"].lower()
        if unit not in _UNIT_SECONDS:
            raise CDMSError(f"unsupported time unit {unit!r} in {units!r}")
        epoch = ComponentTime(
            int(match["year"]),
            int(match["month"]),
            int(match["day"]),
            int(match["hour"] or 0),
            int(match["minute"] or 0),
            float(match["second"] or 0.0),
        )
        return _UNIT_SECONDS[unit], epoch

    def to_component(self, calendar: Calendar) -> ComponentTime:
        seconds_per_unit, epoch = self.parse_units(self.units)
        serial = calendar.to_serial(epoch) + self.value * seconds_per_unit / 86400.0
        return calendar.from_serial(serial)

    @staticmethod
    def from_component(ct: ComponentTime, units: str, calendar: Calendar) -> "RelativeTime":
        seconds_per_unit, epoch = RelativeTime.parse_units(units)
        delta_days = calendar.to_serial(ct) - calendar.to_serial(epoch)
        return RelativeTime(delta_days * 86400.0 / seconds_per_unit, units)

    def rebase(self, new_units: str, calendar: Calendar) -> "RelativeTime":
        """Express the same instant relative to a different epoch/unit."""
        return RelativeTime.from_component(self.to_component(calendar), new_units, calendar)
