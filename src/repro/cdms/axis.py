"""Coordinate axes (the CDMS ``Axis`` analog).

An axis is a named, monotonic 1-D coordinate with CF-style metadata:
units, optional cell bounds, and — for time axes — a calendar.  Axes
know how to recognise themselves as latitude / longitude / level / time
(CDMS's ``isLatitude()`` family), map coordinate intervals onto index
ranges (``mapInterval``), and subset consistently with their bounds.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cdms.calendar import Calendar, ComponentTime, RelativeTime
from repro.util.errors import CDMSError

_LATITUDE_UNITS = {"degrees_north", "degree_north", "degrees_n", "degreen", "degrees north"}
_LONGITUDE_UNITS = {"degrees_east", "degree_east", "degrees_e", "degreee", "degrees east"}
_LEVEL_UNITS = {"hpa", "pa", "mb", "millibar", "millibars", "m", "km", "level", "sigma"}

AxisValue = Union[float, str, ComponentTime]


class Axis:
    """A monotonic 1-D coordinate axis with CF metadata.

    Parameters
    ----------
    id:
        Axis name, e.g. ``"latitude"`` or ``"time"``.
    values:
        1-D array of coordinate values; must be strictly monotonic
        (increasing or decreasing) when it has more than one point.
    units:
        CF units string.  For time axes use ``"<unit> since <epoch>"``.
    bounds:
        Optional ``(n, 2)`` cell-bounds array.  When omitted,
        :meth:`gen_bounds` can synthesise contiguous midpoint bounds.
    calendar:
        Calendar name for time axes (default ``"standard"``).
    attributes:
        Free-form CF attribute dictionary (``standard_name`` etc.).
    """

    def __init__(
        self,
        id: str,
        values: Sequence[float],
        units: str = "",
        bounds: Optional[np.ndarray] = None,
        calendar: str = "standard",
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        data = np.asarray(values, dtype=np.float64)
        if data.ndim != 1:
            raise CDMSError(f"axis {id!r}: values must be 1-D, got shape {data.shape}")
        if data.size == 0:
            raise CDMSError(f"axis {id!r}: empty axis not allowed")
        if data.size > 1:
            diffs = np.diff(data)
            if not (np.all(diffs > 0) or np.all(diffs < 0)):
                raise CDMSError(f"axis {id!r}: values must be strictly monotonic")
        self.id = id
        self._values = data
        self._values.flags.writeable = False
        self.units = units
        self.calendar = Calendar(calendar)
        self.attributes: Dict[str, object] = dict(attributes or {})
        self._bounds: Optional[np.ndarray] = None
        if bounds is not None:
            self.set_bounds(np.asarray(bounds, dtype=np.float64))

    # -- basic protocol -------------------------------------------------

    def __len__(self) -> int:
        return int(self._values.size)

    def __repr__(self) -> str:
        return (
            f"Axis(id={self.id!r}, n={len(self)}, units={self.units!r}, "
            f"range=({self._values[0]:g}, {self._values[-1]:g}))"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Axis):
            return NotImplemented
        return (
            self.id == other.id
            and self.units == other.units
            and self.calendar == other.calendar
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((self.id, self.units, self._values.tobytes()))

    @property
    def values(self) -> np.ndarray:
        """The (read-only) coordinate array."""
        return self._values

    def __getitem__(self, index: Union[int, slice]) -> Union[float, "Axis"]:
        if isinstance(index, slice):
            return self.subaxis_slice(index)
        return float(self._values[index])

    @property
    def increasing(self) -> bool:
        return len(self) < 2 or bool(self._values[1] > self._values[0])

    # -- designation ----------------------------------------------------

    def is_latitude(self) -> bool:
        if str(self.attributes.get("axis", "")).upper() == "Y":
            return True
        if self.units.lower() in _LATITUDE_UNITS:
            return True
        return self.id.lower() in ("latitude", "lat", "lats")

    def is_longitude(self) -> bool:
        if str(self.attributes.get("axis", "")).upper() == "X":
            return True
        if self.units.lower() in _LONGITUDE_UNITS:
            return True
        return self.id.lower() in ("longitude", "lon", "lons")

    def is_level(self) -> bool:
        if str(self.attributes.get("axis", "")).upper() == "Z":
            return True
        if self.units.lower() in _LEVEL_UNITS and not (self.is_latitude() or self.is_longitude()):
            return True
        return self.id.lower() in ("level", "lev", "levels", "plev", "height", "depth", "altitude")

    def is_time(self) -> bool:
        if str(self.attributes.get("axis", "")).upper() == "T":
            return True
        if " since " in self.units.lower():
            return True
        return self.id.lower() in ("time", "t")

    def designation(self) -> str:
        """One of ``"latitude" | "longitude" | "level" | "time" | "other"``."""
        if self.is_time():
            return "time"
        if self.is_latitude():
            return "latitude"
        if self.is_longitude():
            return "longitude"
        if self.is_level():
            return "level"
        return "other"

    # -- bounds ----------------------------------------------------------

    def set_bounds(self, bounds: np.ndarray) -> None:
        if bounds.shape != (len(self), 2):
            raise CDMSError(
                f"axis {self.id!r}: bounds shape {bounds.shape} != ({len(self)}, 2)"
            )
        self._bounds = np.array(bounds, dtype=np.float64)
        self._bounds.flags.writeable = False

    def get_bounds(self) -> Optional[np.ndarray]:
        return self._bounds

    def gen_bounds(self) -> np.ndarray:
        """Return (caching) contiguous midpoint cell bounds.

        Latitude bounds are clipped to [-90, 90] as CDMS does.
        """
        if self._bounds is not None:
            return self._bounds
        v = self._values
        if len(v) == 1:
            half = 0.5 if not self.is_latitude() else 0.5
            edges = np.array([v[0] - half, v[0] + half])
        else:
            mids = 0.5 * (v[:-1] + v[1:])
            first = v[0] - (mids[0] - v[0])
            last = v[-1] + (v[-1] - mids[-1])
            edges = np.concatenate([[first], mids, [last]])
        bounds = np.stack([edges[:-1], edges[1:]], axis=1)
        if self.is_latitude():
            bounds = np.clip(bounds, -90.0, 90.0)
        self._bounds = bounds
        self._bounds.flags.writeable = False
        return self._bounds

    def cell_widths(self) -> np.ndarray:
        bounds = self.gen_bounds()
        return np.abs(bounds[:, 1] - bounds[:, 0])

    # -- time handling ----------------------------------------------------

    def as_component_time(self) -> list:
        """For a time axis, return the values as :class:`ComponentTime`."""
        if not self.is_time():
            raise CDMSError(f"axis {self.id!r} is not a time axis")
        return [RelativeTime(float(v), self.units).to_component(self.calendar) for v in self._values]

    def _coerce(self, value: AxisValue) -> float:
        """Convert a user-facing coordinate (number, time string, or
        ComponentTime) to the axis's native numeric coordinate."""
        if isinstance(value, (int, float, np.floating, np.integer)):
            return float(value)
        if self.is_time():
            ct = ComponentTime.parse(value) if isinstance(value, str) else value
            if not isinstance(ct, ComponentTime):
                raise CDMSError(f"cannot interpret {value!r} as a time coordinate")
            return RelativeTime.from_component(ct, self.units, self.calendar).value
        raise CDMSError(f"cannot interpret {value!r} as a coordinate on axis {self.id!r}")

    # -- interval mapping -------------------------------------------------

    def map_interval(self, low: AxisValue, high: AxisValue) -> Tuple[int, int]:
        """Map a closed coordinate interval to a half-open index range.

        Returns ``(i0, i1)`` such that ``values[i0:i1]`` are exactly the
        points inside ``[min(low,high), max(low,high)]``.  Raises
        :class:`CDMSError` when no points fall inside (CDMS returns
        None; an exception is harder to ignore accidentally).
        """
        lo = self._coerce(low)
        hi = self._coerce(high)
        if lo > hi:
            lo, hi = hi, lo
        inside = (self._values >= lo - 1e-12) & (self._values <= hi + 1e-12)
        idx = np.nonzero(inside)[0]
        if idx.size == 0:
            raise CDMSError(
                f"axis {self.id!r}: interval ({low}, {high}) contains no points "
                f"(axis range {self._values.min():g}..{self._values.max():g})"
            )
        return int(idx[0]), int(idx[-1]) + 1

    def nearest_index(self, value: AxisValue) -> int:
        """Index of the coordinate nearest to *value*."""
        target = self._coerce(value)
        return int(np.argmin(np.abs(self._values - target)))

    # -- subsetting ---------------------------------------------------------

    def subaxis_slice(self, index: slice) -> "Axis":
        """Return a new axis for ``values[index]``, slicing bounds too."""
        values = self._values[index]
        if values.size == 0:
            raise CDMSError(f"axis {self.id!r}: slice {index} selects no points")
        bounds = self._bounds[index] if self._bounds is not None else None
        return Axis(
            self.id,
            values,
            units=self.units,
            bounds=bounds,
            calendar=self.calendar.name,
            attributes=dict(self.attributes),
        )

    def clone(self) -> "Axis":
        return Axis(
            self.id,
            self._values.copy(),
            units=self.units,
            bounds=None if self._bounds is None else self._bounds.copy(),
            calendar=self.calendar.name,
            attributes=dict(self.attributes),
        )

    # -- weights -------------------------------------------------------------

    def area_weights(self) -> np.ndarray:
        """Per-point quadrature weights.

        Latitude axes weight by the difference of sines of the bound
        latitudes (exact sphere-area weighting); all other axes weight
        by cell width.  Weights are normalised to sum to 1.
        """
        if self.is_latitude():
            bounds = np.radians(self.gen_bounds())
            weights = np.abs(np.sin(bounds[:, 1]) - np.sin(bounds[:, 0]))
        else:
            weights = self.cell_widths()
        total = weights.sum()
        if total <= 0:
            raise CDMSError(f"axis {self.id!r}: degenerate weights")
        return weights / total


# -- convenience constructors ----------------------------------------------


def create_axis(
    id: str,
    values: Sequence[float],
    units: str = "",
    **kwargs: object,
) -> Axis:
    """Create a generic axis (thin alias of the constructor)."""
    return Axis(id, values, units=units, **kwargs)  # type: ignore[arg-type]


def latitude_axis(values: Sequence[float]) -> Axis:
    return Axis("latitude", values, units="degrees_north", attributes={"axis": "Y"})


def longitude_axis(values: Sequence[float]) -> Axis:
    return Axis("longitude", values, units="degrees_east", attributes={"axis": "X"})


def level_axis(values: Sequence[float], units: str = "hPa") -> Axis:
    return Axis("level", values, units=units, attributes={"axis": "Z"})


def time_axis(
    values: Sequence[float],
    units: str = "days since 1979-01-01",
    calendar: str = "standard",
) -> Axis:
    return Axis("time", values, units=units, calendar=calendar, attributes={"axis": "T"})


def uniform_latitude(n: int) -> Axis:
    """*n* equally spaced latitudes with endpoints at the poles inset by half a cell."""
    step = 180.0 / n
    values = np.linspace(-90.0 + step / 2, 90.0 - step / 2, n)
    return latitude_axis(values)


def uniform_longitude(n: int) -> Axis:
    """*n* equally spaced longitudes in [0, 360)."""
    values = np.arange(n) * (360.0 / n)
    return longitude_axis(values)
