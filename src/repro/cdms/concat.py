"""Concatenation along the time axis.

Climate archives deliver one file per month/year; analysis needs one
continuous variable.  :func:`concatenate_time` splices variables (e.g.
from several ``.cdz`` files) into one, validating that the pieces agree
on everything except time and that their time axes are disjoint,
ordered, and use the same calendar/units.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.dataset import Dataset
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError


def concatenate_time(pieces: Sequence[Variable]) -> Variable:
    """Splice time-chunked variables into one continuous variable.

    Pieces may arrive in any order; they are sorted by first time
    coordinate.  Requirements: same id/units, identical non-time axes,
    identical time units and calendar, and strictly increasing time
    across the splice points.
    """
    pieces = list(pieces)
    if not pieces:
        raise CDMSError("concatenate_time: no pieces")
    if len(pieces) == 1:
        return pieces[0]
    first = pieces[0]
    t_dims = []
    for piece in pieces:
        time_axis = piece.get_time()
        if time_axis is None:
            raise CDMSError(f"piece {piece.id!r} has no time axis")
        t_dims.append(piece.axis_index("time"))
        if piece.id != first.id:
            raise CDMSError(
                f"concatenate_time: mixed variables {first.id!r} vs {piece.id!r}"
            )
        if piece.units != first.units:
            raise CDMSError("concatenate_time: units differ between pieces")
        if t_dims[-1] != t_dims[0]:
            raise CDMSError("concatenate_time: time dimension position differs")
        for dim, axis in enumerate(piece.axes):
            if dim == t_dims[-1]:
                ref_time = first.get_time()
                assert ref_time is not None
                if axis.units != ref_time.units or axis.calendar != ref_time.calendar:
                    raise CDMSError(
                        "concatenate_time: time units/calendar differ between pieces"
                    )
                continue
            if axis != first.axes[dim]:
                raise CDMSError(
                    f"concatenate_time: non-time axis {axis.id!r} differs between pieces"
                )
    t_dim = t_dims[0]
    pieces.sort(key=lambda p: float(p.get_time().values[0]))  # type: ignore[union-attr]

    # time must be strictly increasing across the splice
    times: List[np.ndarray] = [p.get_time().values for p in pieces]  # type: ignore[union-attr]
    for prev, cur in zip(times[:-1], times[1:]):
        if cur[0] <= prev[-1]:
            raise CDMSError(
                f"concatenate_time: overlapping/unordered time ranges "
                f"({prev[-1]} then {cur[0]})"
            )
    merged_time = np.concatenate(times)
    ref_time = first.get_time()
    assert ref_time is not None
    time_axis = Axis(
        ref_time.id, merged_time, units=ref_time.units,
        calendar=ref_time.calendar.name, attributes=dict(ref_time.attributes),
    )
    data = np.ma.concatenate([p.data for p in pieces], axis=t_dim)
    axes = list(first.axes)
    axes[t_dim] = time_axis
    return Variable(
        data, axes, id=first.id, missing_value=first.missing_value,
        attributes=dict(first.attributes),
    )


def concatenate_datasets(datasets: Sequence[Dataset], id: str = "merged") -> Dataset:
    """Concatenate every shared variable of time-chunked datasets.

    Variables present in all inputs are spliced along time; variables
    missing from any input are dropped (with the standard multi-file
    semantics of taking the common subset).
    """
    datasets = list(datasets)
    if not datasets:
        raise CDMSError("concatenate_datasets: no datasets")
    shared = set(datasets[0].variable_ids)
    for ds in datasets[1:]:
        shared &= set(ds.variable_ids)
    if not shared:
        raise CDMSError("concatenate_datasets: no variables common to all inputs")
    variables = [
        concatenate_time([ds(variable_id) for ds in datasets])
        for variable_id in sorted(shared)
    ]
    attributes = dict(datasets[0].attributes)
    attributes["concatenated_from"] = [ds.id for ds in datasets]
    return Dataset(id=id, variables=variables, attributes=attributes)
