"""Datasets: named collections of variables (the CDMS ``Dataset`` analog).

In a DV3D workflow the first module is a *dataset reader*: it opens a
dataset (from the local file system or, in the paper, from the Earth
System Grid), lists its variables, and hands subsetted variables
downstream.  :class:`Dataset` is that object; :func:`open_dataset` is
the ``cdms2.open`` analog over the ``.cdz`` container.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.cdms.selectors import Selector
from repro.cdms.storage import read_cdz, write_cdz
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError

PathLike = Union[str, Path]


class Dataset:
    """An in-memory collection of variables with global attributes."""

    def __init__(
        self,
        id: str = "dataset",
        variables: Optional[List[Variable]] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.id = id
        self.attributes: Dict[str, object] = dict(attributes or {})
        self._variables: Dict[str, Variable] = {}
        for var in variables or []:
            self.add_variable(var)

    def __repr__(self) -> str:
        return f"Dataset(id={self.id!r}, variables={sorted(self._variables)})"

    def __contains__(self, variable_id: str) -> bool:
        return variable_id in self._variables

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._variables))

    def __len__(self) -> int:
        return len(self._variables)

    @property
    def variable_ids(self) -> List[str]:
        return sorted(self._variables)

    def add_variable(self, variable: Variable) -> None:
        if variable.id in self._variables:
            raise CDMSError(f"dataset {self.id!r}: duplicate variable {variable.id!r}")
        self._variables[variable.id] = variable

    def get_variable(self, variable_id: str) -> Variable:
        try:
            return self._variables[variable_id]
        except KeyError:
            raise CDMSError(
                f"dataset {self.id!r}: no variable {variable_id!r} "
                f"(available: {self.variable_ids})"
            ) from None

    def __call__(
        self,
        variable_id: str,
        selector: Optional[Selector] = None,
        **criteria: Any,
    ) -> Variable:
        """``ds("tas", latitude=(-30, 30))`` — fetch and subset in one call."""
        var = self.get_variable(variable_id)
        if selector is None and not criteria:
            return var
        return var(selector, **criteria)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-variable structural description (used by the variable view)."""
        return {
            vid: {
                "shape": var.shape,
                "dimensions": [a.id for a in var.axes],
                "units": var.units,
                "long_name": var.long_name,
                "order": var.order(),
            }
            for vid, var in self._variables.items()
        }

    # -- persistence -------------------------------------------------------

    def save(
        self,
        path: PathLike,
        version: int = 1,
        chunk_timesteps: Optional[int] = None,
        lowres_factor: Optional[int] = None,
    ) -> None:
        write_cdz(
            path,
            [self._variables[k] for k in sorted(self._variables)],
            dataset_id=self.id,
            attributes=self.attributes,
            version=version,
            chunk_timesteps=chunk_timesteps,
            lowres_factor=lowres_factor,
        )

    @staticmethod
    def load(path: PathLike) -> "Dataset":
        dataset_id, attributes, variables = read_cdz(path)
        return Dataset(id=dataset_id, variables=variables, attributes=attributes)

    # -- streaming lifecycle ----------------------------------------------

    #: the StreamingSource behind this dataset's lazy variables, if any
    streaming_source = None

    @property
    def is_streaming(self) -> bool:
        return self.streaming_source is not None

    def close(self) -> None:
        """Release streaming resources (prefetch threads, resident slabs)."""
        if self.streaming_source is not None:
            self.streaming_source.close()

    def __enter__(self) -> "Dataset":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _streaming_mode(streaming: Union[bool, str]) -> str:
    if streaming is True:
        return "on"
    if streaming is False or streaming is None:
        return "off"
    mode = str(streaming).lower()
    if mode not in ("auto", "on", "off"):
        raise CDMSError(
            f"open_dataset: streaming must be True/False/'auto'/'on'/'off', "
            f"got {streaming!r}"
        )
    return mode


def open_dataset(
    path: PathLike,
    streaming: Union[bool, str] = False,
    streaming_config: Optional[object] = None,
) -> Dataset:
    """Open a ``.cdz`` dataset from disk (the ``cdms2.open`` analog).

    *streaming* selects the ingest path:

    ``False`` / ``"off"``
        materialize every variable in memory (v1 behaviour, any format);
    ``True`` / ``"on"``
        require a v2 container and return lazy out-of-core variables
        (:class:`~repro.cdms.lazy.LazyVariable`) backed by the
        verified, prefetching streaming layer;
    ``"auto"``
        stream when the container is v2, load eagerly when it is v1.

    *streaming_config* is an optional
    :class:`~repro.streaming.config.StreamingConfig` (memory budget,
    prefetch depth, retry policy) for the streaming path.
    """
    mode = _streaming_mode(streaming)
    if mode == "off":
        return Dataset.load(path)
    from repro.cdms.storage import detect_version

    version = detect_version(path)
    if version != 2:
        if mode == "on":
            raise CDMSError(
                f"open_dataset: {path} is a v{version} container; streaming "
                "requires format v2 (write with version=2)"
            )
        return Dataset.load(path)
    from repro.cdms.lazy import LazyVariable
    from repro.streaming.dataset import StreamingSource

    source = StreamingSource(path, streaming_config)
    dataset = Dataset(
        id=source.dataset_id,
        variables=[LazyVariable(source, layout) for layout in source.layouts],
        attributes=source.attributes,
    )
    dataset.streaming_source = source
    return dataset
