"""Datasets: named collections of variables (the CDMS ``Dataset`` analog).

In a DV3D workflow the first module is a *dataset reader*: it opens a
dataset (from the local file system or, in the paper, from the Earth
System Grid), lists its variables, and hands subsetted variables
downstream.  :class:`Dataset` is that object; :func:`open_dataset` is
the ``cdms2.open`` analog over the ``.cdz`` container.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.cdms.selectors import Selector
from repro.cdms.storage import read_cdz, write_cdz
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError

PathLike = Union[str, Path]


class Dataset:
    """An in-memory collection of variables with global attributes."""

    def __init__(
        self,
        id: str = "dataset",
        variables: Optional[List[Variable]] = None,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        self.id = id
        self.attributes: Dict[str, object] = dict(attributes or {})
        self._variables: Dict[str, Variable] = {}
        for var in variables or []:
            self.add_variable(var)

    def __repr__(self) -> str:
        return f"Dataset(id={self.id!r}, variables={sorted(self._variables)})"

    def __contains__(self, variable_id: str) -> bool:
        return variable_id in self._variables

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._variables))

    def __len__(self) -> int:
        return len(self._variables)

    @property
    def variable_ids(self) -> List[str]:
        return sorted(self._variables)

    def add_variable(self, variable: Variable) -> None:
        if variable.id in self._variables:
            raise CDMSError(f"dataset {self.id!r}: duplicate variable {variable.id!r}")
        self._variables[variable.id] = variable

    def get_variable(self, variable_id: str) -> Variable:
        try:
            return self._variables[variable_id]
        except KeyError:
            raise CDMSError(
                f"dataset {self.id!r}: no variable {variable_id!r} "
                f"(available: {self.variable_ids})"
            ) from None

    def __call__(
        self,
        variable_id: str,
        selector: Optional[Selector] = None,
        **criteria: Any,
    ) -> Variable:
        """``ds("tas", latitude=(-30, 30))`` — fetch and subset in one call."""
        var = self.get_variable(variable_id)
        if selector is None and not criteria:
            return var
        return var(selector, **criteria)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-variable structural description (used by the variable view)."""
        return {
            vid: {
                "shape": var.shape,
                "dimensions": [a.id for a in var.axes],
                "units": var.units,
                "long_name": var.long_name,
                "order": var.order(),
            }
            for vid, var in self._variables.items()
        }

    # -- persistence -------------------------------------------------------

    def save(self, path: PathLike) -> None:
        write_cdz(
            path,
            [self._variables[k] for k in sorted(self._variables)],
            dataset_id=self.id,
            attributes=self.attributes,
        )

    @staticmethod
    def load(path: PathLike) -> "Dataset":
        dataset_id, attributes, variables = read_cdz(path)
        return Dataset(id=dataset_id, variables=variables, attributes=attributes)


def open_dataset(path: PathLike) -> Dataset:
    """Open a ``.cdz`` dataset from disk (the ``cdms2.open`` analog)."""
    return Dataset.load(path)
