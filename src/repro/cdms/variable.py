"""Metadata-carrying variables (the CDMS ``TransientVariable`` analog).

A :class:`Variable` binds an N-D masked numpy array to a tuple of
:class:`~repro.cdms.axis.Axis` objects (one per dimension) plus CF
attributes.  The central contract — the one every DV3D pipeline stage
relies on — is that **axes follow the data**: slicing, coordinate
subsetting, arithmetic, reordering and reductions all produce variables
whose axes still describe their dimensions correctly.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.grid import RectilinearGrid
from repro.cdms.selectors import Selector
from repro.util.errors import CDMSError

DEFAULT_MISSING = 1.0e20

#: canonical CDMS dimension-order characters
_ORDER_CHARS = {"time": "t", "level": "z", "latitude": "y", "longitude": "x"}


class Variable:
    """An N-D climate variable: masked data + axes + attributes.

    Parameters
    ----------
    data:
        Array-like (plain or masked).  Stored as a
        :class:`numpy.ma.MaskedArray` of ``float32`` or ``float64``.
    axes:
        One :class:`Axis` per dimension; lengths must match ``data.shape``.
    id:
        Variable name (e.g. ``"tas"``).
    units, long_name:
        Common CF attributes, also accessible via ``attributes``.
    missing_value:
        Fill value recorded for storage; masked elements are encoded
        with this value in the ``.cdz`` container.
    """

    def __init__(
        self,
        data: Any,
        axes: Sequence[Axis],
        id: str = "variable",
        units: str = "",
        long_name: str = "",
        missing_value: float = DEFAULT_MISSING,
        attributes: Optional[Dict[str, object]] = None,
    ) -> None:
        arr = np.ma.asarray(data)
        if arr.dtype.kind not in "fiu":
            raise CDMSError(f"variable {id!r}: unsupported dtype {arr.dtype}")
        if arr.dtype.kind in "iu":
            arr = arr.astype(np.float64)
        axes = tuple(axes)
        if len(axes) != arr.ndim:
            raise CDMSError(
                f"variable {id!r}: {len(axes)} axes for {arr.ndim}-D data"
            )
        for dim, axis in enumerate(axes):
            if len(axis) != arr.shape[dim]:
                raise CDMSError(
                    f"variable {id!r}: axis {axis.id!r} has {len(axis)} points "
                    f"but dimension {dim} has extent {arr.shape[dim]}"
                )
        self.id = id
        self._data: np.ma.MaskedArray = arr
        self._axes: Tuple[Axis, ...] = axes
        self.missing_value = float(missing_value)
        self.attributes: Dict[str, object] = dict(attributes or {})
        if units:
            self.attributes["units"] = units
        if long_name:
            self.attributes["long_name"] = long_name

    # -- basic protocol --------------------------------------------------

    def __repr__(self) -> str:
        dims = ", ".join(f"{a.id}={len(a)}" for a in self._axes)
        return f"Variable(id={self.id!r}, shape=({dims}), units={self.units!r})"

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self._data.shape)

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def size(self) -> int:
        return int(self._data.size)

    @property
    def units(self) -> str:
        return str(self.attributes.get("units", ""))

    @units.setter
    def units(self, value: str) -> None:
        self.attributes["units"] = value

    @property
    def long_name(self) -> str:
        return str(self.attributes.get("long_name", ""))

    @property
    def data(self) -> np.ma.MaskedArray:
        """The underlying masked array (shared, not a copy)."""
        return self._data

    @property
    def mask(self) -> np.ndarray:
        """Boolean mask broadcast to full shape (False where valid)."""
        return np.ma.getmaskarray(self._data)

    def filled(self, fill: Optional[float] = None) -> np.ndarray:
        """Plain ndarray with masked elements replaced by *fill*."""
        return self._data.filled(self.missing_value if fill is None else fill)

    def compressed(self) -> np.ndarray:
        """1-D array of the valid (unmasked) values."""
        return self._data.compressed()

    def valid_fraction(self) -> float:
        return 1.0 - float(self.mask.sum()) / max(self.size, 1)

    def finite_range(self) -> Optional[Tuple[float, float]]:
        """(min, max) over valid finite values, or None when there are none.

        The scalar-range primitive the DV3D plot types consume.  Lazy
        (streaming) variables override this with manifest statistics so
        asking for a range never materializes payload data.
        """
        values = self.compressed()
        values = values[np.isfinite(values)]
        if values.size == 0:
            return None
        return float(values.min()), float(values.max())

    # -- slab iteration (the out-of-core protocol; see repro.cdms.slabs) ---

    def slab_count(self) -> int:
        """How many slabs :meth:`iter_slabs` yields (1 for in-memory)."""
        return 1

    def slab_axis(self) -> int:
        """Dimension along which :meth:`iter_slabs` partitions.

        The time dimension when there is one (the axis the chunked
        container writer partitions along), else dimension 0.  Lazy
        variables override this with their container's chunk axis.
        """
        for dim, axis in enumerate(self._axes):
            if axis.designation() == "time":
                return dim
        return 0

    def iter_slabs(self) -> "Iterator[Variable]":
        """Yield the variable as storage-order slabs along ``slab_axis``.

        In-memory variables are one slab.  Lazy variables yield one
        materialized sub-variable per chunk, so reductions written as
        folds over slabs (the ``repro.cdat`` accumulator kernels) stay
        within the streaming memory budget.
        """
        yield self

    # -- axes -----------------------------------------------------------

    @property
    def axes(self) -> Tuple[Axis, ...]:
        return self._axes

    def get_axis(self, index: int) -> Axis:
        return self._axes[index]

    def axis_index(self, designation_or_id: str) -> int:
        """Dimension index of the axis matching a designation or id."""
        for i, axis in enumerate(self._axes):
            if axis.designation() == designation_or_id or axis.id == designation_or_id:
                return i
        raise CDMSError(f"variable {self.id!r}: no axis {designation_or_id!r}")

    def _axis_by_designation(self, designation: str) -> Optional[Axis]:
        for axis in self._axes:
            if axis.designation() == designation:
                return axis
        return None

    def get_latitude(self) -> Optional[Axis]:
        return self._axis_by_designation("latitude")

    def get_longitude(self) -> Optional[Axis]:
        return self._axis_by_designation("longitude")

    def get_level(self) -> Optional[Axis]:
        return self._axis_by_designation("level")

    def get_time(self) -> Optional[Axis]:
        return self._axis_by_designation("time")

    def get_grid(self) -> Optional[RectilinearGrid]:
        lat, lon = self.get_latitude(), self.get_longitude()
        if lat is None or lon is None:
            return None
        return RectilinearGrid(lat, lon)

    def order(self) -> str:
        """CDMS order string, e.g. ``"tzyx"`` (``-`` for other axes)."""
        return "".join(_ORDER_CHARS.get(a.designation(), "-") for a in self._axes)

    # -- copying / dtype ---------------------------------------------------

    def clone(self, deep: bool = True) -> "Variable":
        data = self._data.copy() if deep else self._data
        return Variable(
            data,
            tuple(a.clone() for a in self._axes) if deep else self._axes,
            id=self.id,
            missing_value=self.missing_value,
            attributes=dict(self.attributes),
        )

    def astype(self, dtype: Any) -> "Variable":
        return self._rewrap(self._data.astype(dtype), self._axes)

    def _rewrap(
        self,
        data: np.ma.MaskedArray,
        axes: Sequence[Axis],
        id: Optional[str] = None,
        **attr_updates: object,
    ) -> "Variable":
        attrs = dict(self.attributes)
        attrs.update(attr_updates)
        return Variable(
            data,
            axes,
            id=id or self.id,
            missing_value=self.missing_value,
            attributes=attrs,
        )

    # -- indexing -----------------------------------------------------------

    def __getitem__(self, key: Any) -> "Variable":
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > self.ndim:
            raise CDMSError(f"variable {self.id!r}: too many indices {key!r}")
        key = key + (slice(None),) * (self.ndim - len(key))
        norm: list = []
        for k in key:
            if isinstance(k, (int, np.integer)):
                # keep the dimension (length-1) so axes stay aligned;
                # use squeeze() to drop it
                k = slice(int(k), int(k) + 1 or None)
            if not isinstance(k, slice):
                raise CDMSError(
                    f"variable {self.id!r}: only int/slice indexing supported, got {k!r}"
                )
            norm.append(k)
        data = self._data[tuple(norm)]
        axes = tuple(axis.subaxis_slice(k) for axis, k in zip(self._axes, norm))
        return self._rewrap(data, axes)

    def squeeze(self) -> "Variable":
        """Drop all length-1 dimensions (and their axes)."""
        keep = [i for i, n in enumerate(self.shape) if n > 1]
        if len(keep) == self.ndim:
            return self
        if not keep:  # fully scalar: keep one dimension to stay a Variable
            keep = [0]
        index = tuple(
            slice(None) if i in keep else 0 for i in range(self.ndim)
        )
        data = self._data[index]
        axes = tuple(self._axes[i] for i in keep)
        return self._rewrap(data, axes)

    # -- coordinate subsetting ------------------------------------------------

    def __call__(self, selector: Optional[Selector] = None, **criteria: Any) -> "Variable":
        """Coordinate-space subsetting: ``var(latitude=(-30, 30), level=500)``."""
        sel = selector if selector is not None else Selector()
        if criteria:
            sel = sel & Selector(**criteria)
        unmatched = sel.unmatched(self._axes)
        if unmatched:
            raise CDMSError(
                f"variable {self.id!r}: selector criteria {unmatched} match no axis"
            )
        index = tuple(sel.index_for_axis(axis) for axis in self._axes)
        return self[index]

    def sub_region(self, **criteria: Any) -> "Variable":
        """Alias of ``__call__`` matching the CDMS ``subRegion`` name."""
        return self(**criteria)

    # -- arithmetic ------------------------------------------------------------

    def _binary(self, other: Any, op, symbol: str) -> "Variable":
        if isinstance(other, Variable):
            if other.shape != self.shape:
                raise CDMSError(
                    f"shape mismatch in {self.id!r} {symbol} {other.id!r}: "
                    f"{self.shape} vs {other.shape}"
                )
            result = op(self._data, other._data)
            new_id = f"({self.id}{symbol}{other.id})"
        else:
            result = op(self._data, other)
            new_id = self.id
        return self._rewrap(np.ma.asarray(result), self._axes, id=new_id)

    def __add__(self, other: Any) -> "Variable":
        return self._binary(other, np.ma.add, "+")

    def __radd__(self, other: Any) -> "Variable":
        return self._binary(other, lambda a, b: np.ma.add(b, a), "+")

    def __sub__(self, other: Any) -> "Variable":
        return self._binary(other, np.ma.subtract, "-")

    def __rsub__(self, other: Any) -> "Variable":
        return self._binary(other, lambda a, b: np.ma.subtract(b, a), "-")

    def __mul__(self, other: Any) -> "Variable":
        return self._binary(other, np.ma.multiply, "*")

    def __rmul__(self, other: Any) -> "Variable":
        return self._binary(other, lambda a, b: np.ma.multiply(b, a), "*")

    def __truediv__(self, other: Any) -> "Variable":
        return self._binary(other, _masked_divide, "/")

    def __rtruediv__(self, other: Any) -> "Variable":
        return self._binary(other, lambda a, b: _masked_divide(b, a), "/")

    def __pow__(self, other: Any) -> "Variable":
        return self._binary(other, np.ma.power, "**")

    def __neg__(self) -> "Variable":
        return self._rewrap(-self._data, self._axes, id=f"(-{self.id})")

    def __abs__(self) -> "Variable":
        return self._rewrap(np.ma.abs(self._data), self._axes, id=f"abs({self.id})")

    # -- comparisons produce boolean masks (as float variables) ---------------

    def _compare(self, other: Any, op, symbol: str) -> "Variable":
        data = other._data if isinstance(other, Variable) else other
        result = np.ma.asarray(op(self._data, data).astype(np.float64))
        result.mask = np.ma.getmaskarray(self._data).copy()
        return self._rewrap(result, self._axes, id=f"({self.id}{symbol})", units="1")

    def __gt__(self, other: Any) -> "Variable":
        return self._compare(other, np.ma.greater, ">")

    def __ge__(self, other: Any) -> "Variable":
        return self._compare(other, np.ma.greater_equal, ">=")

    def __lt__(self, other: Any) -> "Variable":
        return self._compare(other, np.ma.less, "<")

    def __le__(self, other: Any) -> "Variable":
        return self._compare(other, np.ma.less_equal, "<=")

    # -- reordering ------------------------------------------------------------

    def reorder(self, order: Union[str, Sequence[str]]) -> "Variable":
        """Transpose dimensions to the requested order.

        *order* is either a CDMS order string using ``t z y x`` (e.g.
        ``"tzyx"``) or a sequence of axis ids/designations.  All of the
        variable's dimensions must be covered.
        """
        if isinstance(order, str):
            reverse = {v: k for k, v in _ORDER_CHARS.items()}
            try:
                names = [reverse[ch] for ch in order]
            except KeyError as exc:
                raise CDMSError(f"bad order string {order!r}") from exc
        else:
            names = list(order)
        if len(names) != self.ndim:
            raise CDMSError(
                f"variable {self.id!r}: order {order!r} names {len(names)} axes, "
                f"variable has {self.ndim}"
            )
        perm = [self.axis_index(name) for name in names]
        if sorted(perm) != list(range(self.ndim)):
            raise CDMSError(f"variable {self.id!r}: order {order!r} is not a permutation")
        data = self._data.transpose(perm)
        axes = tuple(self._axes[i] for i in perm)
        return self._rewrap(data, axes)

    # -- simple reductions (axis-aware; heavier stats live in repro.cdat) ------

    def _reduce(self, func, axis_name: Optional[str], id_prefix: str) -> Union["Variable", float]:
        if axis_name is None:
            return float(func(self._data))
        dim = self.axis_index(axis_name)
        data = func(self._data, axis=dim)
        axes = tuple(a for i, a in enumerate(self._axes) if i != dim)
        if not axes:
            return float(data)
        return self._rewrap(np.ma.asarray(data), axes, id=f"{id_prefix}({self.id})")

    def mean(self, axis: Optional[str] = None) -> Union["Variable", float]:
        """Unweighted mean over one named axis (or all data)."""
        return self._reduce(np.ma.mean, axis, "mean")

    def sum(self, axis: Optional[str] = None) -> Union["Variable", float]:
        return self._reduce(np.ma.sum, axis, "sum")

    def min(self, axis: Optional[str] = None) -> Union["Variable", float]:
        return self._reduce(np.ma.min, axis, "min")

    def max(self, axis: Optional[str] = None) -> Union["Variable", float]:
        return self._reduce(np.ma.max, axis, "max")

    def std(self, axis: Optional[str] = None) -> Union["Variable", float]:
        return self._reduce(np.ma.std, axis, "std")

    # -- regrid convenience ------------------------------------------------------

    def regrid(self, target: RectilinearGrid, method: str = "bilinear") -> "Variable":
        from repro.cdms.regrid import regrid_bilinear, regrid_conservative

        if method == "bilinear":
            return regrid_bilinear(self, target)
        if method == "conservative":
            return regrid_conservative(self, target)
        raise CDMSError(f"unknown regrid method {method!r}")


def _masked_divide(a: Any, b: Any) -> np.ma.MaskedArray:
    """Division that masks (rather than warns on) division by zero."""
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.ma.divide(a, b)
    return np.ma.masked_invalid(result)


def as_variable(obj: Any, template: Variable, id: Optional[str] = None) -> Variable:
    """Wrap a raw array in the metadata of *template* (shape must match)."""
    arr = np.ma.asarray(obj)
    if arr.shape != template.shape:
        raise CDMSError(
            f"as_variable: shape {arr.shape} does not match template {template.shape}"
        )
    return Variable(
        arr,
        template.axes,
        id=id or template.id,
        missing_value=template.missing_value,
        attributes=dict(template.attributes),
    )
