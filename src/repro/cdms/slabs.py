"""The slab-oriented source protocol shared by eager and lazy variables.

Every analysis- or render-facing consumer in this codebase talks to a
*slab source* rather than to a raw array.  A slab source is anything
that exposes:

``shape`` / ``ndim`` / ``dtype`` / ``axes`` / ``attributes`` / ``missing_value``
    structural metadata, available without touching payload bytes;
``finite_range()``
    the (min, max) over valid finite values, or ``None`` — answered
    from manifest statistics by streaming variables;
``slab_count()`` and ``iter_slabs()``
    partition of the payload into storage-order slabs along
    ``slab_axis()``; an in-memory :class:`~repro.cdms.variable.Variable`
    is one slab, a :class:`~repro.cdms.lazy.LazyVariable` yields one
    materialized sub-variable per container chunk;
``slab_axis()``
    the dimension index along which ``iter_slabs`` partitions.

Both :class:`~repro.cdms.variable.Variable` and
:class:`~repro.cdms.lazy.LazyVariable` implement the protocol, which is
what lets the ``repro.cdat`` accumulator kernels produce byte-identical
results on either: a kernel that folds slabs in storage order performs
the *same sequence of float operations* whether the data arrives as one
slab or twenty.

This module holds the helpers shared by protocol consumers: aligned
multi-variable slab iteration, scalar-range policy (the logic the DV3D
plot types previously each carried a copy of), and finite-max folding
for derived fields such as vector speed.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple, Type

import numpy as np

from repro.cdms.variable import Variable
from repro.util.errors import CDMSError


def slab_axis(var: Variable) -> int:
    """The dimension index along which ``iter_slabs`` partitions *var*.

    Streaming variables report their container's chunk axis; in-memory
    variables report their time dimension (the axis the chunked writer
    partitions along), falling back to dimension 0 when there is none.
    """
    return int(var.slab_axis())


def is_streamed(var: Variable) -> bool:
    """True when *var* delivers its payload in more than one slab."""
    return var.slab_count() > 1


def slab_ranges(var: Variable) -> List[Tuple[int, int]]:
    """``(start, stop)`` index ranges of each slab along ``slab_axis``."""
    layout = getattr(var, "layout", None)
    if layout is not None:
        return [(chunk.start, chunk.stop) for chunk in layout.chunks]
    return [(0, var.shape[slab_axis(var)])]


def iter_aligned_slabs(*variables: Variable) -> Iterator[Tuple[Variable, ...]]:
    """Yield co-indexed slab tuples covering all of *variables*.

    The variable with the finest partition drives: its slab ranges are
    applied (along its slab axis) to every other variable via indexing,
    so each yielded tuple covers the same index range of every input.
    Indexing a lazy variable reads only the chunks covering the range
    (through its prefetcher), so joint iteration stays within the
    streaming memory budget; indexing an eager variable is a view.
    """
    if not variables:
        return
    driver = max(variables, key=lambda v: v.slab_count())
    if driver.slab_count() <= 1:
        yield tuple(variables)
        return
    axis = slab_axis(driver)
    extent = driver.shape[axis]
    for var in variables:
        if axis >= var.ndim or var.shape[axis] != extent:
            raise CDMSError(
                f"iter_aligned_slabs: variable {var.id!r} does not span "
                f"dimension {axis} with extent {extent}"
            )
    for start, stop in slab_ranges(driver):
        yield tuple(
            var[
                tuple(
                    slice(start, stop) if dim == axis else slice(None)
                    for dim in range(var.ndim)
                )
            ]
            for var in variables
        )


# -- scalar-range policy (shared by the DV3D plot types) -------------------


def require_finite_range(
    var: Variable,
    error: Type[Exception] = CDMSError,
    what: str = "variable",
) -> Tuple[float, float]:
    """The variable's finite (min, max), or raise *error* when empty.

    Streaming variables answer from manifest statistics, so asking for
    a display range never materializes payload data.
    """
    rng = var.finite_range()
    if rng is None:
        raise error(f"{what} {var.id!r} has no valid data")
    return rng


def padded_range(rng: Tuple[float, float]) -> Tuple[float, float]:
    """Widen a degenerate (lo >= hi) range so colormap math stays finite."""
    lo, hi = float(rng[0]), float(rng[1])
    if hi <= lo:
        hi = lo + 1e-6
    return lo, hi


def display_range(
    var: Variable,
    error: Type[Exception] = CDMSError,
    what: str = "variable",
) -> Tuple[float, float]:
    """``require_finite_range`` + ``padded_range`` in one step."""
    return padded_range(require_finite_range(var, error=error, what=what))


def fold_finite_max(
    fn: Callable[..., np.ndarray], *variables: Variable
) -> Optional[float]:
    """Max finite value of ``fn(*slabs)`` folded slab-by-slab.

    The max of per-slab maxima is exactly the global max — the same
    elementwise values, partitioned — so derived fields (e.g. vector
    speed) can be ranged without materializing every component at once.
    Returns None when no slab produces a finite value.
    """
    best: Optional[float] = None
    for slabs in iter_aligned_slabs(*variables):
        values = np.asarray(fn(*slabs))
        finite = values[np.isfinite(values)]
        if finite.size:
            slab_max = float(finite.max())
            if best is None or slab_max > best:
                best = slab_max
    return best


def materialize(var: Variable, op: str = "") -> Variable:
    """Gather a (possibly lazy) variable into one in-memory Variable.

    The documented fallback for operators that genuinely need the whole
    array at once (e.g. a percentile along the slab axis).  Counted as
    ``cdat.materialize`` so the out-of-core escape is observable.
    """
    if not is_streamed(var) and getattr(var, "layout", None) is None:
        return var
    from repro import obs

    if obs.enabled():
        obs.counter("cdat.materialize", var=var.id, op=op or "unknown")
    full = tuple(slice(None) for _ in range(var.ndim))
    return var[full]


def map_slabs(
    fn: Callable[..., Variable],
    *variables: Variable,
    id: Optional[str] = None,
    **attr_updates: Any,
) -> Variable:
    """Apply a per-slab operation and concatenate along the slab axis.

    Correct (and byte-identical to the whole-array computation) for any
    operation whose output rows depend only on the matching input rows
    along the slab axis — elementwise transforms, masking, reductions
    over *other* dimensions.  The slab axis must survive ``fn``.
    """
    driver = max(variables, key=lambda v: v.slab_count())
    template = variables[0]
    if driver.slab_count() <= 1:
        out = fn(*next(iter_aligned_slabs(*variables)))
    else:
        pieces = [fn(*slabs) for slabs in iter_aligned_slabs(*variables)]
        slab_id = driver.axes[slab_axis(driver)].id
        out_axis = next(
            (i for i, a in enumerate(pieces[0].axes) if a.id == slab_id), None
        )
        if out_axis is None:
            raise CDMSError(
                f"map_slabs: slab axis {slab_id!r} did not survive the "
                f"per-slab operation"
            )
        data = np.ma.concatenate([p.data for p in pieces], axis=out_axis)
        axes = list(pieces[0].axes)
        axes[out_axis] = _concat_axis([p.axes[out_axis] for p in pieces])
        out = Variable(
            data,
            tuple(axes),
            id=pieces[0].id,
            missing_value=pieces[0].missing_value,
            attributes=dict(pieces[0].attributes),
        )
    if id is not None:
        out.id = id
    if attr_updates:
        out.attributes.update(attr_updates)
    if out.missing_value != template.missing_value:
        out.missing_value = template.missing_value
    return out


def _concat_axis(axes: List[Any]):
    """Join per-slab sub-axes back into the full axis."""
    from repro.cdms.axis import Axis

    first = axes[0]
    values = np.concatenate([a.values for a in axes])
    bounds_list = [a.get_bounds() for a in axes]
    bounds = None
    if all(b is not None for b in bounds_list):
        bounds = np.concatenate(bounds_list, axis=0)
    return Axis(
        first.id,
        values,
        units=first.units,
        bounds=bounds,
        calendar=first.calendar.name,
        attributes=dict(first.attributes),
    )
