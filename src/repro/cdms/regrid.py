"""Regridding between rectilinear grids.

The paper lists "regridding" among the CDAT operations DV3D workflows
use.  For rectilinear grids both standard schemes factor into separable
1-D operators, which keeps everything as dense matrix products (fully
vectorized, per the session performance guides):

* **bilinear** — two-point linear interpolation weights per output
  coordinate, with periodic wrap-around in longitude for global grids;
* **conservative** (first order) — cell-overlap weights, computed in
  sin(latitude) for latitude (exact spherical areas) and degrees for
  longitude.

Both schemes are mask-aware: masked source cells contribute nothing and
output cells whose total valid weight falls below a threshold are
masked.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro import obs
from repro.cdms.grid import RectilinearGrid
from repro.cdms.variable import Variable
from repro.util.errors import CDMSError

_VALID_WEIGHT_FLOOR = 0.5  # conservative: mask output cells <50% covered by valid input


def _bilinear_matrix(src: np.ndarray, dst: np.ndarray, periodic: bool) -> np.ndarray:
    """(n_dst, n_src) two-point linear interpolation weight matrix."""
    src = np.asarray(src, dtype=np.float64)
    dst = np.asarray(dst, dtype=np.float64)
    if src[0] > src[-1]:  # normalise to increasing
        flip = _bilinear_matrix(src[::-1], dst, periodic)
        return flip[:, ::-1]
    n_src = src.size
    if periodic:
        ext = np.concatenate([src, [src[0] + 360.0]])
        dstw = np.where(dst < src[0], dst + 360.0, dst)
    else:
        ext = src
        dstw = np.clip(dst, src[0], src[-1])
    # bracket indices in the (possibly extended) source
    hi = np.searchsorted(ext, dstw, side="left")
    hi = np.clip(hi, 1, ext.size - 1)
    lo = hi - 1
    span = ext[hi] - ext[lo]
    with np.errstate(invalid="ignore", divide="ignore"):
        frac = np.where(span > 0, (dstw - ext[lo]) / np.where(span > 0, span, 1.0), 0.0)
    frac = np.clip(frac, 0.0, 1.0)
    matrix = np.zeros((dst.size, n_src), dtype=np.float64)
    rows = np.arange(dst.size)
    matrix[rows, lo % n_src] += 1.0 - frac
    matrix[rows, hi % n_src] += frac
    return matrix


def _overlap_matrix(
    src_bounds: np.ndarray,
    dst_bounds: np.ndarray,
    transform=None,
    periodic: bool = False,
) -> np.ndarray:
    """(n_dst, n_src) first-order conservative overlap-fraction matrix.

    Each row holds, for one destination cell, the fraction of that cell
    covered by each source cell (in the transformed coordinate, e.g.
    sin(latitude)).  Rows of a fully covered destination sum to 1.
    """

    def edges(bounds: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        lo = np.minimum(bounds[:, 0], bounds[:, 1])
        hi = np.maximum(bounds[:, 0], bounds[:, 1])
        if transform is not None:
            tlo, thi = transform(lo), transform(hi)
            lo, hi = np.minimum(tlo, thi), np.maximum(tlo, thi)
        return lo, hi

    src_lo, src_hi = edges(np.asarray(src_bounds, dtype=np.float64))
    dst_lo, dst_hi = edges(np.asarray(dst_bounds, dtype=np.float64))

    def raw_overlap(dlo: np.ndarray, dhi: np.ndarray) -> np.ndarray:
        left = np.maximum(dlo[:, None], src_lo[None, :])
        right = np.minimum(dhi[:, None], src_hi[None, :])
        return np.clip(right - left, 0.0, None)

    overlap = raw_overlap(dst_lo, dst_hi)
    if periodic:
        # try shifting destination cells by ±360° to catch wrap-around
        for shift in (-360.0, 360.0):
            overlap += raw_overlap(dst_lo + shift, dst_hi + shift)
    width = dst_hi - dst_lo
    with np.errstate(invalid="ignore", divide="ignore"):
        matrix = overlap / np.where(width > 0, width, 1.0)[:, None]
    return matrix


def _separable_products(
    filled: np.ndarray,
    valid: np.ndarray,
    lat_matrix: np.ndarray,
    lon_matrix: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """(numerator, denominator) of the separable operator application.

    The parallel path (:mod:`repro.parallel`) calls this on
    output-latitude bands of *lat_matrix* and concatenates — the banded
    results agree with the full application to einsum/BLAS rounding
    (the regrid kernel is near-exact, not bitwise, see docs).
    """
    # numerator and normalisation share the same operator application
    numerator = np.einsum("li,...ij,mj->...lm", lat_matrix, filled, lon_matrix, optimize=True)
    denominator = np.einsum(
        "li,...ij,mj->...lm", lat_matrix, valid.astype(np.float64), lon_matrix, optimize=True
    )
    return numerator, denominator


def _apply_separable(
    var: Variable,
    target: RectilinearGrid,
    lat_matrix: np.ndarray,
    lon_matrix: np.ndarray,
    weight_floor: float,
    parallel=None,
) -> Variable:
    """Apply 1-D operators along the latitude and longitude dimensions."""
    lat_dim = var.axis_index("latitude")
    lon_dim = var.axis_index("longitude")
    data = np.moveaxis(var.filled(np.nan), (lat_dim, lon_dim), (-2, -1))
    valid = ~np.isnan(data)
    filled = np.where(valid, data, 0.0)

    from repro.parallel.config import get_config

    config = parallel if parallel is not None else get_config()
    n_out = int(np.prod(filled.shape[:-2])) * lat_matrix.shape[0] * lon_matrix.shape[0]
    if config.wants(n_out) and lat_matrix.shape[0] >= 2:
        from repro.parallel.kernels import parallel_separable_products

        numerator, denominator = parallel_separable_products(
            filled, valid, lat_matrix, lon_matrix, config
        )
    else:
        numerator, denominator = _separable_products(filled, valid, lat_matrix, lon_matrix)

    with np.errstate(invalid="ignore", divide="ignore"):
        result = numerator / denominator
    mask = denominator < weight_floor
    result = np.where(mask, 0.0, result)
    out = np.ma.MaskedArray(result, mask=mask)
    out = np.ma.asarray(np.moveaxis(out, (-2, -1), (lat_dim, lon_dim)))
    new_axes = list(var.axes)
    new_axes[lat_dim] = target.latitude
    new_axes[lon_dim] = target.longitude
    return Variable(
        out,
        new_axes,
        id=var.id,
        missing_value=var.missing_value,
        attributes=dict(var.attributes),
    )


def _require_grid(var: Variable) -> RectilinearGrid:
    grid = var.get_grid()
    if grid is None:
        raise CDMSError(f"variable {var.id!r} has no horizontal grid to regrid")
    return grid


def _memoized(scheme: str, var: Variable, target: RectilinearGrid, parallel, compute):
    """Serve *compute()* through the ambient result cache, when enabled.

    Unlike the render kernels, the parallel regrid path is only
    near-exact (banded einsum rounding differs from the full product),
    so the key includes the effective parallel tiling — a serial run
    never serves a band-parallel product or vice versa.
    """
    from repro.cache.config import get_config as get_cache_config

    if not get_cache_config().enabled:
        return compute()
    from repro.cache.keys import cache_key
    from repro.cache.store import get_cache
    from repro.parallel.config import get_config as get_parallel_config

    pconfig = parallel if parallel is not None else get_parallel_config()
    key = cache_key(
        "regrid", scheme, var, target,
        (pconfig.enabled, pconfig.workers, pconfig.tile_rows, pconfig.min_items),
    )
    cache = get_cache()
    found, out = cache.get(key, site="regrid")
    if found:
        return out
    out = compute()
    cache.put(key, out, site="regrid")
    return out


def regrid_bilinear(var: Variable, target: RectilinearGrid, parallel=None) -> Variable:
    """Bilinear regrid of *var* onto *target* (mask-aware)."""
    source = _require_grid(var)
    periodic = source.is_global()

    def compute() -> Variable:
        with obs.span("regrid.bilinear", src=str(var.shape)) as _span:
            lat_matrix = _bilinear_matrix(source.latitude.values, target.latitude.values, periodic=False)
            lon_matrix = _bilinear_matrix(source.longitude.values, target.longitude.values, periodic=periodic)
            out = _apply_separable(
                var, target, lat_matrix, lon_matrix, weight_floor=1e-9, parallel=parallel
            )
            if obs.enabled():
                obs.counter("regrid.cells", int(np.prod(out.shape)))
                _span.set(dst=str(out.shape))
        return out

    return _memoized("bilinear", var, target, parallel, compute)


def regrid_conservative(var: Variable, target: RectilinearGrid, parallel=None) -> Variable:
    """First-order conservative regrid of *var* onto *target*.

    For global grids and unmasked data the area-weighted global mean is
    preserved to numerical precision.

    *parallel* (a :class:`repro.parallel.ParallelConfig`, defaulting to
    the ambient config) splits the operator application over
    output-latitude bands on worker processes.
    """
    source = _require_grid(var)
    periodic = source.is_global()

    def compute() -> Variable:
        with obs.span("regrid.conservative", src=str(var.shape)) as _span:
            lat_matrix = _overlap_matrix(
                source.latitude.gen_bounds(),
                target.latitude.gen_bounds(),
                transform=lambda x: np.sin(np.radians(x)),
            )
            lon_matrix = _overlap_matrix(
                source.longitude.gen_bounds(),
                target.longitude.gen_bounds(),
                periodic=periodic,
            )
            out = _apply_separable(
                var, target, lat_matrix, lon_matrix,
                weight_floor=_VALID_WEIGHT_FLOOR, parallel=parallel,
            )
            if obs.enabled():
                obs.counter("regrid.cells", int(np.prod(out.shape)))
                _span.set(dst=str(out.shape))
        return out

    return _memoized("conservative", var, target, parallel, compute)
