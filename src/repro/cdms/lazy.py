"""The lazy streaming variable: a :class:`Variable` that owns no array.

A :class:`LazyVariable` presents the full Variable protocol — axes,
attributes, indexing, coordinate subsetting, scalar ranges — while its
payload lives in a chunked v2 ``.cdz`` container.  Indexing reads only
the chunks covering the request (through the variable's bounded-memory
:class:`~repro.streaming.prefetch.Prefetcher`) and returns an ordinary
in-memory :class:`Variable`, byte-identical to what slicing the eagerly
loaded equivalent would produce — the correctness contract the
differential tests pin.

Operations that genuinely need the whole array (arithmetic, global
reductions) still work: the ``_data`` escape hatch materializes the
full variable once, counts ``streaming.materialize.full`` so the leak
is observable, and caches it.  Folds should use :meth:`iter_slabs`
instead, which walks the chunk table within the memory budget.

The :meth:`degraded` context arms the degradation ladder: inside it, a
chunk whose full-resolution read fails (after retries) is substituted
by its verified low-resolution companion instead of raising — the hook
:class:`~repro.dv3d.animation.StreamingAnimator` uses to keep an
animation running over a corrupt chunk.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from repro import obs
from repro.cdms.variable import Variable
from repro.streaming.dataset import StreamingSource
from repro.streaming.format import ChunkMeta, VariableLayout
from repro.util.errors import CDMSError, StreamingError


class LazyVariable(Variable):
    """A Variable whose slabs materialize on demand from a v2 container."""

    def __init__(self, source: StreamingSource, layout: VariableLayout) -> None:
        # deliberately no super().__init__: there is no array to bind.
        self.id = layout.id
        try:
            self._axes = tuple(source.axes[dim] for dim in layout.dimensions)
        except KeyError as exc:
            raise StreamingError(
                f"variable {layout.id!r} references unknown axis {exc.args[0]!r}"
            ) from None
        self.missing_value = float(layout.missing_value)
        self.attributes: Dict[str, object] = dict(layout.attributes)
        self.source = source
        self.layout = layout
        self._materialized: Optional[np.ma.MaskedArray] = None
        self._degraded_depth = 0

    # -- structure (no payload access) ------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.layout.shape

    @property
    def ndim(self) -> int:
        return len(self.layout.shape)

    @property
    def dtype(self) -> np.dtype:
        return self.layout.dtype

    @property
    def size(self) -> int:
        return int(np.prod(self.layout.shape, dtype=np.int64))

    def finite_range(self) -> Optional[Tuple[float, float]]:
        """Scalar range from manifest statistics — no payload reads."""
        return self.layout.finite_range()

    def slab_count(self) -> int:
        return self.layout.n_chunks

    def slab_axis(self) -> int:
        return int(self.layout.chunk_axis)

    def iter_slabs(self) -> Iterator[Variable]:
        axis = self.layout.chunk_axis
        for chunk in self.layout.chunks:
            index = tuple(
                slice(chunk.start, chunk.stop) if dim == axis else slice(None)
                for dim in range(self.ndim)
            )
            yield self[index]

    def prefetch_hint(self, axis_index: int) -> None:
        """Hint that *axis_index* along the chunk axis is wanted next.

        The session-serving speculation hook: a backend predicting an
        animating session's next timestep steers this variable's
        prefetch pipeline toward the chunk holding it (a no-op when
        prefetch is off or the index is out of range — hints are
        advisory, never errors).
        """
        if not self.source.config.prefetch:
            return
        axis_len = self.shape[self.layout.chunk_axis]
        if not 0 <= axis_index < axis_len:
            return
        chunk = self.layout.chunk_of(axis_index)
        self.source.prefetcher(self.id).hint(chunk.index)

    # -- the degradation ladder hook ---------------------------------------

    @contextlib.contextmanager
    def degraded(self) -> Iterator["LazyVariable"]:
        """Within this context, unreadable chunks fall back to low-res."""
        self._degraded_depth += 1
        try:
            yield self
        finally:
            self._degraded_depth -= 1

    # -- chunk delivery -----------------------------------------------------

    def _get_chunk(self, chunk: ChunkMeta) -> np.ndarray:
        try:
            if self.source.config.prefetch:
                return self.source.prefetcher(self.id).get(chunk.index)
            return self.source.reader(self.id).read_chunk(chunk)
        except StreamingError:
            if self._degraded_depth <= 0:
                raise
            if obs.enabled():
                obs.counter("streaming.slabs.degraded", var=self.id)
            return self.source.reader(self.id).read_lowres(chunk)

    # -- indexing -----------------------------------------------------------

    def __getitem__(self, key: Any) -> Variable:
        if not isinstance(key, tuple):
            key = (key,)
        if len(key) > self.ndim:
            raise CDMSError(f"variable {self.id!r}: too many indices {key!r}")
        key = key + (slice(None),) * (self.ndim - len(key))
        norm: list = []
        for k in key:
            if isinstance(k, (int, np.integer)):
                k = slice(int(k), int(k) + 1 or None)
            if not isinstance(k, slice):
                raise CDMSError(
                    f"variable {self.id!r}: only int/slice indexing supported, got {k!r}"
                )
            norm.append(k)

        axis = self.layout.chunk_axis
        selected = list(range(*norm[axis].indices(self.shape[axis])))
        pieces = []
        i = 0
        while i < len(selected):
            chunk = self.layout.chunk_of(selected[i])
            j = i
            while j < len(selected) and chunk.start <= selected[j] < chunk.stop:
                j += 1
            local = np.asarray(
                [s - chunk.start for s in selected[i:j]], dtype=np.intp
            )
            raw = self._get_chunk(chunk)
            taker = tuple(
                local if dim == axis else norm[dim] for dim in range(self.ndim)
            )
            pieces.append(raw[taker])
            i = j
        if pieces:
            raw_out = (
                pieces[0]
                if len(pieces) == 1
                else np.concatenate(pieces, axis=axis)
            )
        else:
            shape = [
                len(range(*k.indices(n))) for k, n in zip(norm, self.shape)
            ]
            raw_out = np.empty(tuple(shape), dtype=self.dtype)
        data = np.ma.masked_values(raw_out, self.missing_value, rtol=1e-6, atol=0.0)
        axes = tuple(a.subaxis_slice(k) for a, k in zip(self._axes, norm))
        return Variable(
            data,
            axes,
            id=self.id,
            missing_value=self.missing_value,
            attributes=dict(self.attributes),
        )

    # -- copying -------------------------------------------------------------

    def clone(self, deep: bool = True) -> "LazyVariable":
        """A new lazy handle onto the same container — no payload reads.

        ``deep`` is accepted for protocol compatibility; the payload is
        immutable on disk, so there is nothing to copy either way.  This
        is what lets the calculator workspace hold (and rename) streamed
        variables without materializing them.
        """
        twin = LazyVariable(self.source, self.layout)
        twin.id = self.id
        twin.attributes = dict(self.attributes)
        twin._materialized = self._materialized
        return twin

    # -- full materialization (the observable escape hatch) -----------------

    @property
    def _data(self) -> np.ma.MaskedArray:
        if self._materialized is None:
            if obs.enabled():
                obs.counter("streaming.materialize.full", var=self.id)
            index = tuple(slice(None) for _ in range(self.ndim))
            self._materialized = LazyVariable.__getitem__(self, index).data
        return self._materialized

    # -- transport ----------------------------------------------------------

    def __reduce__(self) -> Tuple[object, ...]:
        return (
            _rebuild_lazy,
            (str(self.source.path), self.source.config, self.id),
        )


def _rebuild_lazy(path: str, config, var_id: str) -> LazyVariable:
    source = StreamingSource(path, config)
    return LazyVariable(source, source.layout(var_id))
