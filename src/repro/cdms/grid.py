"""Horizontal grids.

CDMS attaches a horizontal grid object to every variable that has both
latitude and longitude axes.  DV3D and the CDAT averaging operators use
the grid for two things this module provides: sphere-exact **area
weights** (for weighted averages, §III.G "weighted averages") and the
grid comparison/compatibility checks regridding needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.cdms.axis import Axis
from repro.util.errors import CDMSError


class RectilinearGrid:
    """A latitude × longitude rectilinear grid.

    Parameters are :class:`~repro.cdms.axis.Axis` instances that must
    designate as latitude and longitude respectively.
    """

    def __init__(self, latitude: Axis, longitude: Axis) -> None:
        if not latitude.is_latitude():
            raise CDMSError(f"axis {latitude.id!r} is not a latitude axis")
        if not longitude.is_longitude():
            raise CDMSError(f"axis {longitude.id!r} is not a longitude axis")
        self.latitude = latitude
        self.longitude = longitude

    def __repr__(self) -> str:
        return f"RectilinearGrid(nlat={len(self.latitude)}, nlon={len(self.longitude)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RectilinearGrid):
            return NotImplemented
        return self.latitude == other.latitude and self.longitude == other.longitude

    def __hash__(self) -> int:
        return hash((self.latitude, self.longitude))

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.latitude), len(self.longitude))

    def area_weights(self) -> np.ndarray:
        """``(nlat, nlon)`` weights proportional to spherical cell area.

        Normalised to sum to 1 over the grid, so a weighted mean is
        simply ``(data * weights).sum()``.
        """
        wlat = self.latitude.area_weights()
        wlon = self.longitude.area_weights()
        weights = np.outer(wlat, wlon)
        return weights / weights.sum()

    def cell_areas(self, radius: float = 6.371e6) -> np.ndarray:
        """Physical cell areas in m² on a sphere of the given radius."""
        lat_bounds = np.radians(self.latitude.gen_bounds())
        lon_bounds = np.radians(self.longitude.gen_bounds())
        band = np.abs(np.sin(lat_bounds[:, 1]) - np.sin(lat_bounds[:, 0]))
        width = np.abs(lon_bounds[:, 1] - lon_bounds[:, 0])
        return radius * radius * np.outer(band, width)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(lat_bounds, lon_bounds)`` each shaped ``(n, 2)``."""
        return self.latitude.gen_bounds(), self.longitude.gen_bounds()

    def is_global(self, tolerance_deg: float = 1.0) -> bool:
        """Whether the grid spans the full sphere (within *tolerance_deg*)."""
        lat_b, lon_b = self.bounds()
        lat_span = abs(lat_b.max() - lat_b.min())
        lon_span = abs(lon_b.max() - lon_b.min())
        return lat_span >= 180.0 - tolerance_deg and lon_span >= 360.0 - tolerance_deg


def uniform_grid(nlat: int, nlon: int) -> RectilinearGrid:
    """A global uniform grid with *nlat* × *nlon* cell centers."""
    from repro.cdms.axis import uniform_latitude, uniform_longitude

    return RectilinearGrid(uniform_latitude(nlat), uniform_longitude(nlon))
