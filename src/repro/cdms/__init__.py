"""Climate Data Management System (CDMS) substrate.

The paper's DV3D workflows "begin with a set of modules encapsulating
CDMS operations for accessing and processing climate data" and rely on
"seamless integration with CDAT's climate data management system
(CDMS)".  The real CDMS (Drach, Dubois & Williams, PCMDI) is a C/Python
NetCDF-backed library; this package is a faithful pure-Python
re-implementation of the parts of its data model that DV3D exercises:

* CF-style coordinate **axes** with units, bounds and calendar-aware
  time coordinates (:mod:`repro.cdms.axis`, :mod:`repro.cdms.calendar`);
* rectilinear horizontal **grids** with area weights
  (:mod:`repro.cdms.grid`);
* masked, metadata-carrying **variables** whose axes follow them through
  slicing and arithmetic (:mod:`repro.cdms.variable`);
* **selectors** for coordinate-space subsetting
  (:mod:`repro.cdms.selectors`);
* **datasets** — named collections of variables persisted in a
  self-contained ``.cdz`` container (:mod:`repro.cdms.dataset`,
  :mod:`repro.cdms.storage`);
* **regridding** between rectilinear grids (:mod:`repro.cdms.regrid`);
* the **slab-source protocol** shared by eager and lazy variables, and
  its consumer helpers (:mod:`repro.cdms.slabs`).
"""

from repro.cdms.axis import Axis, create_axis, latitude_axis, longitude_axis, level_axis, time_axis
from repro.cdms.calendar import Calendar, ComponentTime, RelativeTime
from repro.cdms.grid import RectilinearGrid
from repro.cdms.selectors import Selector
from repro.cdms.variable import Variable
from repro.cdms.dataset import Dataset, open_dataset
from repro.cdms.lazy import LazyVariable
from repro.cdms.regrid import regrid_bilinear, regrid_conservative
from repro.cdms.slabs import (
    display_range,
    fold_finite_max,
    is_streamed,
    iter_aligned_slabs,
    map_slabs,
    materialize,
    padded_range,
    require_finite_range,
    slab_axis,
    slab_ranges,
)

__all__ = [
    "Axis",
    "create_axis",
    "latitude_axis",
    "longitude_axis",
    "level_axis",
    "time_axis",
    "Calendar",
    "ComponentTime",
    "RelativeTime",
    "RectilinearGrid",
    "Selector",
    "Variable",
    "LazyVariable",
    "Dataset",
    "open_dataset",
    "regrid_bilinear",
    "regrid_conservative",
    "display_range",
    "fold_finite_max",
    "is_streamed",
    "iter_aligned_slabs",
    "map_slabs",
    "materialize",
    "padded_range",
    "require_finite_range",
    "slab_axis",
    "slab_ranges",
]
