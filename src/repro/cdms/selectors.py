"""Coordinate-space subsetting (the CDMS ``Selector`` analog).

CDMS lets a scientist write::

    v = ds("tas", latitude=(-30, 30), time=("1979-1-1", "1980-1-1"), level=500)

This module implements that vocabulary.  A :class:`Selector` is an
immutable collection of per-designation criteria; applying it to a
variable maps each criterion onto the matching axis (by designation
first, then by axis id) and produces an index tuple.

Criteria forms accepted per axis:

* ``(low, high)`` — closed coordinate interval (values may be numbers
  or, on time axes, ``"YYYY-MM-DD"`` strings / ComponentTime);
* scalar — nearest single point (the axis is *kept* with length 1;
  use :meth:`Selector.squeeze` semantics at the variable level to drop);
* ``slice`` — raw index slice, passed through untouched.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.cdms.axis import Axis
from repro.util.errors import CDMSError

#: aliases accepted as keyword names for each axis designation
_DESIGNATION_ALIASES = {
    "latitude": "latitude",
    "lat": "latitude",
    "longitude": "longitude",
    "lon": "longitude",
    "level": "level",
    "lev": "level",
    "plev": "level",
    "time": "time",
}


class Selector:
    """An immutable, composable subsetting specification."""

    def __init__(self, **criteria: Any) -> None:
        normalized: Dict[str, Any] = {}
        for key, value in criteria.items():
            canonical = _DESIGNATION_ALIASES.get(key.lower(), key)
            normalized[canonical] = value
        self._criteria = normalized

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._criteria.items()))
        return f"Selector({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Selector):
            return NotImplemented
        return self._criteria == other._criteria

    @property
    def criteria(self) -> Dict[str, Any]:
        return dict(self._criteria)

    def __and__(self, other: "Selector") -> "Selector":
        """Compose two selectors; the right-hand side wins on conflict."""
        merged = dict(self._criteria)
        merged.update(other._criteria)
        result = Selector()
        result._criteria = merged
        return result

    def _criterion_for(self, axis: Axis) -> Any:
        designation = axis.designation()
        if designation in self._criteria:
            return self._criteria[designation]
        if axis.id in self._criteria:
            return self._criteria[axis.id]
        return None

    def index_for_axis(self, axis: Axis) -> slice:
        """The index slice this selector implies for *axis* (or ``slice(None)``)."""
        criterion = self._criterion_for(axis)
        if criterion is None:
            return slice(None)
        if isinstance(criterion, slice):
            return criterion
        if isinstance(criterion, tuple):
            if len(criterion) != 2:
                raise CDMSError(
                    f"selector for axis {axis.id!r}: interval must be (low, high), got {criterion!r}"
                )
            i0, i1 = axis.map_interval(criterion[0], criterion[1])
            return slice(i0, i1)
        # scalar → nearest point, kept as a length-1 axis
        idx = axis.nearest_index(criterion)
        return slice(idx, idx + 1)

    def matched_designations(self, axes: Tuple[Axis, ...]) -> Dict[str, str]:
        """Which criteria matched which axis id (for provenance logging)."""
        result = {}
        for axis in axes:
            if self._criterion_for(axis) is not None:
                designation = axis.designation()
                key = designation if designation in self._criteria else axis.id
                result[key] = axis.id
        return result

    def unmatched(self, axes: Tuple[Axis, ...]) -> Tuple[str, ...]:
        """Criteria names that matched no axis (a user error worth surfacing)."""
        matched = set(self.matched_designations(axes))
        return tuple(sorted(set(self._criteria) - matched))
