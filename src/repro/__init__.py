"""repro — a reproduction of "Exploratory Climate Data Visualization and
Analysis Using DV3D and UVCDAT" (Thomas Maxwell, SC 2012).

The package rebuilds the paper's full system in pure Python:

* :mod:`repro.cdms` — the climate data management layer (axes, grids,
  masked variables, selectors, datasets, regridding);
* :mod:`repro.cdat` — the analysis operation suite (weighted averages,
  climatologies, statistics, conditioned comparisons, ...);
* :mod:`repro.esg` — a simulated Earth System Grid federation;
* :mod:`repro.rendering` — a numpy software-rendering substrate (the
  VTK analog: cameras, transfer functions, marching tetrahedra, volume
  ray casting, streamlines, rasterization);
* :mod:`repro.workflow` / :mod:`repro.provenance` — the VisTrails-style
  workflow engine and change-action version-tree provenance;
* :mod:`repro.dv3d` — the paper's contribution: the Slicer, Volume,
  Isosurface, Hovmöller and Vector-slicer interactive plots plus the
  spreadsheet cell machinery;
* :mod:`repro.spreadsheet` / :mod:`repro.app` — the visualization
  spreadsheet and the UV-CDAT application facade;
* :mod:`repro.hyperwall` — the distributed (server + display clients)
  visualization framework;
* :mod:`repro.serving` — the multi-tenant async serving layer
  (request coalescing, admission control, per-tenant cache quotas);
* :mod:`repro.data` — deterministic, physically-structured synthetic
  climate datasets standing in for NASA model output.

Quick start::

    from repro.app import Application

    app = Application()
    app.new_project("demo")
    cell = app.create_plot(
        "Slicer", "main", (0, 0),
        dataset_source="synthetic_reanalysis",
        variables={"variable": "ta"},
        size={"nlat": 24, "nlon": 36, "nlev": 8, "ntime": 4},
    )
    cell.render(400, 300).save("slicer.ppm")
"""

__version__ = "1.2.0"

__all__ = [
    "cdms",
    "cdat",
    "esg",
    "rendering",
    "workflow",
    "provenance",
    "dv3d",
    "spreadsheet",
    "hyperwall",
    "serving",
    "app",
    "data",
    "util",
]
