"""Analogies: transplanting one branch's refinements onto another.

A signature VisTrails capability implied by the paper's "knowledge
embedded in existing workflows can be reused to simplify the
construction of new workflows": take the actions that turned version A
into version A′ (a colormap treatment, a transfer-function window, an
added overlay) and replay them on an *unrelated* version B, producing
B′ — "apply the same change by analogy".

Actions referencing entities that do not exist at B (a deleted module,
a connection slot already occupied) are skipped and reported, matching
the best-effort semantics of the original feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.provenance.actions import (
    Action,
    AddConnection,
    AddModule,
    DeleteConnection,
    DeleteModule,
    SetParameter,
)
from repro.provenance.vistrail import Vistrail
from repro.util.errors import ProvenanceError


@dataclass
class AnalogyReport:
    """What happened when the analogy was applied."""

    new_version: int
    applied: List[str] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)  # (action, reason)

    @property
    def fully_applied(self) -> bool:
        return not self.skipped


def branch_actions(vistrail: Vistrail, source: int, target: int) -> List[Action]:
    """The actions that turn version *source* into its descendant *target*.

    Raises when *source* is not an ancestor of *target* (an analogy
    needs a coherent delta, not a diff across branches).
    """
    path = vistrail.tree.path_to_root(target)
    if source not in path:
        raise ProvenanceError(
            f"version {source} is not an ancestor of {target}; "
            "use diff_versions for cross-branch comparison"
        )
    actions: List[Action] = []
    for version in reversed(path[: path.index(source)]):
        action = vistrail.tree.node(version).action
        if action is not None:
            actions.append(action)
    return actions


def _remap_module_id(action: Action, id_map: dict) -> Action:
    """Rewrite module ids through the analogy's id translation."""
    if isinstance(action, AddModule):
        return AddModule(id_map.get(action.module_id, action.module_id),
                         action.name, dict(action.parameters))
    if isinstance(action, DeleteModule):
        return DeleteModule(id_map.get(action.module_id, action.module_id))
    if isinstance(action, SetParameter):
        return SetParameter(id_map.get(action.module_id, action.module_id),
                            action.parameter, action.value)
    if isinstance(action, AddConnection):
        return AddConnection(
            action.connection_id,
            id_map.get(action.source_id, action.source_id), action.source_port,
            id_map.get(action.target_id, action.target_id), action.target_port,
        )
    return action


def apply_analogy(
    vistrail: Vistrail,
    source: int,
    target: int,
    destination: int,
) -> AnalogyReport:
    """Replay the source→target delta on *destination*.

    Module ids are translated *by module type*: a ``SetParameter`` on
    the delta's Slicer module applies to the destination's Slicer
    module when exactly one exists.  New modules/connections receive
    fresh ids.  The vistrail is left checked out at the new version.
    """
    delta = branch_actions(vistrail, source, target)
    source_pipeline = vistrail.tree.materialize(source, vistrail.registry)
    vistrail.checkout(destination)

    # build the type-based id translation for modules present at `source`
    id_map: dict = {}
    for module_id, spec in source_pipeline.modules.items():
        candidates = vistrail.pipeline.modules_of_type(spec.name)
        if len(candidates) == 1:
            id_map[module_id] = candidates[0]

    report = AnalogyReport(new_version=destination)
    for action in delta:
        remapped = _remap_module_id(action, id_map)
        if isinstance(remapped, AddModule):
            # fresh module id on the destination side
            new_id = vistrail.add_module(remapped.name, dict(remapped.parameters))
            id_map[action.module_id] = new_id  # type: ignore[attr-defined]
            report.applied.append(f"add module {remapped.name} (as id {new_id})")
            continue
        if isinstance(remapped, AddConnection):
            try:
                vistrail.add_connection(
                    remapped.source_id, remapped.source_port,
                    remapped.target_id, remapped.target_port,
                )
                report.applied.append(remapped.describe())
            except Exception as exc:  # noqa: BLE001 - best-effort semantics
                report.skipped.append((remapped.describe(), str(exc)))
            continue
        if isinstance(remapped, SetParameter):
            try:
                vistrail.set_parameter(
                    remapped.module_id, remapped.parameter, remapped.value
                )
                report.applied.append(remapped.describe())
            except Exception as exc:  # noqa: BLE001
                report.skipped.append((remapped.describe(), str(exc)))
            continue
        if isinstance(remapped, (DeleteModule, DeleteConnection)):
            try:
                if isinstance(remapped, DeleteModule):
                    vistrail.delete_module(remapped.module_id)
                else:
                    vistrail.delete_connection(remapped.connection_id)
                report.applied.append(remapped.describe())
            except Exception as exc:  # noqa: BLE001
                report.skipped.append((remapped.describe(), str(exc)))
            continue
        report.skipped.append((remapped.describe(), "unsupported action kind"))
    report.new_version = vistrail.current_version
    return report
