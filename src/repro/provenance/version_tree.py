"""The version tree.

Every workflow edit creates a *new version* — a child node holding the
action that distinguishes it from its parent.  Nothing is ever
destroyed: "users can easily back up to earlier stages of the
exploration and start a new branch of investigation without losing the
previous results" is simply adding a child to a non-leaf node.

Version 0 is the root (the empty pipeline).  Materializing a version
replays its root-path actions against a fresh pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.provenance.actions import Action, action_from_dict
from repro.workflow.pipeline import Pipeline
from repro.workflow.registry import ModuleRegistry
from repro.util.errors import ProvenanceError

ROOT_VERSION = 0


@dataclass
class VersionNode:
    """One node: the action that produced it plus tree bookkeeping."""

    version: int
    parent: Optional[int]
    action: Optional[Action]  # None only for the root
    tag: str = ""
    annotation: str = ""


class VersionTree:
    """The append-only tree of workflow versions."""

    def __init__(self) -> None:
        self._nodes: Dict[int, VersionNode] = {
            ROOT_VERSION: VersionNode(ROOT_VERSION, None, None, tag="root")
        }
        self._children: Dict[int, List[int]] = {ROOT_VERSION: []}
        self._next_version = 1

    def __contains__(self, version: int) -> bool:
        return version in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, version: int) -> VersionNode:
        try:
            return self._nodes[version]
        except KeyError:
            raise ProvenanceError(f"no version {version}") from None

    def children(self, version: int) -> List[int]:
        self.node(version)
        return list(self._children.get(version, []))

    def leaves(self) -> List[int]:
        return sorted(v for v in self._nodes if not self._children.get(v))

    def branch_points(self) -> List[int]:
        """Versions with more than one child (developmental branches)."""
        return sorted(v for v, kids in self._children.items() if len(kids) > 1)

    # -- growth -------------------------------------------------------------

    def add_action(self, parent: int, action: Action, annotation: str = "") -> int:
        """Append *action* as a child of *parent*; returns the new version."""
        self.node(parent)
        version = self._next_version
        self._next_version += 1
        self._nodes[version] = VersionNode(version, parent, action, annotation=annotation)
        self._children.setdefault(parent, []).append(version)
        self._children[version] = []
        return version

    def tag(self, version: int, name: str) -> None:
        """Name a version (names are unique; re-tagging moves the name)."""
        self.node(version)
        for node in self._nodes.values():
            if node.tag == name and node.version != version:
                node.tag = ""
        self._nodes[version].tag = name

    def annotate(self, version: int, text: str) -> None:
        """Attach free-form notes to a version (searchable, persisted)."""
        self.node(version).annotation = str(text)

    def find_annotated(self, needle: str = "") -> List[int]:
        """Versions whose annotation contains *needle* (all annotated if empty)."""
        hits = []
        for version in sorted(self._nodes):
            annotation = self._nodes[version].annotation
            if annotation and (not needle or needle.lower() in annotation.lower()):
                hits.append(version)
        return hits

    def version_by_tag(self, name: str) -> int:
        for node in self._nodes.values():
            if node.tag == name:
                return node.version
        raise ProvenanceError(f"no version tagged {name!r}")

    # -- paths & ancestry ------------------------------------------------------

    def path_to_root(self, version: int) -> List[int]:
        """Versions from *version* up to (and including) the root."""
        path = []
        current: Optional[int] = version
        while current is not None:
            path.append(current)
            current = self.node(current).parent
        return path

    def actions_to(self, version: int) -> List[Action]:
        """Actions to replay, root-first, to materialize *version*."""
        path = list(reversed(self.path_to_root(version)))
        return [self.node(v).action for v in path if self.node(v).action is not None]  # type: ignore[misc]

    def common_ancestor(self, a: int, b: int) -> int:
        ancestors_a = set(self.path_to_root(a))
        current = b
        while current not in ancestors_a:
            parent = self.node(current).parent
            if parent is None:
                return ROOT_VERSION
            current = parent
        return current

    def materialize(self, version: int, registry: Optional[ModuleRegistry] = None) -> Pipeline:
        """Replay the root path of *version* into a fresh pipeline."""
        pipeline = Pipeline(registry)
        for action in self.actions_to(version):
            try:
                action.apply(pipeline)
            except Exception as exc:
                raise ProvenanceError(
                    f"replaying version {version}: action {action.describe()!r} failed: {exc}"
                ) from exc
        return pipeline

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "next_version": self._next_version,
            "nodes": [
                {
                    "version": n.version,
                    "parent": n.parent,
                    "action": None if n.action is None else n.action.to_dict(),
                    "tag": n.tag,
                    "annotation": n.annotation,
                }
                for n in sorted(self._nodes.values(), key=lambda n: n.version)
            ],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "VersionTree":
        tree = VersionTree()
        nodes = data.get("nodes", [])
        for raw in nodes:  # type: ignore[union-attr]
            version = int(raw["version"])  # type: ignore[index]
            if version == ROOT_VERSION:
                tree._nodes[ROOT_VERSION].tag = str(raw.get("tag", "root"))  # type: ignore[union-attr]
                continue
            parent = raw["parent"]  # type: ignore[index]
            action = action_from_dict(raw["action"])  # type: ignore[index, arg-type]
            node = VersionNode(
                version, int(parent), action,
                tag=str(raw.get("tag", "")),  # type: ignore[union-attr]
                annotation=str(raw.get("annotation", "")),
            )
            tree._nodes[version] = node
            tree._children.setdefault(int(parent), []).append(version)
            tree._children.setdefault(version, [])
        tree._next_version = int(data.get("next_version", max(tree._nodes) + 1))  # type: ignore[arg-type]
        return tree
