"""Execution provenance.

Besides the *construction* history (the version tree), VisTrails keeps
an execution log: which version ran, when, how long each module took,
and with what outcome — "a record ... of the datasets and parameters
used in each workflow execution".  The DV3D cell and the hyperwall
server both append here after every execution.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.workflow.executor import ExecutionResult
from repro.util.errors import ProvenanceError

PathLike = Union[str, Path]


@dataclass
class LogEntry:
    """One workflow execution."""

    vistrail_name: str
    version: int
    started_at: float
    wall_time: float
    module_runs: List[Dict[str, Any]]
    cache_hits: int = 0
    cache_misses: int = 0
    annotations: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(run["status"] in ("ok", "cached") for run in self.module_runs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "vistrail_name": self.vistrail_name,
            "version": self.version,
            "started_at": self.started_at,
            "wall_time": self.wall_time,
            "module_runs": self.module_runs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "annotations": self.annotations,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "LogEntry":
        try:
            return LogEntry(
                vistrail_name=str(data["vistrail_name"]),
                version=int(data["version"]),
                started_at=float(data["started_at"]),
                wall_time=float(data["wall_time"]),
                module_runs=list(data["module_runs"]),
                cache_hits=int(data.get("cache_hits", 0)),
                cache_misses=int(data.get("cache_misses", 0)),
                annotations=dict(data.get("annotations", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProvenanceError(f"malformed log entry: {data!r}") from exc


class ExecutionLog:
    """Append-only record of executions for one session/project."""

    def __init__(self) -> None:
        self.entries: List[LogEntry] = []

    def __len__(self) -> int:
        return len(self.entries)

    def record(
        self,
        vistrail_name: str,
        version: int,
        result: ExecutionResult,
        **annotations: Any,
    ) -> LogEntry:
        entry = LogEntry(
            vistrail_name=vistrail_name,
            version=version,
            started_at=time.time(),
            wall_time=result.wall_time,
            module_runs=[
                {
                    "module_id": run.module_id,
                    "module_name": run.module_name,
                    "status": run.status,
                    "duration": run.duration,
                    "error": run.error,
                }
                for run in result.runs
            ],
            cache_hits=result.cache_hits,
            cache_misses=result.cache_misses,
            annotations=dict(annotations),
        )
        self.entries.append(entry)
        return entry

    def for_version(self, vistrail_name: str, version: int) -> List[LogEntry]:
        return [
            e for e in self.entries
            if e.vistrail_name == vistrail_name and e.version == version
        ]

    def total_module_time(self, module_name: Optional[str] = None) -> float:
        total = 0.0
        for entry in self.entries:
            for run in entry.module_runs:
                if module_name is None or run["module_name"] == module_name:
                    total += float(run["duration"])
        return total

    # -- persistence --------------------------------------------------------

    def save(self, path: PathLike) -> None:
        Path(path).write_text(
            json.dumps([e.to_dict() for e in self.entries], indent=1)
        )

    @staticmethod
    def load(path: PathLike) -> "ExecutionLog":
        log = ExecutionLog()
        data = json.loads(Path(path).read_text())
        log.entries = [LogEntry.from_dict(raw) for raw in data]
        return log
