"""Change actions: the atomic, replayable workflow edits.

Every mutation a user makes through any interface (workflow builder,
plot GUI, spreadsheet drag, key command) is reified as one of these
action objects before it touches a pipeline.  The version tree stores
actions, not pipelines — a version's pipeline is reproduced by
replaying its action path from the root, which is precisely what makes
"every step of the discovery process" reproducible.

All payloads must be JSON-serializable (enforced at construction) so
vistrails persist losslessly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

from repro.workflow.pipeline import Pipeline
from repro.util.errors import ProvenanceError


def _check_json(value: Any, context: str) -> Any:
    try:
        json.dumps(value)
    except (TypeError, ValueError) as exc:
        raise ProvenanceError(f"{context}: value not JSON-serializable: {value!r}") from exc
    return value


@dataclass(frozen=True)
class Action:
    """Base class; subclasses implement :meth:`apply` and :meth:`describe`."""

    def apply(self, pipeline: Pipeline) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def to_dict(self) -> Dict[str, Any]:
        data = {"kind": type(self).__name__}
        data.update(self.__dict__)
        return data


@dataclass(frozen=True)
class AddModule(Action):
    """Add a module (with explicit id, so replay is deterministic)."""

    module_id: int
    name: str
    parameters: Dict[str, Any]

    def __post_init__(self) -> None:
        _check_json(self.parameters, f"AddModule({self.name})")

    def apply(self, pipeline: Pipeline) -> None:
        pipeline.add_module(self.name, dict(self.parameters), module_id=self.module_id)

    def describe(self) -> str:
        return f"add module {self.name} (id {self.module_id})"


@dataclass(frozen=True)
class DeleteModule(Action):
    module_id: int

    def apply(self, pipeline: Pipeline) -> None:
        pipeline.delete_module(self.module_id)

    def describe(self) -> str:
        return f"delete module id {self.module_id}"


@dataclass(frozen=True)
class AddConnection(Action):
    connection_id: int
    source_id: int
    source_port: str
    target_id: int
    target_port: str

    def apply(self, pipeline: Pipeline) -> None:
        pipeline.add_connection(
            self.source_id, self.source_port, self.target_id, self.target_port,
            connection_id=self.connection_id,
        )

    def describe(self) -> str:
        return (
            f"connect {self.source_id}.{self.source_port} → "
            f"{self.target_id}.{self.target_port}"
        )


@dataclass(frozen=True)
class DeleteConnection(Action):
    connection_id: int

    def apply(self, pipeline: Pipeline) -> None:
        pipeline.delete_connection(self.connection_id)

    def describe(self) -> str:
        return f"delete connection id {self.connection_id}"


@dataclass(frozen=True)
class SetParameter(Action):
    """Set one module parameter — the action every interactive
    configuration gesture (leveling drags, colormap keys, slice moves)
    ultimately records ("All configuration operations are saved as
    Vistrails provenance")."""

    module_id: int
    parameter: str
    value: Any

    def __post_init__(self) -> None:
        _check_json(self.value, f"SetParameter({self.parameter})")

    def apply(self, pipeline: Pipeline) -> None:
        pipeline.set_parameter(self.module_id, self.parameter, self.value)

    def describe(self) -> str:
        return f"set {self.module_id}.{self.parameter} = {self.value!r}"


_ACTION_KINDS = {
    cls.__name__: cls
    for cls in (AddModule, DeleteModule, AddConnection, DeleteConnection, SetParameter)
}


def action_from_dict(data: Dict[str, Any]) -> Action:
    """Inverse of :meth:`Action.to_dict`."""
    kind = data.get("kind")
    if kind not in _ACTION_KINDS:
        raise ProvenanceError(f"unknown action kind {kind!r}")
    payload = {k: v for k, v in data.items() if k != "kind"}
    try:
        return _ACTION_KINDS[kind](**payload)  # type: ignore[arg-type]
    except TypeError as exc:
        raise ProvenanceError(f"malformed {kind} action: {data!r}") from exc
