"""The vistrail controller: a version tree plus a working position.

This is the object a UV-CDAT session holds per workflow.  It exposes
the same mutation verbs as :class:`~repro.workflow.pipeline.Pipeline`,
but each call (a) records the corresponding change action in the
version tree and (b) advances the current version — so provenance
capture is *transparent*, exactly as the paper claims ("the workflow
framework can also transparently automate provenance collection").

Navigation: ``checkout`` moves to any version (back up / switch
branches); further edits branch from there without losing anything.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.provenance.actions import (
    Action,
    AddConnection,
    AddModule,
    DeleteConnection,
    DeleteModule,
    SetParameter,
)
from repro.provenance.version_tree import ROOT_VERSION, VersionTree
from repro.workflow.pipeline import Pipeline
from repro.workflow.registry import ModuleRegistry
from repro.util.errors import ProvenanceError

PathLike = Union[str, Path]


class Vistrail:
    """A provenance-tracked workflow."""

    def __init__(self, name: str = "untitled", registry: Optional[ModuleRegistry] = None) -> None:
        from repro.workflow.registry import global_registry

        self.name = name
        self.registry = registry or global_registry()
        self.tree = VersionTree()
        self.current_version = ROOT_VERSION
        self._pipeline = Pipeline(self.registry)
        # id generators continue across versions so replay stays collision-free
        self._next_module_id = 0
        self._next_connection_id = 0

    def __repr__(self) -> str:
        return (
            f"Vistrail(name={self.name!r}, versions={len(self.tree)}, "
            f"current={self.current_version})"
        )

    # -- current pipeline ---------------------------------------------------

    @property
    def pipeline(self) -> Pipeline:
        """The pipeline at the current version (do not mutate directly)."""
        return self._pipeline

    def _record(self, action: Action, annotation: str = "") -> int:
        """Apply an action to the working pipeline and record it."""
        action.apply(self._pipeline)
        self.current_version = self.tree.add_action(
            self.current_version, action, annotation=annotation
        )
        return self.current_version

    # -- mutation verbs (each records one action) ------------------------------

    def add_module(self, name: str, parameters: Optional[Dict[str, Any]] = None) -> int:
        """Add a module; returns its module id (not the version)."""
        qualified = self.registry.qualified_name(name)
        module_id = self._next_module_id
        self._next_module_id += 1
        self._record(AddModule(module_id, qualified, dict(parameters or {})))
        return module_id

    def delete_module(self, module_id: int) -> int:
        """Delete a module.  Records explicit connection deletions first
        so replay never depends on implicit cascade order."""
        for conn in sorted(
            list(self._pipeline.incoming(module_id)) + list(self._pipeline.outgoing(module_id)),
            key=lambda c: c.id,
        ):
            self._record(DeleteConnection(conn.id))
        return self._record(DeleteModule(module_id))

    def add_connection(self, source_id: int, source_port: str, target_id: int, target_port: str) -> int:
        connection_id = self._next_connection_id
        self._next_connection_id += 1
        self._record(
            AddConnection(connection_id, source_id, source_port, target_id, target_port)
        )
        return connection_id

    def delete_connection(self, connection_id: int) -> int:
        return self._record(DeleteConnection(connection_id))

    def set_parameter(self, module_id: int, name: str, value: Any) -> int:
        return self._record(SetParameter(module_id, name, value))

    # -- navigation --------------------------------------------------------------

    def checkout(self, version: int) -> Pipeline:
        """Move the working position to *version* (back up / switch branch)."""
        self._pipeline = self.tree.materialize(version, self.registry)
        self.current_version = version
        # keep id generation above everything ever used anywhere in the tree
        self._resync_id_counters()
        return self._pipeline

    def checkout_tag(self, tag: str) -> Pipeline:
        return self.checkout(self.tree.version_by_tag(tag))

    def _resync_id_counters(self) -> None:
        max_mod, max_conn = -1, -1
        for version in range(len(self.tree)):
            if version not in self.tree:
                continue
            action = self.tree.node(version).action
            if isinstance(action, AddModule):
                max_mod = max(max_mod, action.module_id)
            elif isinstance(action, AddConnection):
                max_conn = max(max_conn, action.connection_id)
        self._next_module_id = max(self._next_module_id, max_mod + 1)
        self._next_connection_id = max(self._next_connection_id, max_conn + 1)

    def tag(self, name: str, version: Optional[int] = None) -> None:
        self.tree.tag(self.current_version if version is None else version, name)

    def branches_from_current(self) -> List[int]:
        return self.tree.children(self.current_version)

    # -- persistence ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "current_version": self.current_version,
            "tree": self.tree.to_dict(),
        }

    def save(self, path: PathLike) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=1))

    @staticmethod
    def from_dict(data: Dict[str, Any], registry: Optional[ModuleRegistry] = None) -> "Vistrail":
        vt = Vistrail(str(data.get("name", "untitled")), registry)
        vt.tree = VersionTree.from_dict(data["tree"])
        version = int(data.get("current_version", ROOT_VERSION))
        vt.checkout(version)
        return vt

    @staticmethod
    def load(path: PathLike, registry: Optional[ModuleRegistry] = None) -> "Vistrail":
        raw = Path(path).read_text()
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ProvenanceError(f"corrupt vistrail file {path}: {exc}") from exc
        return Vistrail.from_dict(data, registry)
