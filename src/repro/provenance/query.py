"""Provenance queries and version diffs.

"The provenance trail allows users to query, interact with, and
understand the history of an analysis process ... and compare analysis
products as well as their corresponding workflows."  These functions
answer the standard questions: how did this version come to be
(:func:`version_history`), what distinguishes two exploration branches
(:func:`diff_versions`), and which versions involve a given module or
tag (:func:`find_versions_by_module`, :func:`find_versions_by_tag`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.provenance.actions import AddModule
from repro.provenance.version_tree import VersionTree
from repro.provenance.vistrail import Vistrail


def version_history(vistrail: Vistrail, version: int) -> List[str]:
    """Human-readable descriptions of every action leading to *version*."""
    return [action.describe() for action in vistrail.tree.actions_to(version)]


def find_versions_by_tag(vistrail: Vistrail) -> Dict[str, int]:
    """All tagged versions as ``tag → version``."""
    result: Dict[str, int] = {}
    for version in range(len(vistrail.tree) + 1):
        if version in vistrail.tree:
            tag = vistrail.tree.node(version).tag
            if tag:
                result[tag] = version
    return result


def find_versions_by_module(vistrail: Vistrail, module_name: str) -> List[int]:
    """Versions whose *introducing action* adds a module of this type.

    (Versions downstream of those also contain the module; this finds
    where each instance entered the history.)
    """
    qualified = vistrail.registry.qualified_name(module_name)
    hits = []
    for version in range(len(vistrail.tree) + 1):
        if version not in vistrail.tree:
            continue
        action = vistrail.tree.node(version).action
        if isinstance(action, AddModule) and action.name == qualified:
            hits.append(version)
    return hits


def diff_versions(tree: VersionTree, version_a: int, version_b: int) -> Dict[str, List[str]]:
    """Compare two versions via their common ancestor.

    Returns ``{"common_ancestor": [...], "only_a": [...], "only_b": [...]}``
    where the branch lists hold action descriptions applied on each side
    after the fork — the "compare ... their corresponding workflows" view.
    """
    ancestor = tree.common_ancestor(version_a, version_b)

    def branch_actions(version: int) -> List[str]:
        path = tree.path_to_root(version)
        out: List[str] = []
        for v in path:
            if v == ancestor:
                break
            action = tree.node(v).action
            if action is not None:
                out.append(action.describe())
        return list(reversed(out))

    return {
        "common_ancestor": [f"version {ancestor}"],
        "only_a": branch_actions(version_a),
        "only_b": branch_actions(version_b),
    }
