"""Provenance subsystem (the VisTrails provenance architecture).

The paper (§II.B): "A comprehensive provenance infrastructure records
detailed history information about the steps followed ... maintains a
record of every step of the workflow development and configuration
process ... Users can easily back up to earlier stages of the
exploration and start a new branch of investigation without losing the
previous results."

The implementation follows the VisTrails change-action model:

* :mod:`repro.provenance.actions` — the atomic workflow edits
  (add/delete module, add/delete connection, set parameter), each
  replayable against a pipeline;
* :mod:`repro.provenance.version_tree` — the tree of versions, every
  node one action away from its parent; any version's pipeline is
  materialized by replaying its root path;
* :mod:`repro.provenance.vistrail` — the controller binding a version
  tree to a current-version pointer, with tagging, branching and
  JSON persistence;
* :mod:`repro.provenance.log` — execution provenance (which version
  ran, per-module timings, results annotations);
* :mod:`repro.provenance.query` — history queries and version diffs.
"""

from repro.provenance.actions import (
    Action,
    AddConnection,
    AddModule,
    DeleteConnection,
    DeleteModule,
    SetParameter,
    action_from_dict,
)
from repro.provenance.version_tree import VersionTree
from repro.provenance.vistrail import Vistrail
from repro.provenance.log import ExecutionLog, LogEntry
from repro.provenance.query import diff_versions, find_versions_by_tag, version_history

__all__ = [
    "Action",
    "AddModule",
    "DeleteModule",
    "AddConnection",
    "DeleteConnection",
    "SetParameter",
    "action_from_dict",
    "VersionTree",
    "Vistrail",
    "ExecutionLog",
    "LogEntry",
    "diff_versions",
    "find_versions_by_tag",
    "version_history",
]
