"""The configurable base map.

"The DV3D cell module includes a configurable base map" — continent
outlines drawn under the data volume for geographic orientation.  With
no shapefile data available offline, this module carries a compact
hand-digitized coastline: coarse polygon outlines of the major
landmasses (sufficient at global-visualization scale, where the paper's
screenshots show similarly coarse reference maps).  Coordinates are
(longitude °E in [0, 360), latitude °N).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.rendering.geometry import PolyData

#: very coarse coastline polygons: (name, [(lon, lat), ...])
_COASTLINES: List[Tuple[str, List[Tuple[float, float]]]] = [
    (
        "north_america",
        [(192, 58), (203, 71), (219, 70), (232, 69), (246, 70), (262, 73),
         (275, 68), (282, 62), (295, 60), (305, 50), (294, 45), (284, 40),
         (279, 34), (278, 26), (262, 18), (255, 20), (242, 32), (235, 40),
         (236, 48), (224, 55), (210, 58), (200, 55), (192, 58)],
    ),
    (
        "south_america",
        [(288, 10), (299, 6), (312, 0), (325, -5), (321, -15), (314, -24),
         (306, -34), (297, -46), (289, -52), (286, -42), (289, -30),
         (282, -18), (279, -5), (283, 6), (288, 10)],
    ),
    (
        "africa",
        [(350, 34), (10, 36), (20, 32), (32, 30), (43, 11), (51, 11),
         (40, -3), (35, -20), (28, -33), (18, -34), (12, -18), (9, -1),
         (351, 5), (343, 12), (344, 22), (350, 34)],
    ),
    (
        "eurasia",
        [(355, 50), (5, 58), (12, 55), (28, 60), (40, 67), (60, 69),
         (90, 74), (120, 73), (150, 70), (170, 66), (178, 64), (160, 60),
         (142, 54), (135, 43), (122, 38), (110, 21), (100, 9), (104, 2),
         (95, 15), (88, 22), (77, 8), (72, 20), (60, 25), (57, 27),
         (48, 30), (35, 36), (27, 36), (23, 38), (10, 44), (355, 43),
         (350, 46), (355, 50)],
    ),
    (
        "australia",
        [(114, -22), (122, -18), (131, -12), (142, -11), (146, -19),
         (153, -27), (150, -37), (140, -38), (129, -32), (115, -34),
         (114, -22)],
    ),
    (
        "antarctica",
        [(0, -70), (40, -68), (80, -67), (120, -67), (160, -71),
         (200, -76), (240, -74), (280, -72), (320, -70), (359, -70)],
    ),
    (
        "greenland",
        [(315, 60), (322, 70), (340, 81), (348, 70), (336, 65), (315, 60)],
    ),
]


def coastline_segments(
    lon_range: Tuple[float, float] = (0.0, 360.0),
    lat_range: Tuple[float, float] = (-90.0, 90.0),
) -> List[np.ndarray]:
    """Coastline polylines clipped to a lon/lat window.

    Each returned array is ``(n, 2)`` of (lon, lat).  Polylines are
    split where they leave the window, so regional plots only receive
    the segments inside their domain.
    """
    lon_lo, lon_hi = lon_range
    lat_lo, lat_hi = lat_range
    out: List[np.ndarray] = []
    for _name, ring in _COASTLINES:
        pts = np.asarray(ring, dtype=np.float64)
        pts[:, 0] = np.mod(pts[:, 0], 360.0)
        inside = (
            (pts[:, 0] >= lon_lo) & (pts[:, 0] <= lon_hi)
            & (pts[:, 1] >= lat_lo) & (pts[:, 1] <= lat_hi)
        )
        run_start = None
        for i, ok in enumerate(inside):
            if ok and run_start is None:
                run_start = i
            elif not ok and run_start is not None:
                if i - run_start >= 2:
                    out.append(pts[run_start:i].copy())
                run_start = None
        if run_start is not None and len(pts) - run_start >= 2:
            out.append(pts[run_start:].copy())
    # drop spuriously long jumps (polygon edges crossing the window)
    cleaned: List[np.ndarray] = []
    for seg in out:
        jumps = np.abs(np.diff(seg[:, 0]))
        if (jumps > 180.0).any():
            cut = int(np.argmax(jumps > 180.0)) + 1
            if cut >= 2:
                cleaned.append(seg[:cut])
            if len(seg) - cut >= 2:
                cleaned.append(seg[cut:])
        else:
            cleaned.append(seg)
    return cleaned


def basemap_polydata(
    bounds: Tuple[float, float, float, float, float, float],
    z_offset_fraction: float = 0.01,
) -> PolyData:
    """Coastlines as PolyData laid on the bottom of a volume's bounds.

    *bounds* is the volume's ``(xmin, xmax, ymin, ymax, zmin, zmax)``
    where x = longitude and y = latitude (the translation convention).
    """
    segments = coastline_segments((bounds[0], bounds[1]), (bounds[2], bounds[3]))
    if not segments:
        return PolyData(np.zeros((0, 3)))
    z = bounds[4] - z_offset_fraction * max(bounds[5] - bounds[4], 1e-6)
    points = []
    lines = []
    offset = 0
    for seg in segments:
        n = len(seg)
        xyz = np.column_stack([seg[:, 0], seg[:, 1], np.full(n, z)])
        points.append(xyz)
        lines.append(np.arange(n) + offset)
        offset += n
    return PolyData(np.concatenate(points), lines=lines)
