"""The Slicer plot.

"The Slicer plot provides a set of slice planes that can be
interactively dragged over the dataset.  A slice through the data
volume at the plane's location is displayed as a pseudocolor image on
the plane.  A slice through a second data volume can also be overlaid
as a contour map over the first.  This tool allows scientists to very
quickly and easily browse the 3D structure of the dataset, compare
variables in 3D, and probe data values."

Implementation: each enabled plane (x/y/z) is a Gouraud-colored
triangle mesh built from the interpolated slice values; the optional
second variable contributes marching-squares contour polylines lifted
onto the same plane.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cdms.variable import Variable
from repro.dv3d.plot import Plot3D
from repro.dv3d.translation import add_variable_to_volume
from repro.rendering.contour2d import contour_levels, marching_squares
from repro.rendering.geometry import PolyData, box_outline
from repro.rendering.image_data import ImageData
from repro.rendering.scene import Actor, Scene
from repro.util.errors import DV3DError

_AXIS_NAMES = {"x": 0, "y": 1, "z": 2}


class SlicerPlot(Plot3D):
    """Draggable orthogonal slice planes with pseudocolor + contours."""

    plot_type = "slicer"

    def __init__(
        self,
        variable: Variable,
        overlay_variable: Optional[Variable] = None,
        enabled_planes: Tuple[str, ...] = ("x", "y", "z"),
        contour_count: int = 8,
        **kwargs: Any,
    ) -> None:
        super().__init__(variable, **kwargs)
        for plane in enabled_planes:
            if plane not in _AXIS_NAMES:
                raise DV3DError(f"unknown slice plane {plane!r} (use x/y/z)")
        self.overlay_variable = overlay_variable
        self.enabled_planes: Tuple[str, ...] = tuple(enabled_planes)
        self.contour_count = int(contour_count)
        # positions are fractions [0, 1] of each axis span
        self.plane_positions: Dict[str, float] = {"x": 0.5, "y": 0.5, "z": 0.25}

    # -- data -------------------------------------------------------------

    def _build_volume(self) -> ImageData:
        volume = super()._build_volume()
        if self.overlay_variable is not None:
            add_variable_to_volume(volume, self.overlay_variable, self.time_index)
        return volume

    def plane_world_coordinate(self, plane: str) -> float:
        axis = _AXIS_NAMES[plane]
        bounds = self.volume.bounds()
        lo, hi = bounds[2 * axis], bounds[2 * axis + 1]
        return lo + self.plane_positions[plane] * (hi - lo)

    # -- interactive ops ------------------------------------------------------

    def drag_slice(self, plane: str, delta: float) -> float:
        """Drag a plane by *delta* (fraction of its axis span).

        This is the paper's headline slicer interaction; returns the
        new fractional position.
        """
        if plane not in _AXIS_NAMES:
            raise DV3DError(f"unknown slice plane {plane!r}")
        pos = float(np.clip(self.plane_positions[plane] + delta, 0.0, 1.0))
        self.plane_positions[plane] = pos
        return pos

    def toggle_plane(self, plane: str) -> bool:
        """Enable/disable a plane; returns the new enabled state."""
        if plane not in _AXIS_NAMES:
            raise DV3DError(f"unknown slice plane {plane!r}")
        if plane in self.enabled_planes:
            self.enabled_planes = tuple(p for p in self.enabled_planes if p != plane)
            return False
        self.enabled_planes = tuple(list(self.enabled_planes) + [plane])
        return True

    def probe(self, plane: str, u_frac: float, v_frac: float) -> Dict[str, float]:
        """Probe the data value at fractional coordinates on a plane."""
        axis = _AXIS_NAMES[plane]
        bounds = self.volume.bounds()
        other = [a for a in range(3) if a != axis]
        point = np.empty(3)
        point[axis] = self.plane_world_coordinate(plane)
        for frac, oax in zip((u_frac, v_frac), other):
            lo, hi = bounds[2 * oax], bounds[2 * oax + 1]
            point[oax] = lo + float(np.clip(frac, 0.0, 1.0)) * (hi - lo)
        return self.pick(point)

    # -- geometry construction ---------------------------------------------------

    def _slice_mesh(self, plane: str) -> PolyData:
        """Pseudocolor mesh of one slice plane."""
        axis = _AXIS_NAMES[plane]
        world = self.plane_world_coordinate(plane)
        values, u_coords, v_coords = self.volume.extract_slice(
            axis, world, name=self.variable.id
        )
        nu, nv = values.shape
        other = [a for a in range(3) if a != axis]
        gu, gv = np.meshgrid(u_coords, v_coords, indexing="ij")
        pts = np.empty((nu * nv, 3))
        pts[:, axis] = world
        pts[:, other[0]] = gu.reshape(-1)
        pts[:, other[1]] = gv.reshape(-1)
        ii, jj = np.meshgrid(np.arange(nu - 1), np.arange(nv - 1), indexing="ij")
        base = (ii * nv + jj).reshape(-1)
        tri_a = np.stack([base, base + nv, base + 1], axis=1)
        tri_b = np.stack([base + nv, base + nv + 1, base + 1], axis=1)
        colors = self.colormap.map_scalars(
            values.reshape(-1), *self.scalar_range
        )
        return PolyData(
            pts,
            np.concatenate([tri_a, tri_b]),
            scalars=np.nan_to_num(values.reshape(-1), nan=0.0),
            colors=colors.astype(np.float32),
        )

    def _contour_overlay(self, plane: str) -> Optional[PolyData]:
        """Second-variable contour polylines lifted onto a plane."""
        if self.overlay_variable is None:
            return None
        axis = _AXIS_NAMES[plane]
        world = self.plane_world_coordinate(plane)
        values, u_coords, v_coords = self.volume.extract_slice(
            axis, world, name=self.overlay_variable.id
        )
        if not np.isfinite(values).any():
            return None
        other = [a for a in range(3) if a != axis]
        pieces: List[np.ndarray] = []
        for level in contour_levels(values, self.contour_count):
            pieces.extend(marching_squares(values, float(level), u_coords, v_coords))
        if not pieces:
            return None
        n_seg = len(pieces)
        pts = np.empty((2 * n_seg, 3))
        seg = np.asarray(pieces)  # (n_seg, 2, 2)
        flat = seg.reshape(-1, 2)
        pts[:, axis] = world
        pts[:, other[0]] = flat[:, 0]
        pts[:, other[1]] = flat[:, 1]
        # nudge contours off the plane toward the camera side to avoid z-fighting
        pts[:, axis] += 1e-3 * max(self.volume.spacing)
        lines = [np.array([2 * i, 2 * i + 1]) for i in range(n_seg)]
        return PolyData(pts, lines=lines)

    def build_scene(self) -> Scene:
        scene = Scene()
        for plane in self.enabled_planes:
            scene.add_actor(Actor(self._slice_mesh(plane), lighting=False,
                                  name=f"slice-{plane}"))
            overlay = self._contour_overlay(plane)
            if overlay is not None:
                scene.add_actor(
                    Actor(overlay, line_color=(0.05, 0.05, 0.05), lighting=False,
                          name=f"contours-{plane}")
                )
        scene.add_actor(
            Actor(box_outline(self.volume.bounds()), line_color=(0.7, 0.7, 0.75),
                  lighting=False, name="frame")
        )
        return scene

    # -- state ----------------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        base = super().state()
        base.update(
            {
                "enabled_planes": list(self.enabled_planes),
                "plane_positions": dict(self.plane_positions),
                "contour_count": self.contour_count,
            }
        )
        return base

    def apply_state(self, state: Dict[str, Any]) -> None:
        super().apply_state(state)
        if "enabled_planes" in state:
            self.enabled_planes = tuple(state["enabled_planes"])
        if "plane_positions" in state:
            for plane, pos in state["plane_positions"].items():
                if plane in _AXIS_NAMES:
                    self.plane_positions[plane] = float(np.clip(pos, 0.0, 1.0))
        if "contour_count" in state:
            self.contour_count = int(state["contour_count"])
