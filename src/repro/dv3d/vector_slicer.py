"""The Vector slicer plot.

"The Vector slicer plot provides a set of slice planes that can be
interactively dragged over a vector field dataset.  A slice through the
field at the plane's location is displayed as a vector glyph or
streamline plot on the plane.  This plot allows scientists to browse
the structure of variables (such as wind velocity) that have both
magnitude and direction."
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.cdms.slabs import fold_finite_max
from repro.cdms.variable import Variable
from repro.dv3d.plot import Plot3D
from repro.dv3d.translation import translate_vector_field
from repro.rendering.geometry import PolyData, box_outline
from repro.rendering.glyphs import slice_plane_glyphs
from repro.rendering.image_data import ImageData
from repro.rendering.scene import Actor, Scene
from repro.rendering.streamline import (
    integrate_streamlines,
    plane_seed_grid,
    streamlines_to_polydata,
)
from repro.util.errors import DV3DError

_AXIS_NAMES = {"x": 0, "y": 1, "z": 2}


def _speed_max(u: Variable, v: Variable) -> Optional[float]:
    """Max finite speed, folded slab-by-slab so lazy variables never
    materialize both components at once."""
    return fold_finite_max(
        lambda us, vs: np.sqrt(us.filled(np.nan) ** 2 + vs.filled(np.nan) ** 2), u, v
    )


class VectorSlicerPlot(Plot3D):
    """Glyph or streamline rendering of a vector field on slice planes."""

    plot_type = "vector_slicer"

    def __init__(
        self,
        u: Variable,
        v: Variable,
        w: Optional[Variable] = None,
        mode: str = "glyphs",
        plane: str = "z",
        glyph_stride: int = 4,
        seed_density: int = 10,
        **kwargs: Any,
    ) -> None:
        if mode not in ("glyphs", "streamlines"):
            raise DV3DError(f"mode must be 'glyphs' or 'streamlines', got {mode!r}")
        if plane not in _AXIS_NAMES:
            raise DV3DError(f"unknown plane {plane!r}")
        self.u, self.v, self.w = u, v, w
        self.mode = mode
        self.plane = plane
        self.glyph_stride = int(glyph_stride)
        self.seed_density = int(seed_density)
        self.plane_position = 0.5
        # the base class treats u as "the variable" (for animation/pick);
        # the scalar range colors by speed
        speed_max = _speed_max(u, v)
        if speed_max is None:
            raise DV3DError("vector field has no valid data")
        kwargs.setdefault("scalar_range", (0.0, speed_max))
        super().__init__(u, **kwargs)

    def _build_volume(self) -> ImageData:
        return translate_vector_field(
            self.u, self.v, self.w, self.time_index, self.vertical_exaggeration
        )

    # -- interactive ops ------------------------------------------------------

    def drag_slice(self, delta: float) -> float:
        self.plane_position = float(np.clip(self.plane_position + delta, 0.0, 1.0))
        return self.plane_position

    def set_mode(self, mode: str) -> str:
        if mode not in ("glyphs", "streamlines"):
            raise DV3DError(f"mode must be 'glyphs' or 'streamlines', got {mode!r}")
        self.mode = mode
        return self.mode

    def toggle_mode(self) -> str:
        return self.set_mode("streamlines" if self.mode == "glyphs" else "glyphs")

    def plane_world_coordinate(self) -> float:
        axis = _AXIS_NAMES[self.plane]
        bounds = self.volume.bounds()
        lo, hi = bounds[2 * axis], bounds[2 * axis + 1]
        return lo + self.plane_position * (hi - lo)

    # -- geometry ----------------------------------------------------------------

    def _field_geometry(self) -> PolyData:
        axis = _AXIS_NAMES[self.plane]
        world = self.plane_world_coordinate()
        if self.mode == "glyphs":
            poly = slice_plane_glyphs(
                self.volume, "vectors", axis, world, stride=self.glyph_stride
            )
        else:
            seeds = plane_seed_grid(
                self.volume, axis, world, self.seed_density, self.seed_density
            )
            lines = integrate_streamlines(
                self.volume, "vectors", seeds, max_steps=150
            )
            poly = streamlines_to_polydata(lines, self.volume, "vectors")
        if poly.n_points and poly.scalars is not None:
            colors = self.colormap.map_scalars(poly.scalars, *self.scalar_range)
            poly = poly.with_colors(colors.astype(np.float32))
        return poly

    def build_scene(self) -> Scene:
        scene = Scene()
        geometry = self._field_geometry()
        if geometry.n_points:
            scene.add_actor(Actor(geometry, lighting=False, name=f"field-{self.mode}"))
        scene.add_actor(
            Actor(box_outline(self.volume.bounds()), line_color=(0.7, 0.7, 0.75),
                  lighting=False, name="frame")
        )
        return scene

    # -- picking: report the vector, not just a scalar ------------------------------

    def pick_vector(self, world_point: np.ndarray) -> Dict[str, float]:
        point = np.asarray(world_point, dtype=np.float64).reshape(1, 3)
        vec = self.volume.sample_vector(point, "vectors")[0]
        return {
            "u": float(vec[0]),
            "v": float(vec[1]),
            "w": float(vec[2]),
            "speed": float(np.linalg.norm(vec)),
            "longitude": float(point[0, 0]),
            "latitude": float(point[0, 1]),
        }

    # -- state -------------------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        base = super().state()
        base.update(
            {
                "mode": self.mode,
                "plane": self.plane,
                "plane_position": self.plane_position,
                "glyph_stride": self.glyph_stride,
                "seed_density": self.seed_density,
            }
        )
        return base

    def apply_state(self, state: Dict[str, Any]) -> None:
        super().apply_state(state)
        if "mode" in state:
            self.set_mode(str(state["mode"]))
        if "plane" in state and state["plane"] in _AXIS_NAMES:
            self.plane = str(state["plane"])
        if "plane_position" in state:
            self.plane_position = float(np.clip(state["plane_position"], 0.0, 1.0))
        if "glyph_stride" in state:
            self.glyph_stride = int(state["glyph_stride"])
        if "seed_density" in state:
            self.seed_density = int(state["seed_density"])
