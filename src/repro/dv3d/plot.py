"""The DV3D plot base class.

Each DV3D plot type "offers a unique perspective by highlighting
particular features of the data" but they all share (§III.D) the same
feature set: animation over a data dimension, configuration state that
is recorded as provenance, interactive query/browse/navigation, and
colormap control.  :class:`Plot3D` implements that shared machinery;
subclasses implement :meth:`Plot3D.build_scene` and expose their own
interactive operations.

Configuration is a flat, JSON-serializable ``state()`` dictionary —
the unit of propagation for spreadsheet sync, hyperwall messaging and
provenance capture.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.cdms.slabs import padded_range, require_finite_range
from repro.cdms.variable import Variable
from repro.dv3d.translation import translate_variable
from repro.rendering.camera import Camera
from repro.rendering.colormap import Colormap
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.image_data import ImageData
from repro.rendering.scene import Renderer, Scene
from repro.util.errors import DV3DError


class Plot3D:
    """Base class of all DV3D plots.

    Parameters
    ----------
    variable:
        The primary CDMS variable (must carry lat/lon axes; time and
        level axes are optional and drive animation / the z axis).
    colormap:
        Name of the initial colormap.
    scalar_range:
        Override the colormap data range (default: the variable's
        finite min/max over all time steps, so animation is stable).
    """

    plot_type = "base"

    def __init__(
        self,
        variable: Variable,
        colormap: str = "default",
        scalar_range: Optional[Tuple[float, float]] = None,
        vertical_exaggeration: Optional[float] = None,
    ) -> None:
        self.variable = variable
        self.vertical_exaggeration = vertical_exaggeration
        self.time_index = 0
        self.colormap = Colormap(colormap)
        if scalar_range is None:
            # finite_range() lets lazy streaming variables answer from
            # manifest statistics without materializing any payload
            scalar_range = require_finite_range(variable, DV3DError)
        self.scalar_range: Tuple[float, float] = padded_range(scalar_range)
        self.camera: Optional[Camera] = None
        self._volume: Optional[ImageData] = None

    # -- data ------------------------------------------------------------

    @property
    def n_timesteps(self) -> int:
        time_axis = self.variable.get_time()
        return 1 if time_axis is None else len(time_axis)

    def _build_volume(self) -> ImageData:
        return translate_variable(
            self.variable, self.time_index, self.vertical_exaggeration
        )

    @property
    def volume(self) -> ImageData:
        """The translated volume for the current time step (cached)."""
        if self._volume is None:
            self._volume = self._build_volume()
        return self._volume

    def invalidate(self) -> None:
        """Drop the cached volume (after a time step or data change)."""
        self._volume = None

    def set_time_index(self, index: int) -> None:
        index = int(index) % max(self.n_timesteps, 1)
        if index != self.time_index:
            self.time_index = index
            self.invalidate()

    def step_time(self, delta: int = 1) -> int:
        """Advance the animation dimension; returns the new index."""
        self.set_time_index((self.time_index + delta) % max(self.n_timesteps, 1))
        return self.time_index

    # -- scene / render -----------------------------------------------------

    def build_scene(self) -> Scene:
        """Construct the plot's scene (implemented by each plot type)."""
        raise NotImplementedError

    def default_camera(self) -> Camera:
        return Camera.fit_bounds(self.volume.bounds())

    def render(
        self,
        width: int = 400,
        height: int = 300,
        camera: Optional[Camera] = None,
        parallel=None,
    ) -> Framebuffer:
        scene = self.build_scene()
        cam = camera or self.camera or self.default_camera()
        return Renderer(width, height, parallel=parallel).render(scene, cam)

    # -- colormap commands (shared key commands) ------------------------------

    def cycle_colormap(self) -> str:
        self.colormap = self.colormap.next_map()
        return self.colormap.name

    def invert_colormap(self) -> bool:
        self.colormap = self.colormap.invert()
        return self.colormap.inverted

    def set_scalar_range(self, vmin: float, vmax: float) -> None:
        if vmax <= vmin:
            raise DV3DError(f"bad scalar range ({vmin}, {vmax})")
        self.scalar_range = (float(vmin), float(vmax))

    # -- picking ("probe data values") ------------------------------------------

    def pick(self, world_point: np.ndarray) -> Dict[str, float]:
        """Probe the data value at a world point.

        Returns the sampled value plus geographic coordinates — the
        content of the cell's "pick operation display".
        """
        point = np.asarray(world_point, dtype=np.float64).reshape(1, 3)
        value = float(self.volume.sample(point, name=self.variable.id)[0])
        return {
            "value": value,
            "longitude": float(point[0, 0]),
            "latitude": float(point[0, 1]),
            "z": float(point[0, 2]),
        }

    def pick_ray(
        self, px: int, py: int, width: int, height: int, camera: Optional[Camera] = None
    ) -> Optional[Dict[str, float]]:
        """Probe along the view ray of pixel (px, py).

        Returns the first finite sample along the ray, or None when the
        ray misses the data volume entirely.
        """
        cam = camera or self.camera or self.default_camera()
        origins, dirs = cam.pixel_rays(width, height)
        idx = py * width + px
        if not 0 <= idx < origins.shape[0]:
            raise DV3DError(f"pixel ({px}, {py}) outside {width}x{height}")
        from repro.rendering.raycast import _ray_box_intersection

        o = origins[idx : idx + 1]
        d = dirs[idx : idx + 1]
        t0, t1 = _ray_box_intersection(o, d, self.volume.bounds())
        if t0[0] >= t1[0]:
            return None
        step = float(min(self.volume.spacing)) * 0.5
        ts = np.arange(max(t0[0], 0.0), t1[0], step)
        if ts.size == 0:
            return None
        pts = o + d * ts[:, None]
        values = self.volume.sample(pts, name=self.variable.id)
        finite = np.nonzero(np.isfinite(values))[0]
        if finite.size == 0:
            return None
        hit = pts[finite[0]]
        return self.pick(hit)

    # -- configuration state ---------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """Flat JSON-serializable configuration snapshot."""
        return {
            "plot_type": self.plot_type,
            "variable": self.variable.id,
            "time_index": self.time_index,
            "colormap": self.colormap.state(),
            "scalar_range": list(self.scalar_range),
            "camera": None if self.camera is None else self.camera.state(),
        }

    def apply_state(self, state: Dict[str, Any]) -> None:
        """Apply a configuration snapshot (spreadsheet/hyperwall sync).

        Unknown keys are ignored so heterogeneous plots can share one
        propagated event stream.
        """
        if "time_index" in state:
            self.set_time_index(int(state["time_index"]))
        if "colormap" in state and state["colormap"] is not None:
            self.colormap = Colormap.from_state(state["colormap"])
        if "scalar_range" in state and state["scalar_range"] is not None:
            lo, hi = state["scalar_range"]
            self.set_scalar_range(float(lo), float(hi))
        if state.get("camera"):
            self.camera = Camera.from_state(state["camera"])

    # -- interaction dispatch ------------------------------------------------------

    def handle_key(self, key: str) -> Dict[str, Any]:
        """Process a key command; returns the state delta it caused."""
        from repro.dv3d.interaction import handle_key

        return handle_key(self, key)

    def handle_drag(self, dx: float, dy: float, mode: str = "camera") -> Dict[str, Any]:
        """Process a mouse drag in normalized cell units."""
        from repro.dv3d.interaction import handle_drag

        return handle_drag(self, dx, dy, mode)
