"""CDMS → rendering translation.

"A DV3D translation module converts the processed CDMS data volumes
into VTK image data instances to initialize the visualization branch of
a DV3D workflow."  This module is that stage:

* :func:`translate_variable` — a (time, level, lat, lon) variable at
  one time step becomes an :class:`~repro.rendering.image_data.ImageData`
  whose world coordinates are (longitude°, latitude°, scaled height);
  pressure levels map to log-pressure height so the stratosphere does
  not dominate the box;
* :func:`translate_hovmoller` — a (time, lat, lon) variable becomes a
  volume with **time on the z axis** ("a data volume structured with
  time (instead of height or pressure level) as the vertical
  dimension");
* :func:`translate_vector_field` — u/v(/w) variables become one vector
  array for the Vector slicer.

ImageData requires uniform spacing; non-uniform source axes (pressure
levels, gaussian latitudes) are linearly resampled onto uniform
coordinates with the same point count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cdms.axis import Axis
from repro.cdms.variable import Variable
from repro.rendering.image_data import ImageData
from repro.util.errors import DV3DError

#: scale height (km) for log-pressure altitude z = H ln(p0 / p)
_SCALE_HEIGHT_KM = 7.0
_REFERENCE_PRESSURE = 1000.0


def _level_to_height(levels: np.ndarray, units: str) -> np.ndarray:
    """Vertical coordinate → a height-like coordinate (increasing up)."""
    units = units.lower()
    if units in ("hpa", "mb", "millibar", "millibars"):
        return _SCALE_HEIGHT_KM * np.log(_REFERENCE_PRESSURE / np.maximum(levels, 1e-3))
    if units == "pa":
        return _SCALE_HEIGHT_KM * np.log(_REFERENCE_PRESSURE * 100.0 / np.maximum(levels, 1e-1))
    if units == "km":
        return levels.astype(np.float64)
    if units == "m":
        return levels / 1000.0
    # unknown units: use the raw coordinate
    return levels.astype(np.float64)


def _resample_to_uniform(
    data: np.ndarray, axis: int, coords: np.ndarray
) -> Tuple[np.ndarray, float, float]:
    """Resample *data* along *axis* onto uniform coordinates.

    Returns ``(resampled, origin, spacing)``.  Already-uniform axes
    pass through untouched (within 1e-6 relative tolerance).
    """
    coords = np.asarray(coords, dtype=np.float64)
    n = coords.size
    if n == 1:
        return data, float(coords[0]), 1.0
    increasing = coords[-1] > coords[0]
    work_coords = coords if increasing else coords[::-1]
    work = data if increasing else np.flip(data, axis=axis)
    diffs = np.diff(work_coords)
    if np.any(diffs <= 0):
        raise DV3DError("translation: axis coordinates not strictly monotonic")
    spacing = (work_coords[-1] - work_coords[0]) / (n - 1)
    if np.allclose(diffs, spacing, rtol=1e-6, atol=1e-12):
        return work, float(work_coords[0]), float(spacing)
    targets = work_coords[0] + spacing * np.arange(n)
    frac = np.interp(targets, work_coords, np.arange(n, dtype=np.float64))
    i0 = np.clip(np.floor(frac).astype(np.intp), 0, n - 2)
    t = frac - i0
    lo = np.take(work, i0, axis=axis)
    hi = np.take(work, i0 + 1, axis=axis)
    shape = [1] * data.ndim
    shape[axis] = n
    t = t.reshape(shape)
    return lo * (1.0 - t) + hi * t, float(work_coords[0]), float(spacing)


def _prepare_3d(
    variable: Variable, time_index: Optional[int]
) -> Tuple[np.ndarray, Axis, Axis, Optional[Axis]]:
    """Reduce to a (lon, lat, level?) float array plus its axes."""
    var = variable
    if var.get_time() is not None:
        t_dim = var.axis_index("time")
        n_time = var.shape[t_dim]
        idx = 0 if time_index is None else int(time_index)
        if not 0 <= idx < n_time:
            raise DV3DError(f"time index {idx} out of range [0, {n_time})")
        index = [slice(None)] * var.ndim
        index[t_dim] = idx
        var = var[tuple(index)].squeeze()
        if var.get_time() is not None:  # squeeze kept a length-1 time axis
            var = var[tuple(slice(None) for _ in var.axes)]
    lat = var.get_latitude()
    lon = var.get_longitude()
    if lat is None or lon is None:
        raise DV3DError(
            f"variable {variable.id!r} needs latitude and longitude axes for translation"
        )
    lev = var.get_level()
    order = ["longitude", "latitude"] + (["level"] if lev is not None else [])
    extra = [a.id for a in var.axes if a.designation() not in ("longitude", "latitude", "level")]
    if extra:
        raise DV3DError(
            f"variable {variable.id!r}: unexpected extra axes {extra} after time selection"
        )
    var = var.reorder(order)
    data = var.filled(np.nan).astype(np.float32)
    if lev is None:
        data = data[..., None]
    return data, lon, lat, lev


def translate_variable(
    variable: Variable,
    time_index: Optional[int] = None,
    vertical_exaggeration: Optional[float] = None,
) -> ImageData:
    """Translate a CDMS variable into an ImageData volume.

    World axes: x = longitude (degrees east), y = latitude (degrees
    north), z = height (scaled so the vertical span is ~35% of the
    longitude span unless *vertical_exaggeration* — world z units per
    height km — is given).  Masked values become NaN.  The variable's
    scalars are attached under its ``id``.
    """
    data, lon, lat, lev = _prepare_3d(variable, time_index)
    data, x0, dx = _resample_to_uniform(data, 0, lon.values)
    data, y0, dy = _resample_to_uniform(data, 1, lat.values)
    if lev is not None:
        heights = _level_to_height(lev.values, lev.units)
        data, z0_km, dz_km = _resample_to_uniform(data, 2, heights)
        span_km = dz_km * max(data.shape[2] - 1, 1)
        if vertical_exaggeration is None:
            lon_span = dx * max(data.shape[0] - 1, 1)
            vertical_exaggeration = 0.35 * lon_span / max(span_km, 1e-9)
        z0 = z0_km * vertical_exaggeration
        dz = dz_km * vertical_exaggeration
    else:
        z0, dz = 0.0, 1.0
    volume = ImageData(data.shape, origin=(x0, y0, z0), spacing=(dx, dy, dz))
    volume.add_array(variable.id, data)
    return volume


def add_variable_to_volume(
    volume: ImageData,
    variable: Variable,
    time_index: Optional[int] = None,
) -> None:
    """Attach a second variable's scalars to an existing volume.

    The second variable must produce the same grid shape (the
    Slicer-overlay and Isosurface-coloring plots require spatially
    correspondent volumes).
    """
    data, _lon, _lat, lev = _prepare_3d(variable, time_index)
    data, _, _ = _resample_to_uniform(data, 0, _lon.values)
    data, _, _ = _resample_to_uniform(data, 1, _lat.values)
    if lev is not None:
        heights = _level_to_height(lev.values, lev.units)
        data, _, _ = _resample_to_uniform(data, 2, heights)
    if tuple(data.shape) != volume.dimensions:
        raise DV3DError(
            f"variable {variable.id!r} shape {data.shape} does not match "
            f"volume dims {volume.dimensions}"
        )
    volume.add_array(variable.id, data, set_active=False)


def translate_hovmoller(
    variable: Variable,
    level_index: Optional[int] = None,
    vertical_fraction: float = 0.5,
) -> ImageData:
    """Translate a time series into a volume with time as the z axis.

    Input must have (time, lat, lon) axes (a level axis is reduced with
    *level_index*, default 0).  World z spans ``vertical_fraction`` of
    the longitude span, so long series stay in frame.
    """
    var = variable
    if var.get_time() is None:
        raise DV3DError(f"variable {var.id!r} has no time axis for a Hovmöller volume")
    if var.get_level() is not None:
        l_dim = var.axis_index("level")
        index = [slice(None)] * var.ndim
        index[l_dim] = 0 if level_index is None else int(level_index)
        var = var[tuple(index)].squeeze()
    lat, lon = var.get_latitude(), var.get_longitude()
    if lat is None or lon is None:
        raise DV3DError(f"variable {var.id!r} needs lat/lon axes")
    var = var.reorder(["longitude", "latitude", "time"])
    data = var.filled(np.nan).astype(np.float32)
    data, x0, dx = _resample_to_uniform(data, 0, lon.values)
    data, y0, dy = _resample_to_uniform(data, 1, lat.values)
    time_axis = var.get_time()
    assert time_axis is not None
    data, t0, dt = _resample_to_uniform(data, 2, time_axis.values)
    n_time = data.shape[2]
    lon_span = dx * max(data.shape[0] - 1, 1)
    z_span = vertical_fraction * lon_span
    dz = z_span / max(n_time - 1, 1)
    volume = ImageData(data.shape, origin=(x0, y0, 0.0), spacing=(dx, dy, dz))
    volume.add_array(variable.id, data)
    return volume


def translate_vector_field(
    u: Variable,
    v: Variable,
    w: Optional[Variable] = None,
    time_index: Optional[int] = None,
    vertical_exaggeration: Optional[float] = None,
    name: str = "vectors",
) -> ImageData:
    """Translate wind components into a volume with a vector array.

    Components must share axes.  The vector array is stored under
    *name*; speed (magnitude) is attached as the active scalar array so
    slicer/volume plots can color by wind speed.
    """
    if u.shape != v.shape or (w is not None and w.shape != u.shape):
        raise DV3DError("vector components must share shape")
    volume = translate_variable(u, time_index, vertical_exaggeration)
    u_arr = volume.get_array(u.id)
    add_variable_to_volume(volume, v, time_index)
    v_arr = volume.get_array(v.id)
    if w is not None:
        add_variable_to_volume(volume, w, time_index)
        w_arr = volume.get_array(w.id)
    else:
        w_arr = np.zeros_like(u_arr)
    vectors = np.stack([u_arr, v_arr, w_arr], axis=-1)
    vectors = np.where(np.isfinite(vectors), vectors, 0.0)
    volume.add_array(name, vectors, set_active=False)
    speed = np.sqrt((vectors**2).sum(axis=-1)).astype(np.float32)
    volume.add_array("speed", speed, set_active=True)
    return volume
