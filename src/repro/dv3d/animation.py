"""Animation over a data dimension.

"Animating over one of the data dimensions (typically time) provides a
very effective method for viewing and browsing 4D data."  The
:class:`Animator` steps a plot (or cell) through its animation
dimension, rendering each frame; frames can be saved as numbered PPM
files or returned for inspection.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.dv3d.cell import DV3DCell
from repro.dv3d.plot import Plot3D
from repro.rendering.camera import Camera
from repro.rendering.ppm import write_ppm
from repro.util.errors import DV3DError, StreamingError

PathLike = Union[str, Path]


class Animator:
    """Renders an animation sequence from a plot or cell."""

    def __init__(self, target: Union[Plot3D, DV3DCell]) -> None:
        self.cell = target if isinstance(target, DV3DCell) else None
        self.plot = target.plot if isinstance(target, DV3DCell) else target
        if self.plot.n_timesteps < 1:
            raise DV3DError("nothing to animate")

    @property
    def n_frames(self) -> int:
        return self.plot.n_timesteps

    def render_frames(
        self,
        width: int = 320,
        height: int = 240,
        camera: Optional[Camera] = None,
        start: int = 0,
        count: Optional[int] = None,
        stride: int = 1,
    ) -> List[np.ndarray]:
        """Render frames as uint8 arrays, restoring the original time index.

        The camera is fixed across frames (fit once at the first frame)
        so the animation browses the data, not the view.  ``count`` may
        exceed the number of timesteps: the cursor wraps modulo the
        time axis, looping the animation.
        """
        if stride < 1:
            raise DV3DError("stride must be >= 1")
        total = self.n_frames
        count = total if count is None else count
        original = self.plot.time_index
        cam = camera or self.plot.camera
        frames: List[np.ndarray] = []
        try:
            for step in range(count):
                index = (start + step * stride) % total
                self.plot.set_time_index(index)
                if cam is None:
                    cam = self.plot.default_camera()
                fb = (
                    self.cell.render(width, height, camera=cam)
                    if self.cell is not None
                    else self.plot.render(width, height, camera=cam)
                )
                frames.append(fb.to_uint8())
        finally:
            self.plot.set_time_index(original)
        return frames

    def save_frames(
        self,
        directory: PathLike,
        prefix: str = "frame",
        **render_kwargs,
    ) -> List[Path]:
        """Render and write numbered PPM files; returns the paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: List[Path] = []
        for i, frame in enumerate(self.render_frames(**render_kwargs)):
            path = directory / f"{prefix}_{i:04d}.ppm"
            write_ppm(path, frame)
            paths.append(path)
        return paths


@dataclass(frozen=True)
class FrameRecord:
    """How one animation frame was produced.

    ``status`` is ``"ok"`` or ``"degraded"``; ``source`` says which rung
    of the degradation ladder delivered the pixels: ``"stream"`` (full
    resolution), ``"lowres"`` (verified fallback slab), ``"previous"``
    (last good frame re-served), or ``"blank"`` (nothing to serve yet).
    """

    index: int
    status: str
    source: str


class StreamingAnimator(Animator):
    """An :class:`Animator` that degrades instead of aborting.

    For plots over lazy streaming variables, a chunk that stays
    unreadable after the reader's retry budget normally raises
    :class:`~repro.util.errors.StreamingError`.  This animator catches
    it per frame and walks the degradation ladder:

    1. re-render inside the variables' :meth:`degraded` context, so the
       unreadable chunk is substituted by its verified low-resolution
       companion;
    2. failing that, re-serve the previous successfully rendered frame;
    3. with no previous frame, emit a blank frame.

    Every frame is accounted: ``streaming.frames.ok`` /
    ``streaming.frames.degraded`` counters and a :class:`FrameRecord`
    per frame.  The animation loop itself never raises for data
    reasons — the contract the chaos tests pin.
    """

    def render_frames_with_status(
        self,
        width: int = 320,
        height: int = 240,
        camera: Optional[Camera] = None,
        start: int = 0,
        count: Optional[int] = None,
        stride: int = 1,
    ) -> Tuple[List[np.ndarray], List[FrameRecord]]:
        if stride < 1:
            raise DV3DError("stride must be >= 1")
        total = self.n_frames
        count = total if count is None else count
        original = self.plot.time_index
        cam = camera or self.plot.camera
        frames: List[np.ndarray] = []
        records: List[FrameRecord] = []
        try:
            for step in range(count):
                index = (start + step * stride) % total
                self.plot.set_time_index(index)
                frame, record, cam = self._render_one(
                    index, width, height, cam, frames
                )
                frames.append(frame)
                records.append(record)
                if obs.enabled():
                    if record.status == "ok":
                        obs.counter("streaming.frames.ok")
                    else:
                        obs.counter("streaming.frames.degraded", source=record.source)
        finally:
            self.plot.set_time_index(original)
        return frames, records

    def render_frames(self, *args, **kwargs) -> List[np.ndarray]:
        frames, _ = self.render_frames_with_status(*args, **kwargs)
        return frames

    # -- the ladder ---------------------------------------------------------

    def _degradable_variables(self) -> List[object]:
        """Every plot variable that supports the degraded() context."""
        candidates = [
            getattr(self.plot, name, None)
            for name in ("variable", "color_variable", "u", "v", "w")
        ]
        seen: List[object] = []
        for var in candidates:
            if var is not None and hasattr(var, "degraded") and var not in seen:
                seen.append(var)
        return seen

    def _render_raw(
        self, width: int, height: int, cam: Optional[Camera]
    ) -> Tuple[np.ndarray, Camera]:
        # the camera fit reads the (possibly degraded) volume's geometry,
        # which depends only on axes — identical across ladder rungs
        if cam is None:
            cam = self.plot.default_camera()
        fb = (
            self.cell.render(width, height, camera=cam)
            if self.cell is not None
            else self.plot.render(width, height, camera=cam)
        )
        return fb.to_uint8(), cam

    def _render_one(
        self,
        index: int,
        width: int,
        height: int,
        cam: Optional[Camera],
        previous_frames: List[np.ndarray],
    ) -> Tuple[np.ndarray, FrameRecord, Optional[Camera]]:
        try:
            frame, cam = self._render_raw(width, height, cam)
            return frame, FrameRecord(index, "ok", "stream"), cam
        except StreamingError:
            self.plot.invalidate()
        try:
            with contextlib.ExitStack() as stack:
                for var in self._degradable_variables():
                    stack.enter_context(var.degraded())
                frame, cam = self._render_raw(width, height, cam)
            return frame, FrameRecord(index, "degraded", "lowres"), cam
        except StreamingError:
            self.plot.invalidate()
        if previous_frames:
            return (
                previous_frames[-1].copy(),
                FrameRecord(index, "degraded", "previous"),
                cam,
            )
        return (
            np.zeros((height, width, 3), dtype=np.uint8),
            FrameRecord(index, "degraded", "blank"),
            cam,
        )


class CameraTour:
    """Animate the *view* instead of the data: an orbital fly-around.

    The complement of :class:`Animator` for the paper's "interactive
    query, browse, navigation" feature set — the data stays at one time
    step while the camera orbits the scene, producing frames for a
    turntable movie (the standard way a 3-D structure is presented).
    """

    def __init__(self, target: Union[Plot3D, DV3DCell]) -> None:
        self.cell = target if isinstance(target, DV3DCell) else None
        self.plot = target.plot if isinstance(target, DV3DCell) else target

    def render_orbit(
        self,
        n_frames: int = 12,
        total_azimuth_deg: float = 360.0,
        elevation_deg: float = 0.0,
        width: int = 320,
        height: int = 240,
    ) -> List[np.ndarray]:
        """Render *n_frames* around the scene; the plot's camera is
        restored afterwards."""
        if n_frames < 1:
            raise DV3DError("n_frames must be >= 1")
        original = self.plot.camera
        camera = original or self.plot.default_camera()
        step = total_azimuth_deg / n_frames
        frames: List[np.ndarray] = []
        try:
            for i in range(n_frames):
                view = camera.orbit(step * i, elevation_deg)
                fb = (
                    self.cell.render(width, height, camera=view)
                    if self.cell is not None
                    else self.plot.render(width, height, camera=view)
                )
                frames.append(fb.to_uint8())
        finally:
            self.plot.camera = original
        return frames

    def save_orbit(
        self,
        directory: PathLike,
        prefix: str = "orbit",
        **render_kwargs,
    ) -> List[Path]:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths: List[Path] = []
        for i, frame in enumerate(self.render_orbit(**render_kwargs)):
            path = directory / f"{prefix}_{i:04d}.ppm"
            write_ppm(path, frame)
            paths.append(path)
        return paths
