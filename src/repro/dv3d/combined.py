"""Combined plots: several DV3D views composited in one cell.

§III.C: "Multiple plots can be combined synergistically (within a
single cell or across multiple cells) to facilitate understanding of
the natural processes underlying the data" — Fig. 3's top panel is
exactly this, a volume render with a slicer in the same cell.

A :class:`CombinedPlot` wraps any number of component plots over the
same (or spatially compatible) data.  It merges their scenes into one,
keeps their cameras/time indices coordinated, fans interaction commands
to the component that owns them, and exposes the union of their
configuration state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


from repro.dv3d.plot import Plot3D
from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.scene import Renderer, Scene
from repro.util.errors import DV3DError


class CombinedPlot(Plot3D):
    """Multiple component plots rendered into one scene/cell.

    The first component is *primary*: it supplies the data volume for
    picking, the colormap shown in the cell's legend, and the animation
    length.  Components must agree on time-axis length when they
    animate (a mismatch raises at construction).
    """

    plot_type = "combined"

    def __init__(self, components: Sequence[Plot3D], **kwargs: Any) -> None:
        components = list(components)
        if not components:
            raise DV3DError("CombinedPlot needs at least one component")
        primary = components[0]
        lengths = {c.n_timesteps for c in components if c.n_timesteps > 1}
        if len(lengths) > 1:
            raise DV3DError(
                f"components disagree on animation length: {sorted(lengths)}"
            )
        super().__init__(primary.variable,
                         scalar_range=primary.scalar_range, **kwargs)
        self.components: List[Plot3D] = components
        self.colormap = primary.colormap

    # -- data: the primary component's volume drives picking/camera -------

    @property
    def primary(self) -> Plot3D:
        return self.components[0]

    def _build_volume(self):
        return self.primary.volume

    @property
    def n_timesteps(self) -> int:
        return max(c.n_timesteps for c in self.components)

    def set_time_index(self, index: int) -> None:
        index = int(index) % max(self.n_timesteps, 1)
        self.time_index = index
        for component in self.components:
            if component.n_timesteps > 1:
                component.set_time_index(index)
        self.invalidate()

    # -- scene composition ---------------------------------------------------

    def build_scene(self) -> Scene:
        merged = Scene()
        seen_frames = 0
        for i, component in enumerate(self.components):
            scene = component.build_scene()
            for actor in scene.actors:
                if actor.name == "frame":
                    # keep only one bounding frame
                    seen_frames += 1
                    if seen_frames > 1:
                        continue
                actor.name = f"c{i}:{actor.name}" if actor.name != "frame" else "frame"
                merged.add_actor(actor)
            for vactor in scene.volume_actors:
                vactor.name = f"c{i}:{vactor.name}"
                merged.add_volume(vactor)
        return merged

    def default_camera(self) -> Camera:
        return self.primary.default_camera()

    # -- interaction: fan out, first component that accepts wins -------------

    def handle_key(self, key: str) -> Dict[str, Any]:
        deltas: Dict[str, Any] = {}
        handled = False
        for i, component in enumerate(self.components):
            try:
                delta = component.handle_key(key)
            except DV3DError:
                continue
            handled = True
            deltas[f"component_{i}"] = delta
            if key in ("t", "T"):  # keep the combined time index aligned
                self.time_index = component.time_index
            if key == "r":  # a camera reset applies to the combination
                self.camera = component.camera
                break
        if not handled:
            raise DV3DError(f"combined plot: no component handles key {key!r}")
        return deltas

    def handle_drag(self, dx: float, dy: float, mode: str = "camera") -> Dict[str, Any]:
        if mode in ("camera", "zoom", "pan"):
            # navigation applies to the shared camera
            delta = super().handle_drag(dx, dy, mode)
            for component in self.components:
                component.camera = self.camera
            return delta
        deltas: Dict[str, Any] = {}
        for i, component in enumerate(self.components):
            try:
                deltas[f"component_{i}"] = component.handle_drag(dx, dy, mode)
            except DV3DError:
                continue
        if not deltas:
            raise DV3DError(f"combined plot: no component handles drag mode {mode!r}")
        return deltas

    # -- colormap commands affect every component -----------------------------

    def cycle_colormap(self) -> str:
        names = [component.cycle_colormap() for component in self.components]
        self.colormap = self.primary.colormap
        return names[0]

    def invert_colormap(self) -> bool:
        flags = [component.invert_colormap() for component in self.components]
        self.colormap = self.primary.colormap
        return flags[0]

    # -- state: the union, namespaced per component ----------------------------

    def state(self) -> Dict[str, Any]:
        base = super().state()
        base["components"] = [c.state() for c in self.components]
        return base

    def apply_state(self, state: Dict[str, Any]) -> None:
        super().apply_state(state)
        for component, sub in zip(self.components, state.get("components", [])):
            component.apply_state(sub)
        if self.camera is not None:
            for component in self.components:
                component.camera = self.camera

    def render(
        self,
        width: int = 400,
        height: int = 300,
        camera: Optional[Camera] = None,
    ) -> Framebuffer:
        cam = camera or self.camera or self.default_camera()
        return Renderer(width, height).render(self.build_scene(), cam)
