"""The Isosurface plot.

"The Isosurface plot displays an isosurface derived from one variable's
data volume and colored by the spatially correspondent values from a
second variable's data volume.  It can produce views similar to a
volume rendering while facilitating the comparison of two variables."
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.cdms.slabs import require_finite_range
from repro.cdms.variable import Variable
from repro.dv3d.plot import Plot3D
from repro.dv3d.translation import add_variable_to_volume
from repro.rendering.geometry import box_outline
from repro.rendering.image_data import ImageData
from repro.rendering.isosurface import color_surface_by_field, marching_tetrahedra
from repro.rendering.scene import Actor, Scene
from repro.util.errors import DV3DError


class IsosurfacePlot(Plot3D):
    """An isovalue surface of variable A, colored by variable B."""

    plot_type = "isosurface"

    def __init__(
        self,
        variable: Variable,
        color_variable: Optional[Variable] = None,
        isovalue: Optional[float] = None,
        color_range: Optional[Tuple[float, float]] = None,
        **kwargs: Any,
    ) -> None:
        super().__init__(variable, **kwargs)
        self.color_variable = color_variable
        lo, hi = self.scalar_range
        self.isovalue = float(isovalue) if isovalue is not None else 0.5 * (lo + hi)
        if color_variable is not None and color_range is None:
            color_range = require_finite_range(
                color_variable, DV3DError, what="color variable"
            )
        self.color_range = color_range

    def _build_volume(self) -> ImageData:
        volume = super()._build_volume()
        if self.color_variable is not None:
            add_variable_to_volume(volume, self.color_variable, self.time_index)
        return volume

    # -- interactive ops ----------------------------------------------------

    def set_isovalue(self, value: float) -> float:
        """Set the level-set value (clamped to the data range)."""
        lo, hi = self.scalar_range
        self.isovalue = float(np.clip(value, lo, hi))
        return self.isovalue

    def adjust_isovalue(self, delta_fraction: float) -> float:
        """Shift the isovalue by a fraction of the data range (drag op)."""
        lo, hi = self.scalar_range
        return self.set_isovalue(self.isovalue + delta_fraction * (hi - lo))

    # -- geometry ---------------------------------------------------------------

    def extract_surface(self):
        """The current isosurface PolyData (colored if a second variable)."""
        surface = marching_tetrahedra(self.volume, self.isovalue, self.variable.id)
        if surface.n_points == 0:
            return surface
        if self.color_variable is not None:
            return color_surface_by_field(
                surface, self.volume, self.color_variable.id,
                self.colormap, self.color_range,
            )
        # single-variable surface: uniform color from the colormap midpoint
        colors = self.colormap.map_scalars(
            np.full(surface.n_points, self.isovalue), *self.scalar_range
        )
        return surface.with_colors(colors.astype(np.float32))

    def build_scene(self) -> Scene:
        scene = Scene()
        surface = self.extract_surface()
        if surface.n_points:
            scene.add_actor(Actor(surface, lighting=True, name="isosurface"))
        scene.add_actor(
            Actor(box_outline(self.volume.bounds()), line_color=(0.7, 0.7, 0.75),
                  lighting=False, name="frame")
        )
        return scene

    # -- state ---------------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        base = super().state()
        base.update(
            {
                "isovalue": self.isovalue,
                "color_variable": None if self.color_variable is None else self.color_variable.id,
                "color_range": None if self.color_range is None else list(self.color_range),
            }
        )
        return base

    def apply_state(self, state: Dict[str, Any]) -> None:
        super().apply_state(state)
        if "isovalue" in state:
            self.set_isovalue(float(state["isovalue"]))
        if state.get("color_range"):
            lo, hi = state["color_range"]
            self.color_range = (float(lo), float(hi))
