"""The Volume render plot.

"The Volume render plot maps variable values within a data volume to
opacity and color.  It enables scientists to create an overview of the
topology of the data, revealing complex 3D structures at a glance ...
DV3D offers interfaces that greatly simplify this process" — chiefly
the *leveling* gesture: pressing the leveling button and dragging in
the cell reshapes the opacity transfer function's window interactively.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.cdms.variable import Variable
from repro.dv3d.plot import Plot3D
from repro.rendering.geometry import box_outline
from repro.rendering.scene import Actor, Scene, VolumeActor
from repro.rendering.transfer_function import TransferFunction


class VolumePlot(Plot3D):
    """Volume rendering with an interactively leveled transfer function."""

    plot_type = "volume"

    def __init__(
        self,
        variable: Variable,
        center: float = 0.75,
        width: float = 0.3,
        peak_opacity: float = 0.8,
        step_size: Optional[float] = None,
        lighting: bool = True,
        **kwargs: Any,
    ) -> None:
        super().__init__(variable, **kwargs)
        self.step_size = step_size
        self.lighting = bool(lighting)
        self.transfer = TransferFunction(
            self.scalar_range,
            colormap=self.colormap,
            center=center,
            width=width,
            peak_opacity=peak_opacity,
        )

    # -- interactive leveling ------------------------------------------------

    def level(self, d_center: float, d_width: float) -> Dict[str, float]:
        """The leveling drag: move/scale the opacity window.

        "Pressing a button in a configuration panel and then clicking
        and dragging in a spreadsheet cell ... initiates a leveling
        operation that controls the shape of the plot's opacity or
        color transfer function.  The volume render plot changes
        interactively as the user drags the mouse around the cell."
        """
        self.transfer = self.transfer.level(d_center, d_width)
        return {"center": self.transfer.center, "width": self.transfer.width}

    def level_color(self, d_center: float, d_width: float) -> Dict[str, Any]:
        """The color-side leveling drag: remap the colormap sub-window."""
        self.transfer = self.transfer.level_color(d_center, d_width)
        return {"color_window": list(self.transfer.color_window)}

    def set_window(self, center: float, width: float) -> None:
        self.transfer = TransferFunction(
            self.scalar_range,
            colormap=self.colormap,
            center=float(np.clip(center, 0.0, 1.0)),
            width=float(np.clip(width, 1e-3, 2.0)),
            peak_opacity=self.transfer.peak_opacity,
            color_window=self.transfer.color_window,
        )

    def cycle_colormap(self) -> str:
        name = super().cycle_colormap()
        self.transfer = self.transfer.with_colormap(self.colormap)
        return name

    def invert_colormap(self) -> bool:
        inverted = super().invert_colormap()
        self.transfer = self.transfer.with_colormap(self.colormap)
        return inverted

    # -- scene -------------------------------------------------------------------

    def build_scene(self) -> Scene:
        scene = Scene()
        scene.add_actor(
            Actor(box_outline(self.volume.bounds()), line_color=(0.7, 0.7, 0.75),
                  lighting=False, name="frame")
        )
        scene.add_volume(
            VolumeActor(
                self.volume,
                self.transfer,
                array_name=self.variable.id,
                step_size=self.step_size,
                lighting=self.lighting,
                name="volume",
            )
        )
        return scene

    # -- state ---------------------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        base = super().state()
        base.update(
            {
                "tf_center": self.transfer.center,
                "tf_width": self.transfer.width,
                "peak_opacity": self.transfer.peak_opacity,
                "color_window": list(self.transfer.color_window),
                "lighting": self.lighting,
            }
        )
        return base

    def apply_state(self, state: Dict[str, Any]) -> None:
        super().apply_state(state)
        center = float(state.get("tf_center", self.transfer.center))
        width = float(state.get("tf_width", self.transfer.width))
        peak = float(state.get("peak_opacity", self.transfer.peak_opacity))
        color_window = tuple(state.get("color_window", self.transfer.color_window))
        if "lighting" in state:
            self.lighting = bool(state["lighting"])
        self.transfer = TransferFunction(
            self.scalar_range, colormap=self.colormap,
            center=center, width=width, peak_opacity=peak,
            color_window=color_window,  # type: ignore[arg-type]
        )
