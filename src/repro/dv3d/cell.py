"""The DV3D cell: a plot dressed for the spreadsheet.

"Each branch of a DV3D workflow terminates in a DV3D cell module, which
represents a custom cell in the UVCDAT spreadsheet.  The DV3D cell
module includes a configurable base map, navigation controls, onscreen
dataset and variable labels, a pick operation display, and
legend/colormap displays."

:class:`DV3DCell` wraps any :class:`~repro.dv3d.plot.Plot3D` and adds
those furnishings to its rendered frame; it is also the unit of
activation/deactivation in the spreadsheet and the unit of execution on
a hyperwall client.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.dv3d.basemap import basemap_polydata
from repro.dv3d.plot import Plot3D
from repro.rendering.camera import Camera
from repro.rendering.framebuffer import Framebuffer
from repro.rendering.scene import Actor, Renderer
from repro.rendering.text import render_text, text_width
from repro.util.errors import DV3DError


class DV3DCell:
    """A spreadsheet cell hosting one DV3D plot."""

    def __init__(
        self,
        plot: Plot3D,
        dataset_label: str = "",
        show_basemap: bool = True,
        show_labels: bool = True,
        show_colorbar: bool = True,
        show_axes: bool = False,
        active: bool = True,
    ) -> None:
        self.plot = plot
        self.dataset_label = dataset_label
        self.show_basemap = bool(show_basemap)
        self.show_labels = bool(show_labels)
        self.show_colorbar = bool(show_colorbar)
        self.show_axes = bool(show_axes)
        self.active = bool(active)
        self.last_pick: Optional[Dict[str, float]] = None

    def __repr__(self) -> str:
        return (
            f"DV3DCell(plot={self.plot.plot_type!r}, var={self.plot.variable.id!r}, "
            f"active={self.active})"
        )

    # -- activation (spreadsheet propagation honors this) ---------------------

    def activate(self) -> None:
        self.active = True

    def deactivate(self) -> None:
        self.active = False

    # -- picking with display ---------------------------------------------------

    def pick(self, world_point: np.ndarray) -> Dict[str, float]:
        self.last_pick = self.plot.pick(world_point)
        return self.last_pick

    def _pick_text(self) -> Optional[str]:
        if self.last_pick is None:
            return None
        p = self.last_pick
        value = p.get("value", float("nan"))
        return (
            f"PICK {value:.3f} AT {p.get('longitude', 0.0):.1f}E "
            f"{p.get('latitude', 0.0):.1f}N"
        )

    # -- rendering ------------------------------------------------------------------

    def render(
        self,
        width: int = 400,
        height: int = 300,
        camera: Optional[Camera] = None,
    ) -> Framebuffer:
        """Render the plot plus base map, labels, colorbar and pick display."""
        scene = self.plot.build_scene()
        if self.show_basemap:
            basemap = basemap_polydata(self.plot.volume.bounds())
            if basemap.n_points:
                scene.add_actor(
                    Actor(basemap, line_color=(0.45, 0.42, 0.3), lighting=False,
                          name="basemap")
                )
        axis_labels = []
        if self.show_axes:
            from repro.rendering.annotation import axis_annotations

            ticks, axis_labels = axis_annotations(self.plot.volume.bounds())
            if ticks.n_points:
                scene.add_actor(
                    Actor(ticks, line_color=(0.8, 0.8, 0.8), lighting=False,
                          name="axis-ticks")
                )
        cam = camera or self.plot.camera or self.plot.default_camera()
        fb = Renderer(width, height).render(scene, cam)
        if axis_labels:
            from repro.rendering.annotation import project_labels

            for text, row, col in project_labels(axis_labels, cam, width, height):
                patch = render_text(text, color=(0.85, 0.85, 0.85))
                fb.blend_patch(row - patch.shape[0] // 2,
                               col - patch.shape[1] // 2, patch)
        if self.show_labels:
            self._draw_labels(fb)
        if self.show_colorbar:
            self._draw_colorbar(fb)
        pick_text = self._pick_text()
        if self.show_labels and pick_text:
            patch = render_text(pick_text, color=(1.0, 1.0, 0.6), background_alpha=0.35)
            fb.blend_patch(fb.height - patch.shape[0] - 4, 4, patch)
        return fb

    def _draw_labels(self, fb: Framebuffer) -> None:
        """Dataset/variable labels, top-left; plot type top-right."""
        var = self.plot.variable
        title = f"{var.id}"
        units = var.units
        if units:
            title += f" ({units})"
        if self.dataset_label:
            title = f"{self.dataset_label}: {title}"
        patch = render_text(title, background_alpha=0.35)
        fb.blend_patch(4, 4, patch)
        type_label = self.plot.plot_type.upper()
        tw = text_width(type_label)
        patch = render_text(type_label, color=(0.7, 0.9, 1.0), background_alpha=0.35)
        fb.blend_patch(4, max(fb.width - tw - 4, 0), patch)
        if self.plot.n_timesteps > 1:
            step = f"T={self.plot.time_index}/{self.plot.n_timesteps - 1}"
            patch = render_text(step, color=(0.8, 0.8, 0.8), background_alpha=0.35)
            fb.blend_patch(14, 4, patch)

    def _draw_colorbar(self, fb: Framebuffer) -> None:
        """Colormap legend strip with min/max annotations, right edge."""
        bar_height = max(fb.height // 2, 24)
        strip = self.plot.colormap.colorbar_strip(width=10, height=bar_height)
        rgba = np.concatenate(
            [strip.astype(np.float32), np.full(strip.shape[:2] + (1,), 0.9, np.float32)],
            axis=2,
        )
        row = (fb.height - bar_height) // 2
        col = fb.width - 14
        fb.blend_patch(row, col, rgba)
        lo, hi = self.plot.scalar_range
        hi_text = render_text(f"{hi:.4g}", background_alpha=0.3)
        lo_text = render_text(f"{lo:.4g}", background_alpha=0.3)
        fb.blend_patch(row - 9, max(col - hi_text.shape[1] + 10, 0), hi_text)
        fb.blend_patch(row + bar_height + 2, max(col - lo_text.shape[1] + 10, 0), lo_text)

    # -- configuration & sync ---------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        return {
            "plot": self.plot.state(),
            "dataset_label": self.dataset_label,
            "show_basemap": self.show_basemap,
            "show_labels": self.show_labels,
            "show_colorbar": self.show_colorbar,
            "show_axes": self.show_axes,
            "active": self.active,
        }

    def apply_state(self, state: Dict[str, Any]) -> None:
        if "plot" in state:
            self.plot.apply_state(state["plot"])
        for key in ("show_basemap", "show_labels", "show_colorbar", "show_axes"):
            if key in state:
                setattr(self, key, bool(state[key]))
        if "dataset_label" in state:
            self.dataset_label = str(state["dataset_label"])
        if "active" in state:
            self.active = bool(state["active"])

    def handle_event(self, kind: str, **payload: Any) -> Dict[str, Any]:
        """Route an interaction event to the plot (if this cell is active).

        Inactive cells ignore events — "cells in the spreadsheet can be
        individually activated or deactivated by selection;
        configuration and navigation operations are propagated to all
        active cells."  Returns the resulting state delta ({} if
        ignored).
        """
        if not self.active:
            return {}
        if kind == "key":
            return self.plot.handle_key(str(payload["key"]))
        if kind == "drag":
            return self.plot.handle_drag(
                float(payload.get("dx", 0.0)),
                float(payload.get("dy", 0.0)),
                str(payload.get("mode", "camera")),
            )
        if kind == "configure":
            self.apply_state(payload.get("state", {}))
            return payload.get("state", {})
        raise DV3DError(f"unknown event kind {kind!r}")
