"""Workflow-module packages: cdms, cdat and dv3d.

This module is the integration point Fig. 1 depicts: the CDAT and DV3D
module suites registered with the workflow system through the package
mechanism ("tightly coupled integration").  A DV3D workflow built from
these modules follows §III.G exactly:

    CDMSDatasetReader → CDMSVariableReader (subset) → [CDATOperation ...]
        → a DV3D plot module → DV3DCell

The cell module renders to an image, the artifact a spreadsheet cell
displays.
"""

from __future__ import annotations

from typing import Any, Dict


from repro.cdms.dataset import Dataset, open_dataset
from repro.cdms.grid import uniform_grid
from repro.cdms.selectors import Selector
from repro.cdms.variable import Variable
from repro.dv3d.cell import DV3DCell
from repro.dv3d.hovmoller import HovmollerSlicerPlot, HovmollerVolumePlot
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.translation import translate_variable
from repro.dv3d.vector_slicer import VectorSlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.util.errors import WorkflowError
from repro.workflow.module import Module, ParameterSpec
from repro.workflow.package import Package
from repro.workflow.ports import PortSpec

_SYNTHETIC_SOURCES = ("synthetic_reanalysis", "storm_case_study", "wave_case_study")


# ---------------------------------------------------------------------------
# cdms package
# ---------------------------------------------------------------------------


class CDMSDatasetReader(Module):
    """Open a dataset from a ``.cdz`` path, an ``esg://`` URI, or the
    synthetic catalog.

    ``source`` is one of: a filesystem path ending in ``.cdz``; an
    ``esg://<dataset_id>`` URI fetched through the simulated Earth
    System Grid federation (the paper's remote-data path); or a
    synthetic catalog name (``synthetic_reanalysis``,
    ``storm_case_study``, ``wave_case_study``).  ``size`` optionally
    overrides generator dimensions, e.g. ``{"nlat": 24, "nlon": 36}``.
    """

    name = "CDMSDatasetReader"
    output_ports = (PortSpec("dataset", "dataset"),)
    parameters = (
        ParameterSpec("source", "synthetic_reanalysis", "path, esg:// URI, or catalog name"),
        ParameterSpec("size", {}, "generator size overrides"),
        ParameterSpec("seed", "default", "generator seed namespace"),
        ParameterSpec(
            "streaming",
            "auto",
            "out-of-core ingest for .cdz paths: auto | on | off",
        ),
    )

    #: process-wide federation handle for esg:// sources (lazy)
    _federation = None

    @classmethod
    def _esg(cls):
        if cls._federation is None:
            from repro.esg.federation import default_federation

            cls._federation = default_federation()
        return cls._federation

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        source = str(self.parameter_values["source"])
        size = dict(self.parameter_values.get("size") or {})
        seed = str(self.parameter_values.get("seed", "default"))
        if source.startswith("esg://"):
            return {"dataset": self._esg().fetch(source[len("esg://"):])}
        if source.endswith(".cdz"):
            # "auto" streams v2 containers and loads v1 eagerly — each
            # hyperwall cell executing this module then reads only the
            # chunks its own subset touches, instead of a whole-array
            # broadcast
            streaming = str(self.parameter_values.get("streaming", "auto"))
            return {"dataset": open_dataset(source, streaming=streaming)}
        from repro.data import catalog

        if source == "synthetic_reanalysis":
            ds = catalog.synthetic_reanalysis(seed=seed, **size)
        elif source == "storm_case_study":
            ds = catalog.storm_case_study(seed=seed, **size)
        elif source == "wave_case_study":
            ds = catalog.wave_case_study(seed=seed, **size)
        else:
            raise WorkflowError(
                f"unknown dataset source {source!r}; use a .cdz path or one of "
                f"{_SYNTHETIC_SOURCES}"
            )
        return {"dataset": ds}


class CDMSVariableReader(Module):
    """Select (and optionally subset) one variable from a dataset.

    ``selector`` holds JSON criteria, e.g.
    ``{"latitude": [-30, 30], "level": 500}`` — two-element lists become
    coordinate intervals, scalars become nearest-point selections.
    """

    name = "CDMSVariableReader"
    input_ports = (PortSpec("dataset", "dataset"),)
    output_ports = (PortSpec("variable", "variable"),)
    parameters = (
        ParameterSpec("variable", "", "variable id to read"),
        ParameterSpec("selector", {}, "coordinate subsetting criteria"),
    )

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        dataset: Dataset = inputs["dataset"]
        var_id = str(self.parameter_values["variable"])
        if not var_id:
            raise WorkflowError("CDMSVariableReader: 'variable' parameter not set")
        criteria: Dict[str, Any] = {}
        for key, value in dict(self.parameter_values.get("selector") or {}).items():
            criteria[key] = tuple(value) if isinstance(value, (list, tuple)) else value
        variable = dataset(var_id)
        if criteria:
            variable = variable(Selector(**criteria))
        return {"variable": variable}


class CDMSRegrid(Module):
    """Regrid a variable onto a uniform global grid."""

    name = "CDMSRegrid"
    input_ports = (PortSpec("variable", "variable"),)
    output_ports = (PortSpec("variable", "variable"),)
    parameters = (
        ParameterSpec("nlat", 46, "target latitude count"),
        ParameterSpec("nlon", 72, "target longitude count"),
        ParameterSpec("method", "bilinear", "bilinear | conservative"),
    )

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        target = uniform_grid(int(self.parameter_values["nlat"]), int(self.parameter_values["nlon"]))
        return {
            "variable": inputs["variable"].regrid(
                target, str(self.parameter_values["method"])
            )
        }


def cdms_package() -> Package:
    pkg = Package("cdms", description="climate data access and subsetting")
    pkg.add(CDMSDatasetReader)
    pkg.add(CDMSVariableReader)
    pkg.add(CDMSRegrid)
    return pkg


# ---------------------------------------------------------------------------
# cdat package
# ---------------------------------------------------------------------------


class CDATOperation(Module):
    """Apply a named CDAT operation from the operation registry.

    One- or two-variable operations resolve by name (``operation``);
    extra keyword arguments come from ``args``.  Operations returning a
    scalar or a dict are passed through on the ``result`` port; the
    ``variable`` port carries Variable results (or echoes the input for
    scalar results, keeping downstream visualization connectable).
    """

    name = "CDATOperation"
    input_ports = (
        PortSpec("variable", "variable"),
        PortSpec("variable2", "variable", optional=True),
    )
    output_ports = (PortSpec("variable", "variable"), PortSpec("result", "any"))
    parameters = (
        ParameterSpec("operation", "anomalies", "registry operation name"),
        ParameterSpec("args", {}, "extra keyword arguments"),
    )

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        from repro.cdat.registry import default_registry

        registry = default_registry()
        op = registry.get(str(self.parameter_values["operation"]))
        kwargs = dict(self.parameter_values.get("args") or {})
        args = [inputs["variable"]]
        if op.n_variables >= 2:
            if "variable2" not in inputs:
                raise WorkflowError(
                    f"operation {op.name!r} needs a second variable input"
                )
            args.append(inputs["variable2"])
        # apply_cached: a no-op passthrough unless the ambient result
        # cache is enabled, in which case streamed and eager runs of the
        # same reduction share entries (equal content ⇒ equal digest)
        result = registry.apply_cached(op.name, *args, **kwargs)
        if isinstance(result, Variable):
            return {"variable": result, "result": result}
        if isinstance(result, tuple) and result and isinstance(result[0], Variable):
            return {"variable": result[0], "result": result}
        return {"variable": inputs["variable"], "result": result}


def cdat_package() -> Package:
    pkg = Package("cdat", description="climate data analysis operations")
    pkg.add(CDATOperation)
    return pkg


# ---------------------------------------------------------------------------
# dv3d package
# ---------------------------------------------------------------------------


class TranslationModule(Module):
    """Standalone CDMS → image-data translation (for custom pipelines)."""

    name = "VolumeData"
    input_ports = (PortSpec("variable", "variable"),)
    output_ports = (PortSpec("image_data", "image_data"),)
    parameters = (
        ParameterSpec("time_index", 0, "time step to translate"),
        ParameterSpec("vertical_exaggeration", None, "world z units per km"),
    )

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        exaggeration = self.parameter_values["vertical_exaggeration"]
        return {
            "image_data": translate_variable(
                inputs["variable"],
                int(self.parameter_values["time_index"]),
                None if exaggeration is None else float(exaggeration),
            )
        }


class _PlotModule(Module):
    """Shared plumbing for the plot modules: common display parameters.

    Plot modules produce live, stateful plot objects, so they are not
    cacheable (a shared cached plot would couple unrelated cells).
    """

    cacheable = False
    parameters = (
        ParameterSpec("colormap", "default", "colormap name"),
        ParameterSpec("state", {}, "plot configuration state overrides"),
    )

    def _finish(self, plot) -> Dict[str, Any]:
        state = dict(self.parameter_values.get("state") or {})
        if state:
            plot.apply_state(state)
        return {"plot": plot}


class SlicerModule(_PlotModule):
    """The Slicer plot as a workflow module."""

    name = "Slicer"
    input_ports = (
        PortSpec("variable", "variable"),
        PortSpec("overlay", "variable", optional=True),
    )
    output_ports = (PortSpec("plot", "plot"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return self._finish(
            SlicerPlot(
                inputs["variable"],
                overlay_variable=inputs.get("overlay"),
                colormap=str(self.parameter_values["colormap"]),
            )
        )


class VolumeRenderModule(_PlotModule):
    """The Volume render plot as a workflow module."""

    name = "VolumeRender"
    input_ports = (PortSpec("variable", "variable"),)
    output_ports = (PortSpec("plot", "plot"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return self._finish(
            VolumePlot(inputs["variable"], colormap=str(self.parameter_values["colormap"]))
        )


class IsosurfaceModule(_PlotModule):
    """The Isosurface plot as a workflow module."""

    name = "Isosurface"
    input_ports = (
        PortSpec("variable", "variable"),
        PortSpec("color_variable", "variable", optional=True),
    )
    output_ports = (PortSpec("plot", "plot"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return self._finish(
            IsosurfacePlot(
                inputs["variable"],
                color_variable=inputs.get("color_variable"),
                colormap=str(self.parameter_values["colormap"]),
            )
        )


class HovmollerSlicerModule(_PlotModule):
    """The Hovmöller slicer plot as a workflow module."""

    name = "HovmollerSlicer"
    input_ports = (PortSpec("variable", "variable"),)
    output_ports = (PortSpec("plot", "plot"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return self._finish(
            HovmollerSlicerPlot(
                inputs["variable"], colormap=str(self.parameter_values["colormap"])
            )
        )


class HovmollerVolumeModule(_PlotModule):
    """The Hovmöller volume render plot as a workflow module."""

    name = "HovmollerVolume"
    input_ports = (PortSpec("variable", "variable"),)
    output_ports = (PortSpec("plot", "plot"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return self._finish(
            HovmollerVolumePlot(
                inputs["variable"], colormap=str(self.parameter_values["colormap"])
            )
        )


class VectorSlicerModule(_PlotModule):
    """The Vector slicer plot as a workflow module."""

    name = "VectorSlicer"
    input_ports = (
        PortSpec("u", "variable"),
        PortSpec("v", "variable"),
        PortSpec("w", "variable", optional=True),
    )
    output_ports = (PortSpec("plot", "plot"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        return self._finish(
            VectorSlicerPlot(
                inputs["u"], inputs["v"], inputs.get("w"),
                colormap=str(self.parameter_values["colormap"]),
            )
        )


class VolumeSlicerModule(_PlotModule):
    """The Fig. 3 combination: volume render + slicer in one cell."""

    name = "VolumeSlicer"
    input_ports = (PortSpec("variable", "variable"),)
    output_ports = (PortSpec("plot", "plot"),)

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        from repro.dv3d.combined import CombinedPlot

        colormap = str(self.parameter_values["colormap"])
        combined = CombinedPlot([
            VolumePlot(inputs["variable"], colormap=colormap),
            SlicerPlot(inputs["variable"], enabled_planes=("z",), colormap=colormap),
        ])
        return self._finish(combined)


class DV3DCellModule(Module):
    """The workflow terminus: wrap a plot in a cell and render it.

    Outputs both the live :class:`DV3DCell` (for interactive use by the
    spreadsheet / hyperwall) and the rendered uint8 image.
    """

    name = "DV3DCell"
    cacheable = False  # cells are live interactive objects
    input_ports = (PortSpec("plot", "plot"),)
    output_ports = (PortSpec("cell", "cell"), PortSpec("image", "image"))
    parameters = (
        ParameterSpec("width", 320, "render width in pixels"),
        ParameterSpec("height", 240, "render height in pixels"),
        ParameterSpec("dataset_label", "", "label shown in the cell"),
        ParameterSpec("show_basemap", True, "draw coastline base map"),
        ParameterSpec("show_labels", True, "draw text labels"),
        ParameterSpec("show_colorbar", True, "draw the colormap legend"),
        ParameterSpec("cell_state", {}, "cell configuration overrides"),
    )

    def compute(self, inputs: Dict[str, Any]) -> Dict[str, Any]:
        cell = DV3DCell(
            inputs["plot"],
            dataset_label=str(self.parameter_values["dataset_label"]),
            show_basemap=bool(self.parameter_values["show_basemap"]),
            show_labels=bool(self.parameter_values["show_labels"]),
            show_colorbar=bool(self.parameter_values["show_colorbar"]),
        )
        state = dict(self.parameter_values.get("cell_state") or {})
        if state:
            cell.apply_state(state)
        image = cell.render(
            int(self.parameter_values["width"]), int(self.parameter_values["height"])
        ).to_uint8()
        return {"cell": cell, "image": image}


def dv3d_package() -> Package:
    pkg = Package("dv3d", description="DV3D interactive 3D climate plots")
    pkg.add(TranslationModule)
    pkg.add(SlicerModule)
    pkg.add(VolumeRenderModule)
    pkg.add(IsosurfaceModule)
    pkg.add(HovmollerSlicerModule)
    pkg.add(HovmollerVolumeModule)
    pkg.add(VectorSlicerModule)
    pkg.add(VolumeSlicerModule)
    pkg.add(DV3DCellModule)
    return pkg
