"""Hovmöller plots.

"The Hovmöller slicer and volume render plots are similar to the 3D
slicer and volume render plots described above except that they operate
on a data volume structured with time (instead of height or pressure
level) as the vertical dimension.  This plot allows scientists to
quickly and easily browse the 3D structure of spatial time series."

Both plot classes below reuse their spatial counterparts' machinery and
override only the translation stage (time → z axis).  The classic 2-D
Hovmöller diagram (longitude × time at one latitude) is the y-plane
slice of the Hovmöller slicer — :meth:`HovmollerSlicerPlot.diagram`
extracts it directly for quantitative use.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.cdms.variable import Variable
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.translation import translate_hovmoller
from repro.dv3d.volume import VolumePlot
from repro.rendering.image_data import ImageData
from repro.util.errors import DV3DError


class _HovmollerTranslation:
    """Mixin overriding the translation stage: time becomes the z axis.

    Animation over time is meaningless here (time *is* an axis of the
    volume), so the time index is pinned and ``n_timesteps`` reports 1.
    """

    variable: Variable
    level_index: int

    def _build_volume(self) -> ImageData:
        return translate_hovmoller(self.variable, level_index=self.level_index)

    @property
    def n_timesteps(self) -> int:  # time is spatialized; no animation axis
        return 1


class HovmollerSlicerPlot(_HovmollerTranslation, SlicerPlot):
    """Slice planes through a (lon, lat, time) volume."""

    plot_type = "hovmoller_slicer"

    def __init__(
        self,
        variable: Variable,
        level_index: int = 0,
        **kwargs: Any,
    ) -> None:
        if variable.get_time() is None:
            raise DV3DError(f"variable {variable.id!r} has no time axis for a Hovmöller plot")
        self.level_index = int(level_index)
        # the canonical Hovmöller view: one latitude plane (y), showing
        # longitude × time
        kwargs.setdefault("enabled_planes", ("y",))
        super().__init__(variable, **kwargs)

    def diagram(self, latitude: float = 0.0) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The 2-D Hovmöller diagram at *latitude*.

        Returns ``(values, longitudes, times)`` with values shaped
        ``(n_lon, n_time)`` — longitude along rows, time along columns.
        """
        values, lons, times = self.volume.extract_slice(
            1, float(latitude), name=self.variable.id
        )
        return values, lons, times

    def state(self) -> Dict[str, Any]:
        base = super().state()
        base["level_index"] = self.level_index
        return base


class HovmollerVolumePlot(_HovmollerTranslation, VolumePlot):
    """Volume rendering of a (lon, lat, time) volume."""

    plot_type = "hovmoller_volume"

    def __init__(
        self,
        variable: Variable,
        level_index: int = 0,
        **kwargs: Any,
    ) -> None:
        if variable.get_time() is None:
            raise DV3DError(f"variable {variable.id!r} has no time axis for a Hovmöller plot")
        self.level_index = int(level_index)
        super().__init__(variable, **kwargs)

    def state(self) -> Dict[str, Any]:
        base = super().state()
        base["level_index"] = self.level_index
        return base
