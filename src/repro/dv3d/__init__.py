"""DV3D — the paper's primary contribution.

"DV3D is a VisTrails package of high-level modules for UV-CDAT
providing user-friendly workflow interfaces for advanced visualization
and analysis of climate data at a level appropriate for scientists ...
without exposing details such as actors, cameras, renderers, and
transfer functions."

The package provides the paper's coordinated interactive 3-D plot
types (§III.C):

* :class:`~repro.dv3d.slicer.SlicerPlot` — draggable slice planes with
  pseudocolor images and second-variable contour overlays;
* :class:`~repro.dv3d.volume.VolumePlot` — volume rendering with
  interactive transfer-function leveling;
* :class:`~repro.dv3d.isosurface.IsosurfacePlot` — an isosurface of one
  variable colored by a second variable;
* :class:`~repro.dv3d.hovmoller.HovmollerSlicerPlot` /
  :class:`~repro.dv3d.hovmoller.HovmollerVolumePlot` — the same views
  over volumes with **time** as the vertical dimension;
* :class:`~repro.dv3d.vector_slicer.VectorSlicerPlot` — vector glyphs
  and streamlines on draggable slice planes.

plus the supporting machinery: the CDMS→volume translation stage
(:mod:`repro.dv3d.translation`), the interaction command model
(:mod:`repro.dv3d.interaction`), animation (:mod:`repro.dv3d.animation`),
the spreadsheet cell wrapper with base map / labels / colorbar / pick
display (:mod:`repro.dv3d.cell`) and the workflow-module package
registrations (:mod:`repro.dv3d.package`).
"""

from repro.dv3d.translation import translate_variable, translate_hovmoller, translate_vector_field
from repro.dv3d.plot import Plot3D
from repro.dv3d.slicer import SlicerPlot
from repro.dv3d.volume import VolumePlot
from repro.dv3d.isosurface import IsosurfacePlot
from repro.dv3d.hovmoller import HovmollerSlicerPlot, HovmollerVolumePlot
from repro.dv3d.vector_slicer import VectorSlicerPlot
from repro.dv3d.combined import CombinedPlot
from repro.dv3d.cell import DV3DCell
from repro.dv3d.animation import Animator, CameraTour, FrameRecord, StreamingAnimator

__all__ = [
    "translate_variable",
    "translate_hovmoller",
    "translate_vector_field",
    "Plot3D",
    "SlicerPlot",
    "VolumePlot",
    "IsosurfacePlot",
    "HovmollerSlicerPlot",
    "HovmollerVolumePlot",
    "VectorSlicerPlot",
    "CombinedPlot",
    "DV3DCell",
    "Animator",
    "FrameRecord",
    "StreamingAnimator",
    "CameraTour",
]
