"""The interactive command model.

"The DV3D spreadsheet cells also offer a wide range of interactive key
press and mouse drag operations facilitating the configuration of
colormaps, transfer functions, and other display and execution
options."  This module maps those gestures onto plot operations and
returns the resulting **state delta** — the dictionary the cell records
as provenance and the hyperwall propagates to other nodes.

Key commands (shared across plot types where applicable):

========  =====================================================
key       action
========  =====================================================
``c``     cycle colormap
``i``     invert colormap
``t``     step animation forward
``T``     step animation backward
``x y z`` toggle the corresponding slice plane (slicer plots)
``m``     toggle glyphs/streamlines (vector slicer)
``r``     reset camera to the default framing
========  =====================================================

Drag modes: ``camera`` (orbit), ``zoom``, ``pan``, ``leveling``
(volume transfer function), ``slice:<plane>`` (move a slice plane),
``isovalue`` (shift the isosurface level).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.util.errors import DV3DError


def handle_key(plot, key: str) -> Dict[str, Any]:
    """Apply a key command to *plot*; returns the state delta."""
    if key == "c":
        return {"colormap": {"name": plot.cycle_colormap()}}
    if key == "i":
        return {"colormap": {"inverted": plot.invert_colormap()}}
    if key == "t":
        return {"time_index": plot.step_time(+1)}
    if key == "T":
        return {"time_index": plot.step_time(-1)}
    if key == "r":
        plot.camera = plot.default_camera()
        return {"camera": plot.camera.state()}
    if key in ("x", "y", "z") and hasattr(plot, "toggle_plane"):
        enabled = plot.toggle_plane(key)
        return {"enabled_planes": list(plot.enabled_planes), "toggled": {key: enabled}}
    if key == "m" and hasattr(plot, "toggle_mode"):
        return {"mode": plot.toggle_mode()}
    raise DV3DError(f"plot {plot.plot_type!r}: unbound key {key!r}")


def handle_drag(plot, dx: float, dy: float, mode: str = "camera") -> Dict[str, Any]:
    """Apply a drag gesture (deltas in normalized cell units, full-cell ≈ 1).

    Returns the state delta the gesture produced.
    """
    if mode == "camera":
        camera = plot.camera or plot.default_camera()
        plot.camera = camera.orbit(dx * 180.0, dy * 90.0)
        return {"camera": plot.camera.state()}
    if mode == "zoom":
        camera = plot.camera or plot.default_camera()
        plot.camera = camera.zoom(max(1e-3, 1.0 + dy))
        return {"camera": plot.camera.state()}
    if mode == "pan":
        camera = plot.camera or plot.default_camera()
        scale = camera.distance * 0.5
        plot.camera = camera.pan(-dx * scale, dy * scale)
        return {"camera": plot.camera.state()}
    if mode == "leveling":
        if not hasattr(plot, "level"):
            raise DV3DError(f"plot {plot.plot_type!r} does not support leveling")
        window = plot.level(dx, dy)
        return {"tf_center": window["center"], "tf_width": window["width"]}
    if mode == "leveling:color":
        if not hasattr(plot, "level_color"):
            raise DV3DError(f"plot {plot.plot_type!r} does not support color leveling")
        return plot.level_color(dx, dy)
    if mode.startswith("slice"):
        if not hasattr(plot, "drag_slice"):
            raise DV3DError(f"plot {plot.plot_type!r} has no slice planes")
        if ":" in mode:  # "slice:x" on the multi-plane slicer
            plane = mode.split(":", 1)[1]
            position = plot.drag_slice(plane, dy)
            return {"plane_positions": {plane: position}}
        position = plot.drag_slice(dy)  # vector slicer: single plane
        return {"plane_position": position}
    if mode == "isovalue":
        if not hasattr(plot, "adjust_isovalue"):
            raise DV3DError(f"plot {plot.plot_type!r} has no isovalue")
        return {"isovalue": plot.adjust_isovalue(dy)}
    raise DV3DError(f"unknown drag mode {mode!r}")
