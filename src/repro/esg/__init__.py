"""Simulated Earth System Grid (ESG) federation.

The paper's workflows access "data from disparate data sources
including the Earth System Grid (ESG)".  The real ESG is a federated
archive of climate model output; offline we simulate the federation:
named nodes publish dataset *records* (metadata + a deterministic
generator), search fans out across nodes, and fetching a dataset
"transfers" it through a bandwidth/latency model into the local store —
so the discover → search → fetch → open code path a DV3D workflow
exercises is real even though the bytes are synthesized locally.
"""

from repro.esg.federation import DatasetRecord, ESGFederation, ESGNode, TransferRecord, default_federation

__all__ = [
    "DatasetRecord",
    "ESGNode",
    "ESGFederation",
    "TransferRecord",
    "default_federation",
]
