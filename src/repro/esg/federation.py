"""The federated catalog, search and transfer model.

Deliberately faithful to how ESG is *used* from UV-CDAT (discover by
facets, then fetch and open) rather than to its wire protocols.  The
latency model is deterministic: transfer time = latency + bytes /
bandwidth, accumulated on a simulated clock rather than slept, so tests
and benchmarks measure the modelled cost without real waiting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.cdms.dataset import Dataset
from repro.resilience import InjectedFault, faults
from repro.util.errors import ESGError


@dataclass(frozen=True)
class DatasetRecord:
    """A published dataset's metadata plus its (lazy) generator."""

    dataset_id: str
    variables: Tuple[str, ...]
    description: str
    size_bytes: int
    factory: Callable[[], Dataset] = field(compare=False)

    def matches(self, query: str) -> bool:
        """Case-insensitive substring match on id, description, variables."""
        needle = query.lower()
        return (
            needle in self.dataset_id.lower()
            or needle in self.description.lower()
            or any(needle in v.lower() for v in self.variables)
        )


@dataclass(frozen=True)
class TransferRecord:
    """Provenance of one fetch: where from, how big, modelled duration."""

    dataset_id: str
    node_name: str
    size_bytes: int
    modelled_seconds: float


class ESGNode:
    """One federation member with its own latency/bandwidth character."""

    def __init__(
        self,
        name: str,
        latency_seconds: float = 0.05,
        bandwidth_bytes_per_s: float = 50e6,
    ) -> None:
        if latency_seconds < 0 or bandwidth_bytes_per_s <= 0:
            raise ESGError("bad node performance parameters")
        self.name = name
        self.latency_seconds = float(latency_seconds)
        self.bandwidth = float(bandwidth_bytes_per_s)
        #: federation nodes go down in practice; fetch() fails over
        self.available = True
        self._records: Dict[str, DatasetRecord] = {}

    def publish(self, record: DatasetRecord) -> None:
        if record.dataset_id in self._records:
            raise ESGError(f"node {self.name!r}: duplicate dataset {record.dataset_id!r}")
        self._records[record.dataset_id] = record

    def records(self) -> List[DatasetRecord]:
        return [self._records[k] for k in sorted(self._records)]

    def get(self, dataset_id: str) -> DatasetRecord:
        try:
            return self._records[dataset_id]
        except KeyError:
            raise ESGError(f"node {self.name!r}: no dataset {dataset_id!r}") from None

    def transfer_time(self, size_bytes: int) -> float:
        return self.latency_seconds + size_bytes / self.bandwidth


class ESGFederation:
    """The federation: search across nodes, fetch into the local store."""

    def __init__(self) -> None:
        self._nodes: Dict[str, ESGNode] = {}
        self._local: Dict[str, Dataset] = {}
        self.transfers: List[TransferRecord] = []
        self.simulated_clock: float = 0.0

    def add_node(self, node: ESGNode) -> ESGNode:
        if node.name in self._nodes:
            raise ESGError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        return node

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    # -- discovery ----------------------------------------------------------

    def search(self, query: str = "") -> List[Tuple[str, DatasetRecord]]:
        """All (node, record) pairs matching *query* (empty = everything)."""
        hits = []
        for name in sorted(self._nodes):
            for record in self._nodes[name].records():
                if not query or record.matches(query):
                    hits.append((name, record))
        return hits

    def locate(self, dataset_id: str) -> Tuple[str, DatasetRecord]:
        """The fastest *available* node publishing *dataset_id*.

        Replicated datasets fail over automatically: when the fastest
        publisher is down, the next one is used.  Raises only when no
        available node publishes the dataset.
        """
        candidates = [
            (name, node.get(dataset_id))
            for name, node in self._nodes.items()
            if node.available and dataset_id in {r.dataset_id for r in node.records()}
        ]
        if not candidates:
            published_anywhere = any(
                dataset_id in {r.dataset_id for r in node.records()}
                for node in self._nodes.values()
            )
            if published_anywhere:
                raise ESGError(
                    f"all nodes publishing {dataset_id!r} are unavailable"
                )
            raise ESGError(f"no node publishes {dataset_id!r}")
        return min(
            candidates,
            key=lambda pair: self._nodes[pair[0]].transfer_time(pair[1].size_bytes),
        )

    def set_node_available(self, node_name: str, available: bool) -> None:
        """Mark a node up/down (failure injection and maintenance windows)."""
        try:
            self._nodes[node_name].available = bool(available)
        except KeyError:
            raise ESGError(f"no node {node_name!r}") from None

    # -- transfer --------------------------------------------------------------

    def fetch(self, dataset_id: str, node_name: Optional[str] = None) -> Dataset:
        """Fetch a dataset into the local store (idempotent).

        The modelled transfer cost accrues on ``simulated_clock`` and is
        recorded in ``transfers`` — the provenance entry for a remote
        data access.

        A node that dies mid-transfer (the ``esg.fetch`` fault site,
        ``node``/``dataset`` labels) is marked unavailable and the fetch
        fails over to the next replica; the aborted transfer's modelled
        cost still accrues.  A fetch pinned to *node_name* does not fail
        over — losing the pinned node raises.
        """
        if dataset_id in self._local:
            return self._local[dataset_id]
        pinned = node_name is not None
        while True:
            if pinned:
                try:
                    node = self._nodes[node_name]
                except KeyError:
                    raise ESGError(f"no node {node_name!r}") from None
                if not node.available:
                    raise ESGError(f"node {node_name!r} is unavailable")
                record = node.get(dataset_id)
            else:
                node_name, record = self.locate(dataset_id)
                node = self._nodes[node_name]
            cost = node.transfer_time(record.size_bytes)
            try:
                faults.check("esg.fetch", node=node_name, dataset=dataset_id)
            except InjectedFault as exc:
                self.simulated_clock += cost  # the aborted transfer cost time
                node.available = False
                obs.counter("resilience.retries", site="esg.fetch", node=node_name)
                if pinned:
                    raise ESGError(
                        f"node {node_name!r} went down mid-fetch of {dataset_id!r}"
                    ) from exc
                continue  # locate() raises once no replica remains
            break
        self.simulated_clock += cost
        dataset = record.factory()
        self._local[dataset_id] = dataset
        self.transfers.append(
            TransferRecord(dataset_id, node_name, record.size_bytes, cost)
        )
        return dataset

    def is_local(self, dataset_id: str) -> bool:
        return dataset_id in self._local


def default_federation(seed: str = "esg") -> ESGFederation:
    """A three-node federation publishing the synthetic case studies.

    Mirrors the topology of real usage: a near archive (fast), a far
    archive (slow, bigger holdings), and a replica node that duplicates
    one dataset so ``locate`` has a real choice to make.
    """
    from repro.data import catalog

    fed = ESGFederation()
    near = fed.add_node(ESGNode("nccs", latency_seconds=0.01, bandwidth_bytes_per_s=200e6))
    far = fed.add_node(ESGNode("pcmdi", latency_seconds=0.15, bandwidth_bytes_per_s=20e6))
    replica = fed.add_node(ESGNode("dkrz-replica", latency_seconds=0.08, bandwidth_bytes_per_s=60e6))

    reanalysis = DatasetRecord(
        "nccs_synthetic_reanalysis",
        ("ta", "zg", "ua", "va", "hus"),
        "synthetic global reanalysis: temperature, heights, winds, humidity",
        180_000_000,
        lambda: catalog.synthetic_reanalysis(seed=f"{seed}/reanalysis"),
    )
    storm = DatasetRecord(
        "storm_case_study",
        ("wspd", "tcore"),
        "regional translating vortex case study",
        35_000_000,
        lambda: catalog.storm_case_study(seed=f"{seed}/storm"),
    )
    waves = DatasetRecord(
        "wave_case_study",
        ("olr_anom", "olr_west"),
        "propagating equatorial wave time series",
        22_000_000,
        lambda: catalog.wave_case_study(seed=f"{seed}/waves"),
    )
    near.publish(reanalysis)
    near.publish(storm)
    far.publish(waves)
    far.publish(
        DatasetRecord(
            reanalysis.dataset_id, reanalysis.variables, reanalysis.description,
            reanalysis.size_bytes, reanalysis.factory,
        )
    )
    replica.publish(
        DatasetRecord(
            waves.dataset_id, waves.variables, waves.description,
            waves.size_bytes, waves.factory,
        )
    )
    return fed
