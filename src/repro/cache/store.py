"""The two-tier result store: in-memory LRU over an on-disk cache.

**Memory tier** — a thread-safe LRU bounded by entry count; hits cost a
dict lookup and return the stored object itself (module outputs are
shared-immutable by the executor contract; mutable render products are
copied by their call sites).

**Disk tier** — one pickle file per key under a two-level fan-out
directory, shared safely between processes:

* writes go to a private temp file (written, flushed, fsynced) and are
  published with :func:`os.replace` — an atomic rename, so concurrent
  writers of the same key race harmlessly (last published wins, readers
  never observe a torn file) and a writer killed mid-write leaves only
  a stale temp file, never a corrupt entry;
* reads open the final path and read it to EOF before unpickling; on
  POSIX an entry evicted mid-read stays readable through the open file
  descriptor, so eviction under size pressure never breaks a reader;
* undecodable entries (version skew, truncation from non-POSIX
  surprises) are deleted and reported as misses — the cache degrades,
  it never fails the computation it memoizes.

Every lookup/store emits ``cache.hits`` / ``cache.misses`` /
``cache.evictions`` counters (labelled by call site and tier) and
``cache.lookup.seconds`` / ``cache.store.seconds`` histograms through
:mod:`repro.obs`.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Iterable, Optional, Tuple

from repro import obs
from repro.cache.config import CacheConfig, get_config

#: prefix of in-flight temp files (ignored by scans, reaped when stale)
TMP_PREFIX = ".tmp-"
#: temp files older than this are debris from killed writers
STALE_TMP_SECONDS = 300.0
#: pickle errors that mean "corrupt or incompatible entry", not a bug
_DECODE_ERRORS = (
    pickle.UnpicklingError, EOFError, AttributeError, ImportError,
    IndexError, MemoryError, ValueError, TypeError,
)


def _fsync(fd: int) -> None:
    """Module-level so crash tests can intercept the pre-publish sync."""
    os.fsync(fd)


class MemoryTier:
    """A thread-safe LRU of at most *capacity* entries."""

    def __init__(self, capacity: int, ttl_seconds: float = 0.0, clock=time.time) -> None:
        self.capacity = int(capacity)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        self._entries: "OrderedDict[str, Tuple[float, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Tuple[bool, Any]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False, None
            stored_at, value = entry
            if self.ttl_seconds and self._clock() - stored_at > self.ttl_seconds:
                del self._entries[key]
                return False, None
            self._entries.move_to_end(key)
            return True, value

    def put(self, key: str, value: Any) -> int:
        """Store *value*; returns how many entries were evicted."""
        evicted = 0
        with self._lock:
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
        return evicted

    def delete(self, key: str) -> bool:
        """Drop *key* if present; returns whether an entry was removed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class DiskTier:
    """The process-shared pickle-file tier (see module docstring)."""

    def __init__(
        self,
        root: str,
        max_bytes: int,
        ttl_seconds: float = 0.0,
        clock=time.time,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.ttl_seconds = float(ttl_seconds)
        self._clock = clock
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def entries(self) -> Iterable[Path]:
        yield from self.root.glob("??/*.pkl")

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def size_bytes(self) -> int:
        total = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    # -- lookup ------------------------------------------------------------

    def get(self, key: str) -> Tuple[bool, Any]:
        path = self._path(key)
        try:
            handle = open(path, "rb")
        except OSError:
            return False, None
        try:
            with handle:
                if self.ttl_seconds:
                    mtime = os.fstat(handle.fileno()).st_mtime
                    if self._clock() - mtime > self.ttl_seconds:
                        self._discard(path)
                        return False, None
                payload = handle.read()
            value = pickle.loads(payload)
        except _DECODE_ERRORS:
            # torn or incompatible entry: drop it, report a miss
            obs.counter("cache.corrupt", tier="disk")
            self._discard(path)
            return False, None
        except OSError:
            return False, None
        return True, value

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def delete(self, key: str) -> bool:
        """Unlink *key*'s entry; returns whether a file was removed."""
        path = self._path(key)
        existed = path.exists()
        self._discard(path)
        return existed

    # -- store -------------------------------------------------------------

    def put(self, key: str, value: Any) -> int:
        """Atomically publish *value* under *key*; returns evictions.

        Never raises on I/O failure — a cache that cannot store is a
        cache that misses.  Unpicklable values are skipped the same way
        (the memory tier still serves them within the process).
        """
        try:
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError):
            obs.counter("cache.unpicklable", tier="disk")
            return 0
        path = self._path(key)
        tmp_path: Optional[str] = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=str(self.root), prefix=TMP_PREFIX)
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
                handle.flush()
                _fsync(handle.fileno())
            os.replace(tmp_path, path)
            tmp_path = None
        except OSError:
            return 0
        finally:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
        return self._evict_to_budget()

    def _evict_to_budget(self) -> int:
        """Unlink stalest entries until the tier fits its byte budget."""
        now = self._clock()
        stats = []
        total = 0
        for path in self.entries():
            try:
                st = path.stat()
            except OSError:
                continue
            stats.append((st.st_mtime, st.st_size, path))
            total += st.st_size
        evicted = 0
        if total > self.max_bytes:
            for mtime, size, path in sorted(stats):
                if total <= self.max_bytes:
                    break
                self._discard(path)
                total -= size
                evicted += 1
        # reap temp debris from writers that died mid-publish
        for tmp in self.root.glob(f"{TMP_PREFIX}*"):
            try:
                if now - tmp.stat().st_mtime > STALE_TMP_SECONDS:
                    tmp.unlink()
            except OSError:
                pass
        return evicted

    def clear(self) -> None:
        for path in self.entries():
            self._discard(path)


class ResultCache:
    """The two-tier facade the hot paths talk to."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.memory = (
            MemoryTier(config.memory_entries, config.ttl_seconds)
            if config.wants_memory else None
        )
        self.disk = (
            DiskTier(config.resolved_path(), config.disk_bytes, config.ttl_seconds)
            if config.wants_disk else None
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str, site: str = "cache") -> Tuple[bool, Any]:
        """(hit, value); a disk hit is promoted into the memory tier."""
        start = time.perf_counter()
        tier = None
        value = None
        if self.memory is not None:
            found, value = self.memory.get(key)
            if found:
                tier = "memory"
        if tier is None and self.disk is not None:
            found, value = self.disk.get(key)
            if found:
                tier = "disk"
                if self.memory is not None:
                    self.evictions += self.memory.put(key, value)
        if obs.enabled():
            obs.histogram(
                "cache.lookup.seconds", time.perf_counter() - start, site=site
            )
        if tier is None:
            self.misses += 1
            obs.counter("cache.misses", site=site)
            return False, None
        self.hits += 1
        obs.counter("cache.hits", site=site, tier=tier)
        return True, value

    def put(self, key: str, value: Any, site: str = "cache") -> None:
        start = time.perf_counter()
        evicted = 0
        if self.memory is not None:
            evicted += self.memory.put(key, value)
        if self.disk is not None:
            evicted += self.disk.put(key, value)
        if evicted:
            self.evictions += evicted
            obs.counter("cache.evictions", evicted, site=site)
        if obs.enabled():
            obs.histogram(
                "cache.store.seconds", time.perf_counter() - start, site=site
            )

    def delete(self, key: str, site: str = "cache") -> bool:
        """Remove *key* from every tier (targeted invalidation).

        The serving layer's per-tenant quota ledger calls this to evict
        one tenant's overflow without disturbing other tenants' entries.
        Returns whether any tier held the key.
        """
        removed = False
        if self.memory is not None:
            removed = self.memory.delete(key) or removed
        if self.disk is not None:
            removed = self.disk.delete(key) or removed
        if removed:
            self.evictions += 1
            obs.counter("cache.evictions", site=site)
        return removed

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "memory_entries": 0 if self.memory is None else len(self.memory),
            "disk_entries": 0 if self.disk is None else len(self.disk),
        }

    def clear(self) -> None:
        if self.memory is not None:
            self.memory.clear()
        if self.disk is not None:
            self.disk.clear()


# -- the ambient cache instance ----------------------------------------------

_ACTIVE: Optional[ResultCache] = None
_ACTIVE_LOCK = threading.Lock()


def get_cache(config: Optional[CacheConfig] = None) -> ResultCache:
    """The :class:`ResultCache` for *config* (default: the ambient one).

    The instance is rebuilt whenever the effective config changes, so
    ``use_config`` scopes in tests get a fresh cache while repeated
    calls under one config share tiers (and hit statistics).
    """
    global _ACTIVE
    config = config if config is not None else get_config()
    with _ACTIVE_LOCK:
        if _ACTIVE is None or _ACTIVE.config != config:
            _ACTIVE = ResultCache(config)
        return _ACTIVE


def reset_cache() -> None:
    """Drop the ambient cache instance (test isolation)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None
