"""Canonical content hashing for cache keys.

Every value that can flow through a pipeline hot path — numpy arrays
(masked or not, any layout), CDMS axes/grids/variables, image-data
volumes, cameras, transfer functions, scenes — maps to a deterministic
SHA-256 digest with these properties:

* **stability** — equal values produce equal digests in every process
  and on every platform: no ``id()``, no ``hash()`` (which is salted
  per process for strings), no dict iteration order (entries are
  sorted by their key's digest), no memory-layout dependence
  (non-contiguous arrays are normalised to C order before hashing);
* **sensitivity** — any representational difference that can change a
  computed result changes the digest: dtype and byte order (hashed via
  ``dtype.str``, so ``<f8`` vs ``>f8`` differ), shape, mask, NaN
  payloads (hashed as raw IEEE-754 bits, so NaN-bearing arrays hash
  deterministically and differently from any finite payload);
* **no silent fallback** — an unhashable value raises
  :class:`~repro.util.errors.CacheError` instead of hashing its
  ``repr`` and colliding later.

Keys built from these digests (:func:`cache_key`) are additionally
salted with the package version, so upgrading the code invalidates
every entry produced by older kernels.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Iterable

import numpy as np

import repro
from repro.cache.config import get_config
from repro.util.errors import CacheError

#: code-version salt mixed into every key — bump on release, every
#: cached artifact of older kernels misses
CODE_SALT = f"repro-{repro.__version__}"


def _raw(h, payload: bytes) -> None:
    # length-prefix every variable-size chunk so adjacent fields can
    # never alias (b"ab"+b"c" vs b"a"+b"bc")
    h.update(struct.pack("<Q", len(payload)))
    h.update(payload)


def _tag(h, tag: bytes) -> None:
    h.update(tag)


def _update_array(h, arr: np.ndarray) -> None:
    _tag(h, b"A")
    _raw(h, arr.dtype.str.encode("ascii"))
    _raw(h, repr(arr.shape).encode("ascii"))
    _raw(h, np.ascontiguousarray(arr).tobytes())


def _update_masked(h, arr: np.ma.MaskedArray) -> None:
    _tag(h, b"M")
    mask = np.ma.getmaskarray(arr)
    # zero out masked payload bytes so two arrays that differ only at
    # masked positions (equal values) hash equally
    data = np.ascontiguousarray(arr.filled(0))
    _update_array(h, data)
    _update_array(h, mask)


def _update_mapping(h, obj: dict) -> None:
    _tag(h, b"D")
    entries = sorted((digest(k), digest(v)) for k, v in obj.items())
    for key_digest, value_digest in entries:
        _raw(h, key_digest.encode("ascii"))
        _raw(h, value_digest.encode("ascii"))


def _update_sequence(h, obj: Iterable[Any]) -> None:
    _tag(h, b"L")
    for item in obj:
        _update(h, item)


def _update(h, obj: Any) -> None:  # noqa: PLR0911 - a type dispatch table
    if obj is None:
        _tag(h, b"N")
        return
    if isinstance(obj, bool):
        _tag(h, b"T" if obj else b"F")
        return
    if isinstance(obj, (int, np.integer)):
        _tag(h, b"I")
        _raw(h, repr(int(obj)).encode("ascii"))
        return
    if isinstance(obj, (float, np.floating)):
        # raw IEEE bits: NaN payloads, signed zeros and subnormals all
        # hash deterministically
        _tag(h, b"f")
        h.update(struct.pack("<d", float(obj)))
        return
    if isinstance(obj, str):
        _tag(h, b"S")
        _raw(h, obj.encode("utf-8"))
        return
    if isinstance(obj, (bytes, bytearray, memoryview)):
        _tag(h, b"B")
        _raw(h, bytes(obj))
        return
    if isinstance(obj, np.ma.MaskedArray):
        _update_masked(h, obj)
        return
    if isinstance(obj, np.ndarray):
        _update_array(h, obj)
        return
    if isinstance(obj, dict):
        _update_mapping(h, obj)
        return
    if isinstance(obj, (list, tuple)):
        _update_sequence(h, obj)
        return
    if isinstance(obj, (set, frozenset)):
        _tag(h, b"E")
        for item_digest in sorted(digest(item) for item in obj):
            _raw(h, item_digest.encode("ascii"))
        return
    if _update_known(h, obj):
        return
    raise CacheError(
        f"cannot canonically hash {type(obj).__module__}.{type(obj).__qualname__}"
    )


def _update_streamed_variable(h, obj: Any) -> bool:
    """Hash a still-streaming lazy variable without materializing it.

    Produces the *same* byte stream as the eager Variable branch —
    ``v + L(id, missing_value, attributes, axes, M(data))`` where the
    masked payload is ``A(filled(0)) + A(mask)`` — but folds the payload
    one slab at a time.  Valid because a variable chunked along axis 0
    concatenates its slabs' C-order buffers into exactly the full
    array's buffer.  Variables chunked along any other axis, or already
    materialized (where the eager path is free), return False and fall
    through to the eager branch.

    This is what lets a streamed reduction share cache entries with its
    eager twin: equal content ⇒ equal digest, regardless of which plane
    the data arrived through.
    """
    from repro.cdms.lazy import LazyVariable

    if not isinstance(obj, LazyVariable):
        return False
    if obj._materialized is not None or obj.slab_axis() != 0:
        return False
    _tag(h, b"v")
    _tag(h, b"L")
    for item in (obj.id, obj.missing_value, obj.attributes, list(obj.axes)):
        _update(h, item)
    _tag(h, b"M")
    shape = tuple(int(n) for n in obj.shape)
    size = int(np.prod(shape, dtype=np.int64))
    dtype = np.dtype(obj.dtype)
    for kind, dtype_str, itemsize in (
        ("data", dtype.str, dtype.itemsize),
        ("mask", np.dtype(bool).str, 1),
    ):
        # an _update_array, streamed: header, then the length-prefixed
        # payload fed to the hash slab by slab (two passes over the
        # container — data bytes, then mask bytes — so peak residency
        # stays one slab)
        _tag(h, b"A")
        _raw(h, dtype_str.encode("ascii"))
        _raw(h, repr(shape).encode("ascii"))
        h.update(struct.pack("<Q", size * itemsize))
        for slab in obj.iter_slabs():
            if kind == "data":
                block = slab.data.filled(0)
            else:
                block = np.ma.getmaskarray(slab.data)
            h.update(np.ascontiguousarray(block).tobytes())
    return True


def _update_known(h, obj: Any) -> bool:
    """Hash the domain types; returns False for unknown objects."""
    from repro.cdms.axis import Axis
    from repro.cdms.grid import RectilinearGrid
    from repro.cdms.variable import Variable
    from repro.rendering.camera import Camera
    from repro.rendering.colormap import Colormap
    from repro.rendering.framebuffer import Framebuffer
    from repro.rendering.geometry import PolyData
    from repro.rendering.image_data import ImageData
    from repro.rendering.transfer_function import TransferFunction

    if isinstance(obj, Axis):
        # gen_bounds (not get_bounds): it returns explicit bounds when
        # set — sensitivity preserved — but is a pure function of the
        # values otherwise, so its lazy caching cannot flip the digest
        _tag(h, b"x")
        _update_sequence(
            h,
            (obj.id, obj.units, obj.calendar.name, obj.values,
             obj.attributes, obj.gen_bounds()),
        )
        return True
    if isinstance(obj, RectilinearGrid):
        _tag(h, b"g")
        _update_sequence(h, (obj.latitude, obj.longitude))
        return True
    if isinstance(obj, Variable):
        if _update_streamed_variable(h, obj):
            return True
        _tag(h, b"v")
        _update_sequence(
            h,
            (obj.id, obj.missing_value, obj.attributes, list(obj.axes), obj.data),
        )
        return True
    if isinstance(obj, ImageData):
        _tag(h, b"i")
        _update_sequence(h, (obj.dimensions, obj.origin, obj.spacing))
        _update_mapping(h, {name: obj.get_array(name) for name in obj.array_names})
        _update(h, obj._active_scalars)
        return True
    if isinstance(obj, PolyData):
        _tag(h, b"p")
        _update_sequence(
            h, (obj.points, obj.triangles, list(obj.lines), obj.scalars, obj.colors)
        )
        return True
    if isinstance(obj, (Camera, TransferFunction, Colormap)):
        _tag(h, b"s")
        _raw(h, type(obj).__name__.encode("ascii"))
        _update_mapping(h, obj.state())
        return True
    if isinstance(obj, Framebuffer):
        _tag(h, b"b")
        _update_sequence(h, (obj.width, obj.height, obj.background, obj.color, obj.depth))
        return True
    return False


def digest(obj: Any) -> str:
    """Canonical SHA-256 hex digest of *obj* (see module docstring)."""
    h = hashlib.sha256()
    _update(h, obj)
    return h.hexdigest()


def cache_key(site: str, *parts: Any, salt: str | None = None) -> str:
    """A cache key for *site* derived from the digests of *parts*.

    The key mixes in :data:`CODE_SALT` plus the ambient config's
    application salt (overridable via *salt*), so a version bump or a
    deployment-level generation change invalidates everything at once.
    """
    h = hashlib.sha256()
    _raw(h, site.encode("utf-8"))
    _raw(h, CODE_SALT.encode("utf-8"))
    _raw(h, (salt if salt is not None else get_config().salt).encode("utf-8"))
    for part in parts:
        _update(h, part)
    return h.hexdigest()


def scene_digest(scene) -> str:
    """Canonical digest of a :class:`~repro.rendering.scene.Scene`.

    Covers everything the renderer reads: background, lights, geometry
    actors (points/topology/display properties) and volume actors
    (volume arrays + transfer-function state + sampling controls), in
    draw order.  Two scenes with equal digests rasterize and raycast to
    byte-identical framebuffers for a given camera and size.
    """
    h = hashlib.sha256()
    _tag(h, b"scene")
    _update(h, tuple(scene.background))
    _update_sequence(
        h,
        ((tuple(light.direction), light.intensity) for light in scene.lights),
    )
    for actor in scene.actors:
        _update_sequence(
            h,
            (actor.visible, actor.poly, tuple(actor.color),
             None if actor.line_color is None else tuple(actor.line_color),
             actor.lighting, actor.point_size),
        )
    for vactor in scene.volume_actors:
        _update_sequence(
            h,
            (vactor.visible, vactor.volume, vactor.transfer,
             vactor.array_name, vactor.step_size, vactor.lighting),
        )
    return h.hexdigest()
