"""Provenance-keyed result caching for the pipeline hot paths.

UV-CDAT's promise is provenance-tracked exploration: a pipeline spec
deterministically yields its products, which is exactly what makes
memoization safe.  This package supplies the machinery:

* :mod:`repro.cache.keys` — canonical content hashing (numpy arrays,
  grids, variables, scenes, plot specs) that is stable across
  processes and sensitive to every representational change;
* :mod:`repro.cache.store` — a two-tier store (in-memory LRU + an
  on-disk tier shared between processes via atomic renames) with
  size/TTL bounds and full :mod:`repro.obs` instrumentation;
* :mod:`repro.cache.config` — an ambient :class:`CacheConfig` scope
  mirroring :mod:`repro.parallel`.

Consumers (all opt-in through the ambient config):

* :class:`~repro.workflow.executor.Executor` memoizes module outputs
  by signature across executor instances and processes, and serves
  cached results for branches blocked by an upstream failure under
  ``continue_independent``;
* :class:`~repro.rendering.scene.Renderer` memoizes whole frames by
  (scene, camera, size) digest — every DV3D plot type and hyperwall
  cell rides on this;
* :func:`~repro.cdms.regrid.regrid_bilinear` /
  :func:`~repro.cdms.regrid.regrid_conservative` memoize regrid
  products by (variable, target grid, scheme, parallel-tiling) digest;
* :class:`~repro.serving.server.ServingServer` keys every request by
  its canonical digest — the coalescing key for concurrent sessions —
  and serves repeat requests (and stale frames under overload) from
  this cache, with per-tenant quota eviction via
  :meth:`~repro.cache.store.ResultCache.delete`.

Usage::

    from repro import cache

    cache.configure(memory_entries=512, disk_bytes=1 << 30,
                    path="/tmp/repro-cache")
    plot.render(800, 600)      # cold: rendered and stored
    plot.render(800, 600)      # warm: served byte-identical from cache
    print(cache.get_cache().stats())
"""

from repro.cache.config import (
    CacheConfig,
    configure,
    default_cache_dir,
    get_config,
    set_config,
    use_config,
)
from repro.cache.keys import CODE_SALT, cache_key, digest, scene_digest
from repro.cache.store import (
    DiskTier,
    MemoryTier,
    ResultCache,
    get_cache,
    reset_cache,
)

__all__ = [
    "CODE_SALT",
    "CacheConfig",
    "DiskTier",
    "MemoryTier",
    "ResultCache",
    "cache_key",
    "configure",
    "default_cache_dir",
    "digest",
    "get_cache",
    "get_config",
    "reset_cache",
    "scene_digest",
    "set_config",
    "use_config",
]
