"""Configuration for the provenance-keyed result cache.

A :class:`CacheConfig` describes the two cache tiers: an in-memory LRU
(bounded by entry count) and an on-disk store (bounded by total bytes,
shared between processes through atomic file renames).  Caching is
strictly **opt-in**: the ambient default config is disabled, so every
hot path behaves exactly as the seed until an application calls
:func:`configure` (or installs a config with :func:`use_config`).

The ambient default (:func:`get_config` / :func:`set_config` /
:func:`use_config`) mirrors :mod:`repro.parallel.config`: the executor,
the renderer's frame cache and the regrid operators all consult it when
no explicit config is passed, so whole pipelines pick up memoization
without any per-module plumbing.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.util.errors import CacheError

#: environment override for the default disk-tier location (the test
#: suite points this at a per-test tmp dir so no test can leak entries
#: into the shared path)
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> str:
    """The disk-tier root used when a config does not name one."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return env
    return str(Path.home() / ".cache" / "repro")


@dataclass(frozen=True)
class CacheConfig:
    """Size/TTL bounds and location of the two cache tiers.

    Parameters
    ----------
    enabled:
        Master switch; a disabled config turns every lookup into a
        miss-without-store (the ambient default).
    memory_entries:
        In-memory LRU capacity in entries (0 disables the tier).
    disk_bytes:
        On-disk budget in bytes; exceeding it evicts the stalest
        entries (0 disables the tier).
    ttl_seconds:
        Entry lifetime; 0 means entries never expire.  Applied per
        tier (memory: insertion time, disk: file mtime).
    path:
        Disk-tier root directory.  ``None`` resolves through the
        ``REPRO_CACHE_DIR`` environment variable, then the per-user
        default (``~/.cache/repro``).
    use_disk:
        Whether the disk tier participates at all (``False`` keeps the
        cache purely in-process).
    salt:
        Extra key salt.  The code-version salt
        (:data:`repro.__version__`) is always mixed in; this adds an
        application-level generation so deployments can invalidate
        every entry at once by bumping it.
    """

    enabled: bool = True
    memory_entries: int = 256
    disk_bytes: int = 512 * 1024 * 1024
    ttl_seconds: float = 0.0
    path: Optional[str] = None
    use_disk: bool = True
    salt: str = ""

    def __post_init__(self) -> None:
        if self.memory_entries < 0:
            raise CacheError(f"memory_entries must be >= 0, got {self.memory_entries}")
        if self.disk_bytes < 0:
            raise CacheError(f"disk_bytes must be >= 0, got {self.disk_bytes}")
        if self.ttl_seconds < 0:
            raise CacheError(f"ttl_seconds must be >= 0, got {self.ttl_seconds}")

    def resolved_path(self) -> str:
        """The disk-tier root this config writes to."""
        return self.path or default_cache_dir()

    @property
    def wants_memory(self) -> bool:
        return self.enabled and self.memory_entries > 0

    @property
    def wants_disk(self) -> bool:
        return self.enabled and self.use_disk and self.disk_bytes > 0


#: the ambient default — caching off unless the application opts in
_DEFAULT = CacheConfig(enabled=False)


def get_config() -> CacheConfig:
    """The ambient config consulted by hot paths when none is passed."""
    return _DEFAULT


def set_config(config: CacheConfig) -> CacheConfig:
    """Install *config* as the ambient default; returns the previous one."""
    global _DEFAULT
    previous = _DEFAULT
    _DEFAULT = config
    return previous


def configure(**kwargs) -> CacheConfig:
    """Build a :class:`CacheConfig` and install it as the default."""
    config = CacheConfig(**kwargs)
    set_config(config)
    return config


@contextmanager
def use_config(config: Optional[CacheConfig]) -> Iterator[CacheConfig]:
    """Temporarily install *config* as the ambient default (None = no-op)."""
    if config is None:
        yield get_config()
        return
    previous = set_config(config)
    try:
        yield config
    finally:
        set_config(previous)
